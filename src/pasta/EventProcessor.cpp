//===- pasta/EventProcessor.cpp -------------------------------------------===//
//
// Part of the PASTA reproduction, under the MIT license.
//
//===----------------------------------------------------------------------===//

#include "pasta/EventProcessor.h"

#include "pasta/Validate.h"
#include "support/Logging.h"
#include "support/ReportSink.h"

#include <algorithm>
#include <utility>

using namespace pasta;

namespace {

/// Identifies the dispatch lane the current thread is running, so
/// callStacks() can resolve to the lane-local builder. Keyed by owner
/// pointer — tests run several processors in one process.
struct LaneTag {
  const EventProcessor *Owner = nullptr;
  std::size_t Lane = 0;
};
thread_local LaneTag CurrentLane;

} // namespace

namespace {

EventArenaOptions arenaOptionsOf(const ProcessorOptions &Opts) {
  EventArenaOptions ArenaOpts;
  ArenaOpts.Shards = Opts.ArenaShards;
  ArenaOpts.InternMemo = Opts.ArenaMemo;
  ArenaOpts.MaxBytes = Opts.ArenaMaxBytes;
  return ArenaOpts;
}

} // namespace

EventProcessor::EventProcessor(std::size_t DeviceAnalysisThreads)
    : AnalysisThreads(DeviceAnalysisThreads) {
  if (ProcessorOptions().Validate) {
    Val = std::make_unique<Validator>();
    Arena.setValidator(Val.get());
  }
}

EventProcessor::EventProcessor(const ProcessorOptions &Opts)
    : Arena(arenaOptionsOf(Opts)), AnalysisThreads(Opts.AnalysisThreads) {
  if (Opts.Validate) {
    Val = std::make_unique<Validator>();
    Arena.setValidator(Val.get());
  }
  if (Opts.AsyncEvents) {
    std::size_t LaneCount = std::min<std::size_t>(
        std::max<std::size_t>(Opts.DispatchThreads, 1), 64);
    for (std::size_t I = 0; I < LaneCount; ++I) {
      auto L = std::make_unique<Lane>();
      L->Queue = std::make_unique<EventQueue>(
          std::max<std::size_t>(Opts.QueueDepth, 1), Opts.Overflow,
          std::max<std::uint64_t>(Opts.SampleEveryN, 1),
          Opts.QueueSpinIterations);
      Lanes.push_back(std::move(L));
    }
    for (std::size_t I = 0; I < LaneCount; ++I)
      Lanes[I]->Thread = std::thread([this, I] { laneLoop(I); });
  }
}

EventProcessor::~EventProcessor() {
  for (auto &L : Lanes)
    L->Queue->close();
  for (auto &L : Lanes)
    L->Thread.join();
}

bool EventProcessor::addTool(Tool *T) {
  // AttachMutex makes the seal race-free against a concurrent first
  // admission: ensureStarted() flips Started under the same lock, so
  // either this mutation completes before any event is admitted or the
  // Started check below observes the flip and rejects.
  std::unique_lock<std::mutex> Lock(AttachMutex);
  if (!Lanes.empty() && Started.load(std::memory_order_acquire)) {
    // The lanes read the routing tables lock-free; mutating them now
    // would race. Drain what is in flight, then refuse.
    Lock.unlock();
    flush();
    logWarning("EventProcessor: tool '" + T->name() +
               "' attached after pipeline start; rejected (the tool set "
               "is sealed by the first admitted event or record "
               "delivery)");
    return false;
  }
  Tools.push_back(T);
  Entries.push_back(ToolEntry{T, T->subscription(), 0});
  rebuildRoutes();
  Lock.unlock();
  T->onAttach(*this);
  return true;
}

bool EventProcessor::clearTools() {
  std::unique_lock<std::mutex> Lock(AttachMutex);
  if (!Lanes.empty() && Started.load(std::memory_order_acquire)) {
    Lock.unlock();
    flush();
    logWarning("EventProcessor: clearTools() after pipeline start; "
               "rejected");
    return false;
  }
  Tools.clear();
  Entries.clear();
  rebuildRoutes();
  return true;
}

std::optional<Subscription>
EventProcessor::subscriptionOf(const Tool *T) const {
  for (const ToolEntry &Entry : Entries)
    if (Entry.T == T)
      return Entry.Sub;
  return std::nullopt;
}

void EventProcessor::rebuildRoutes() {
  // Serial tools are pinned round-robin across the lanes; sharded and
  // concurrent tools float to each event's home lane.
  const std::size_t LaneCount = std::max<std::size_t>(Lanes.size(), 1);
  std::size_t NextSerialLane = 0;
  for (ToolEntry &Entry : Entries)
    Entry.Lane = Entry.Sub.Model == ExecutionModel::Serial
                     ? NextSerialLane++ % LaneCount
                     : 0;

  for (KindRoute &Route : Routes) {
    Route.Pinned.clear();
    Route.Floating.clear();
    Route.PinnedLaneMask = 0;
  }
  RecordEntries.clear();
  MixEntries.clear();
  TraceEntries.clear();
  StackLaneMask = 0;

  for (std::uint32_t I = 0; I < Entries.size(); ++I) {
    ToolEntry &Entry = Entries[I];
    if (Entry.Sub.CapturesStacks)
      StackLaneMask |= Entry.Sub.Model == ExecutionModel::Serial
                           ? std::uint64_t(1) << Entry.Lane
                           : allLanesMask();
    for (std::size_t K = 0; K < NumEventKinds; ++K) {
      if (!Entry.Sub.Kinds.has(static_cast<EventKind>(K)))
        continue;
      KindRoute &Route = Routes[K];
      if (Entry.Sub.Model == ExecutionModel::Serial) {
        Route.Pinned.push_back(I);
        Route.PinnedLaneMask |= std::uint64_t(1) << Entry.Lane;
      } else {
        Route.Floating.push_back(I);
      }
    }
    if (Entry.Sub.AccessRecords || Entry.T->deviceAnalysis())
      RecordEntries.push_back(I);
    if (Entry.Sub.InstrMix)
      MixEntries.push_back(I);
    if (Entry.Sub.KernelTrace)
      TraceEntries.push_back(I);
  }

  // Validation: mirror the compiled contracts into the validator and
  // run the subscription-drift watchdog. Both callers (addTool,
  // clearTools) hold AttachMutex, matching registerTool's contract for
  // re-querying user subscription() code.
  if (Val) {
    Val->unregisterTools();
    for (const ToolEntry &Entry : Entries)
      Val->registerTool(*Entry.T, Entry.Sub, Entry.Lane);
  }
}

CallStackBuilder &EventProcessor::callStacks() {
  if (CurrentLane.Owner == this) {
    // A capture from a lane hosting no stack-capturing subscriber sees
    // a stale (typically empty) context: context updates are routed by
    // Subscription::CapturesStacks. Warn once instead of failing
    // silently — the usual cause is a tool with an explicit
    // subscription() that forgot to declare the bit.
    if (!(StackLaneMask & (std::uint64_t(1) << CurrentLane.Lane)) &&
        !StaleStackWarned.exchange(true, std::memory_order_relaxed))
      logWarning("EventProcessor::callStacks() called from a dispatch "
                 "lane hosting no stack-capturing tool; declare "
                 "Subscription::CapturesStacks so Python-stack context "
                 "is routed to this lane (the context captured here may "
                 "be stale or empty)");
    return Lanes[CurrentLane.Lane]->Stacks;
  }
  return SharedStacks;
}

bool EventProcessor::admit(Event &E) {
  // Range filtering: kernel-scoped events outside the analysis window are
  // dropped; resource/DL bookkeeping events always pass so tools keep a
  // consistent view of allocations.
  bool KernelScoped = E.Kind == EventKind::KernelLaunch ||
                      E.Kind == EventKind::KernelComplete;
  if (KernelScoped && !Filter.kernelActive(E.GridId)) {
    Core.EventsFiltered.fetch_add(1, std::memory_order_relaxed);
    return false;
  }
  if (eventLevel(E.Kind) == EventLevel::DlFramework &&
      !Filter.regionActive() && E.Kind != EventKind::TensorAlloc &&
      E.Kind != EventKind::TensorReclaim) {
    Core.EventsFiltered.fetch_add(1, std::memory_order_relaxed);
    return false;
  }

  // CPU preprocessing: keep the shared cross-layer stack context
  // current (the record-delivery path and synchronous dispatch read it;
  // capturing lanes maintain their own handle in lane order, fed during
  // routing). Sharing the handle is a refcount bump; interning happens
  // later, and only for events that actually fan out.
  if (E.Kind == EventKind::OperatorStart && !E.PythonStack.empty())
    SharedStacks.setPythonStack(E.PythonStack);
  return true;
}

void EventProcessor::process(Event E) {
  // Filtered events never touch the routing tables, so they do not
  // seal the tool set; the seal lands right before the first dispatch
  // or enqueue (which do read the tables).
  if (!admit(E))
    return;
  ensureStarted();

  if (Lanes.empty()) {
    // Same semantics as the lanes: only passes that reached a tool
    // count, so events_processed stays comparable across modes.
    if (dispatchOn(E, 0))
      Core.EventsProcessed.fetch_add(1, std::memory_order_relaxed);
    return;
  }

  // Synchronization is a hard barrier: the application expects every
  // preceding effect to be visible when the sync call returns, so the
  // matching analysis must be complete too (and reports deterministic).
  bool Barrier = E.Kind == EventKind::Synchronization;
  const KindRoute &Route = Routes[static_cast<std::size_t>(E.Kind)];
  std::uint64_t LaneMask = Route.PinnedLaneMask;
  if (!Route.Floating.empty())
    LaneMask |= std::uint64_t(1) << homeLane(E);
  // Python-context updates ride only to the lanes hosting tools that
  // declared CapturesStacks — their builders must stay consistent with
  // their own event order; every other lane's builder is unreachable
  // from its tools, so feeding it would be pure fan-out overhead.
  if (E.Kind == EventKind::OperatorStart && !E.PythonStack.empty())
    LaneMask |= StackLaneMask;

  if (LaneMask != 0) {
    bool Critical =
        eventAdmissionClass(E.Kind) != AdmissionClass::Standard;
    std::size_t Last = 0;
    std::size_t Fanout = 0;
    for (std::size_t L = 0; L < Lanes.size(); ++L)
      if (LaneMask & (std::uint64_t(1) << L)) {
        Last = L;
        ++Fanout;
      }
    // Interning placement: multi-lane fan-out interns up front so the
    // per-lane Event copies below share refcounted immutable payloads
    // (strings, stacks, pinned kernel/tensor descriptors) instead of
    // deep-copying them; so does anything certain to be admitted
    // (Block policy, critical events) — deferral would only move the
    // intern inside the queue lock for no benefit. Single-lane routes
    // under a lossy policy defer interning into enqueue(), past the
    // overflow decision, so discarded events never allocate or
    // register arena payloads. Unrouted events (LaneMask == 0) never
    // touch the arena at all.
    bool Lossy =
        Lanes.front()->Queue->policy() != OverflowPolicy::Block;
    bool DeferIntern = Fanout == 1 && Lossy && !Critical;
    if (!DeferIntern)
      Arena.intern(E);
    EventArena *InternOnAdmit = DeferIntern ? &Arena : nullptr;
    for (std::size_t L = 0; L < Lanes.size(); ++L) {
      if (!(LaneMask & (std::uint64_t(1) << L)))
        continue;
      if (L == Last) {
        Lanes[L]->Queue->enqueue(std::move(E), Critical, InternOnAdmit);
        break;
      }
      Lanes[L]->Queue->enqueue(E, Critical, InternOnAdmit);
    }
  }
  if (Barrier)
    flush();
}

bool EventProcessor::dispatchOn(const Event &E, std::size_t LaneIndex) {
  const KindRoute &Route = Routes[static_cast<std::size_t>(E.Kind)];
  bool Delivered = false;
  // Synchronous dispatch runs on the producer's thread outside any
  // lane; the validator's lane-affinity checks don't apply there.
  const std::size_t ValidateLane =
      Lanes.empty() ? Validator::InlineDelivery : LaneIndex;
  for (std::uint32_t I : Route.Pinned) {
    if (Entries[I].Lane != LaneIndex)
      continue;
    if (Val) {
      Val->beforeDelivery(*Entries[I].T, E, ValidateLane);
      invoke(*Entries[I].T, E);
      Val->afterDelivery(*Entries[I].T);
    } else {
      invoke(*Entries[I].T, E);
    }
    Delivered = true;
  }
  if (!Route.Floating.empty() && LaneIndex == homeLane(E)) {
    for (std::uint32_t I : Route.Floating) {
      if (Val) {
        Val->beforeDelivery(*Entries[I].T, E, ValidateLane);
        invoke(*Entries[I].T, E);
        Val->afterDelivery(*Entries[I].T);
      } else {
        invoke(*Entries[I].T, E);
      }
    }
    Delivered = true;
  }
  return Delivered;
}

void EventProcessor::invoke(Tool &T, const Event &E) {
  switch (E.Kind) {
  case EventKind::KernelLaunch:
    T.onKernelLaunch(E);
    break;
  case EventKind::KernelComplete:
    T.onKernelComplete(E);
    break;
  case EventKind::MemoryAlloc:
    T.onMemoryAlloc(E);
    break;
  case EventKind::MemoryFree:
    T.onMemoryFree(E);
    break;
  case EventKind::MemoryCopy:
    T.onMemoryCopy(E);
    break;
  case EventKind::MemorySet:
    T.onMemorySet(E);
    break;
  case EventKind::Synchronization:
    T.onSynchronization(E);
    break;
  case EventKind::BatchMemoryOp:
    T.onBatchMemoryOp(E);
    break;
  case EventKind::OperatorStart:
    T.onOperatorStart(E);
    break;
  case EventKind::OperatorEnd:
    T.onOperatorEnd(E);
    break;
  case EventKind::TensorAlloc:
    T.onTensorAlloc(E);
    break;
  case EventKind::TensorReclaim:
    T.onTensorReclaim(E);
    break;
  case EventKind::DriverFunction:
  case EventKind::RuntimeFunction:
  case EventKind::StreamCreate:
  case EventKind::StreamDestroy:
  case EventKind::ThreadBlockEntry:
  case EventKind::ThreadBlockExit:
  case EventKind::BarrierInstruction:
  case EventKind::DeviceMalloc:
  case EventKind::DeviceFree:
  case EventKind::LayerBoundary:
  case EventKind::FwdBwdBoundary:
  case EventKind::CustomRegion:
    break; // only the generic hook sees these
  }
  T.onEvent(E);
}

void EventProcessor::laneLoop(std::size_t LaneIndex) {
  CurrentLane = {this, LaneIndex};
  Lane &L = *Lanes[LaneIndex];
  std::vector<Event> Batch;
  while (L.Queue->dequeueBatch(Batch)) {
    for (Event &E : Batch) {
      // Lane-local stack context, updated in this lane's event order so
      // Serial tools capture the same stacks as synchronous dispatch.
      if (E.Kind == EventKind::OperatorStart && !E.PythonStack.empty())
        L.Stacks.setPythonStack(E.PythonStack);
      if (dispatchOn(E, LaneIndex)) {
        Core.EventsProcessed.fetch_add(1, std::memory_order_relaxed);
        L.Dispatched.fetch_add(1, std::memory_order_relaxed);
      }
    }
  }
}

void EventProcessor::flush() {
  // A dispatch-lane thread waiting for its own queue to drain is a
  // deadlock (the tool hook that called us is the work being waited
  // on). Validation reports the contract break and skips the wait so
  // the collecting-handler test path survives.
  if (Val && CurrentLane.Owner == this) {
    Val->onFlushFromLane();
    return;
  }
  // FlushCount counts actual drain barriers; synchronous dispatch has
  // nothing to drain, so the metric stays 0 and comparable across modes.
  if (Lanes.empty())
    return;
  Core.FlushCount.fetch_add(1, std::memory_order_relaxed);
  if (Val) {
    // Barrier-ordering assertion: every ticket admitted before the
    // barrier began must be consumed when waitDrained returns. The
    // consumed counter is monotonic, so the check stays race-free even
    // with other producers admitting concurrently.
    std::vector<std::uint64_t> Admitted(Lanes.size());
    for (std::size_t I = 0; I < Lanes.size(); ++I)
      Admitted[I] = Lanes[I]->Queue->admittedTickets();
    for (std::size_t I = 0; I < Lanes.size(); ++I) {
      Lanes[I]->Queue->waitDrained();
      Val->onFlushBarrier(I, Admitted[I],
                          Lanes[I]->Queue->consumedTickets());
    }
    return;
  }
  for (auto &L : Lanes)
    L->Queue->waitDrained();
}

void EventProcessor::annotationStart() {
  flush();
  Filter.annotationStart();
}

void EventProcessor::annotationStop() {
  flush();
  Filter.annotationStop();
}

ProcessorStats EventProcessor::stats() const {
  ProcessorStats Snapshot;
  Snapshot.EventsProcessed =
      Core.EventsProcessed.load(std::memory_order_relaxed);
  Snapshot.EventsFiltered =
      Core.EventsFiltered.load(std::memory_order_relaxed);
  Snapshot.RecordBatches =
      Core.RecordBatches.load(std::memory_order_relaxed);
  Snapshot.RecordsDelivered =
      Core.RecordsDelivered.load(std::memory_order_relaxed);
  Snapshot.DeviceAnalyzedRecords =
      Core.DeviceAnalyzedRecords.load(std::memory_order_relaxed);
  Snapshot.HostAnalyzedRecords =
      Core.HostAnalyzedRecords.load(std::memory_order_relaxed);
  Snapshot.FlushCount = Core.FlushCount.load(std::memory_order_relaxed);
  Snapshot.DispatchLanes = Lanes.size();
  EventArenaStats ArenaSnapshot = Arena.stats();
  Snapshot.ArenaPayloads = ArenaSnapshot.payloads();
  Snapshot.ArenaBytes = ArenaSnapshot.Bytes;
  Snapshot.ArenaHits = ArenaSnapshot.Hits;
  Snapshot.ArenaMemoHits = ArenaSnapshot.MemoHits;
  Snapshot.ArenaShardContention = ArenaSnapshot.ShardContention;
  Snapshot.ArenaEvictedFallbacks = ArenaSnapshot.EvictedFallbacks;
  Snapshot.ArenaShards = ArenaSnapshot.Shards;
  for (const auto &L : Lanes) {
    EventQueueCounters Counters = L->Queue->counters();
    Snapshot.EventsDropped += Counters.Dropped;
    Snapshot.EventsSampledOut += Counters.SampledOut;
    Snapshot.QueueSpins += Counters.Spins;
    Snapshot.QueueParks += Counters.Parks;
    Snapshot.MaxQueueDepth =
        std::max(Snapshot.MaxQueueDepth, Counters.MaxDepth);
  }
  return Snapshot;
}

std::vector<DispatchLaneStats> EventProcessor::laneStats() const {
  std::vector<DispatchLaneStats> Out;
  Out.reserve(Lanes.size());
  for (const auto &L : Lanes) {
    EventQueueCounters Counters = L->Queue->counters();
    DispatchLaneStats Stats;
    Stats.EventsDispatched = L->Dispatched.load(std::memory_order_relaxed);
    Stats.Enqueued = Counters.Enqueued;
    Stats.Dropped = Counters.Dropped;
    Stats.SampledOut = Counters.SampledOut;
    Stats.MaxQueueDepth = Counters.MaxDepth;
    Out.push_back(Stats);
  }
  return Out;
}

void EventProcessor::reportPipeline(ReportSink &Sink) const {
  ProcessorStats Snapshot = stats();
  Sink.beginReport("event_pipeline");
  Sink.metric("mode", std::string(Lanes.empty() ? "sync" : "async"));
  if (!Lanes.empty()) {
    const EventQueue &Q = *Lanes.front()->Queue;
    Sink.metric("overflow_policy",
                std::string(overflowPolicyName(Q.policy())));
    Sink.metric("queue_depth", static_cast<std::uint64_t>(Q.capacity()));
    Sink.metric("dispatch_lanes", Snapshot.DispatchLanes);
  }
  Sink.metric("events_processed", Snapshot.EventsProcessed);
  Sink.metric("events_filtered", Snapshot.EventsFiltered);
  Sink.metric("events_dropped", Snapshot.EventsDropped);
  Sink.metric("events_sampled_out", Snapshot.EventsSampledOut);
  Sink.metric("max_queue_depth", Snapshot.MaxQueueDepth);
  Sink.metric("flush_count", Snapshot.FlushCount);
  if (!Lanes.empty()) {
    // Admission-path pressure: spins say the ring filled, parks say the
    // spin window was not enough and a producer actually blocked.
    Sink.metric("queue.spins", Snapshot.QueueSpins);
    Sink.metric("queue.parks", Snapshot.QueueParks);
    // The shared payload arena only runs in async mode; its hit count
    // is the number of payload allocations (and their per-lane copies)
    // the interning avoided.
    Sink.metric("arena.payloads", Snapshot.ArenaPayloads);
    Sink.metric("arena.bytes", Snapshot.ArenaBytes);
    Sink.metric("arena.hits", Snapshot.ArenaHits);
    Sink.metric("arena.memo_hits", Snapshot.ArenaMemoHits);
    Sink.metric("arena.shards", Snapshot.ArenaShards);
    Sink.metric("arena.shard_contention", Snapshot.ArenaShardContention);
    Sink.metric("arena.evicted_fallbacks",
                Snapshot.ArenaEvictedFallbacks);
  }
  if (Lanes.size() > 1) {
    std::vector<DispatchLaneStats> PerLane = laneStats();
    for (std::size_t I = 0; I < PerLane.size(); ++I) {
      std::string Prefix = "lane" + std::to_string(I);
      Sink.metric(Prefix + ".dispatched", PerLane[I].EventsDispatched);
      Sink.metric(Prefix + ".enqueued", PerLane[I].Enqueued);
      Sink.metric(Prefix + ".max_queue_depth", PerLane[I].MaxQueueDepth);
    }
  }
  Sink.endReport();
}

void EventProcessor::onKernelBegin(const sim::LaunchInfo &Info) {
  (void)Info;
  ensureStarted();
  flush();
}

void EventProcessor::onAccessBatch(const sim::LaunchInfo &Info,
                                   const sim::MemAccessRecord *Records,
                                   std::size_t Count) {
  ensureStarted();
  flush(); // records must not run ahead of their coarse events
  if (!Filter.kernelActive(Info.GridId))
    return;
  Core.RecordBatches.fetch_add(1, std::memory_order_relaxed);
  Core.RecordsDelivered.fetch_add(Count, std::memory_order_relaxed);

  for (std::uint32_t I : RecordEntries) {
    Tool *T = Entries[I].T;
    if (DeviceAnalysis *Analysis = T->deviceAnalysis()) {
      // GPU-resident model: reduce the batch concurrently on the device
      // analysis threads (paper Fig. 2b).
      AnalysisThreads.parallelFor(
          Count, [&](std::size_t Begin, std::size_t End) {
            Analysis->processRecords(Info, Records + Begin, End - Begin);
          });
      Core.DeviceAnalyzedRecords.fetch_add(Count, std::memory_order_relaxed);
    } else {
      // Conventional host-side model: one thread sees the whole batch.
      T->onAccessBatch(Info, Records, Count);
      Core.HostAnalyzedRecords.fetch_add(Count, std::memory_order_relaxed);
    }
  }
}

void EventProcessor::onInstrMix(const sim::LaunchInfo &Info,
                                const sim::InstrMix &Mix) {
  ensureStarted();
  flush();
  if (!Filter.kernelActive(Info.GridId))
    return;
  for (std::uint32_t I : MixEntries)
    Entries[I].T->onInstrMix(Info, Mix);
}

void EventProcessor::onKernelEnd(const sim::LaunchInfo &Info,
                                 const sim::TraceTimeBreakdown &Breakdown) {
  ensureStarted();
  flush();
  if (!Filter.kernelActive(Info.GridId))
    return;
  for (std::uint32_t I : TraceEntries)
    Entries[I].T->onKernelTraceEnd(Info, Breakdown);
}
