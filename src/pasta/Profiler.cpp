//===- pasta/Profiler.cpp -------------------------------------------------===//
//
// Part of the PASTA reproduction, under the MIT license.
//
//===----------------------------------------------------------------------===//

#include "pasta/Profiler.h"

#include "support/Logging.h"
#include "support/ReportSink.h"

#include <algorithm>
#include <cassert>

using namespace pasta;

ProfilerOptions ProfilerOptions::fromEnv() {
  ProfilerOptions Opts;
  std::string Backend = getEnvString("PASTA_BACKEND", "none");
  if (Backend == "cs-gpu")
    Opts.Trace.Backend = TraceBackend::SanitizerGpu;
  else if (Backend == "cs-cpu")
    Opts.Trace.Backend = TraceBackend::SanitizerCpu;
  else if (Backend == "nvbit-cpu")
    Opts.Trace.Backend = TraceBackend::NvbitCpu;
  else if (Backend != "none")
    logWarning("unknown PASTA_BACKEND '" + Backend + "', tracing disabled");
  Opts.Trace.SampleRate =
      getEnvDouble("ACCEL_PROF_ENV_SAMPLE_RATE", 1.0);
  Opts.Trace.RecordGranularityBytes = static_cast<std::uint64_t>(
      getEnvInt("PASTA_TRACE_GRANULARITY", 4096));
  Opts.Trace.DeviceBufferRecords = static_cast<std::uint64_t>(
      getEnvInt("PASTA_DEVICE_BUFFER_RECORDS", 1 << 20));
  Opts.Processor.AnalysisThreads = static_cast<std::size_t>(
      getEnvInt("PASTA_ANALYSIS_THREADS", 0));
  Opts.Processor.AsyncEvents = getEnvBool("PASTA_ASYNC_EVENTS", false);
  Opts.Processor.QueueDepth = static_cast<std::size_t>(std::max<std::int64_t>(
      getEnvInt("PASTA_QUEUE_DEPTH",
                static_cast<std::int64_t>(Opts.Processor.QueueDepth)),
      1));
  std::string Policy = getEnvString("PASTA_OVERFLOW_POLICY", "block");
  if (auto Parsed = parseOverflowPolicy(Policy))
    Opts.Processor.Overflow = *Parsed;
  else
    logWarning("unknown PASTA_OVERFLOW_POLICY '" + Policy +
               "', using 'block'");
  Opts.Processor.SampleEveryN =
      static_cast<std::uint64_t>(std::max<std::int64_t>(
          getEnvInt("PASTA_OVERFLOW_SAMPLE_N",
                    static_cast<std::int64_t>(Opts.Processor.SampleEveryN)),
          1));
  Opts.Processor.DispatchThreads =
      static_cast<std::size_t>(std::max<std::int64_t>(
          getEnvInt("PASTA_DISPATCH_THREADS",
                    static_cast<std::int64_t>(
                        Opts.Processor.DispatchThreads)),
          1));
  Opts.Processor.QueueSpinIterations =
      static_cast<std::size_t>(std::max<std::int64_t>(
          getEnvInt("PASTA_QUEUE_SPINS",
                    static_cast<std::int64_t>(
                        Opts.Processor.QueueSpinIterations)),
          0));
  // 0 = hardware-derived default; explicit values clamp to [1, 64].
  Opts.Processor.ArenaShards = static_cast<std::size_t>(
      std::min<std::int64_t>(
          std::max<std::int64_t>(getEnvInt("PASTA_ARENA_SHARDS", 0), 0),
          64));
  Opts.Processor.ArenaMemo = getEnvBool("PASTA_ARENA_MEMO", true);
  Opts.Processor.ArenaMaxBytes = static_cast<std::uint64_t>(
      std::max<std::int64_t>(getEnvInt("PASTA_ARENA_MAX_BYTES", 0), 0));
  Opts.Processor.Validate =
      getEnvBool("PASTA_VALIDATE", Opts.Processor.Validate);
  Opts.Processor.LanesAuto =
      getEnvBool("PASTA_LANES_AUTO", Opts.Processor.LanesAuto);
  Opts.Processor.MinLanes = static_cast<std::size_t>(std::min<std::int64_t>(
      std::max<std::int64_t>(getEnvInt("PASTA_MIN_LANES", 0), 0), 64));
  Opts.Processor.MaxLanes = static_cast<std::size_t>(std::min<std::int64_t>(
      std::max<std::int64_t>(getEnvInt("PASTA_MAX_LANES", 0), 0), 64));
  return Opts;
}

Profiler::Profiler(ProfilerOptions Opts)
    : Opts(Opts), ActiveKnobs(Knobs::fromEnv()),
      Processor(Opts.Processor), Handler(Processor) {}

Profiler::~Profiler() {
  if (!Finished)
    finish();
}

Tool *Profiler::addTool(std::unique_ptr<Tool> T) {
  assert(T && "null tool");
  Tool *Raw = T.get();
  if (!Processor.addTool(Raw))
    return nullptr; // rejected: called from inside a dispatch context
  Tools.push_back(std::move(T));
  Raw->onStart();
  return Raw;
}

Tool *Profiler::addToolByName(const std::string &Name) {
  SessionError Err;
  std::unique_ptr<Tool> T = ToolRegistry::instance().create(Name, Err);
  if (!T) {
    logWarning(Err.message());
    return nullptr;
  }
  return addTool(std::move(T));
}

Tool *Profiler::addToolFromEnv() {
  auto Name = getEnv("PASTA_TOOL");
  if (!Name)
    return nullptr;
  return addToolByName(*Name);
}

bool Profiler::detachTool(Tool *T) {
  if (!T)
    return false;
  auto Owned = std::find_if(Tools.begin(), Tools.end(),
                            [T](const std::unique_ptr<Tool> &P) {
                              return P.get() == T;
                            });
  if (Owned == Tools.end())
    return false;
  if (std::find(Detached.begin(), Detached.end(), T) != Detached.end())
    return false; // already detached
  if (!Processor.removeTool(T))
    return false; // rejected: called from inside a dispatch context
  // The swap's drain barrier delivered every pre-detach admission; the
  // tool's report is now a frozen snapshot of its attached window.
  T->onFinish();
  Detached.push_back(T);
  return true;
}

bool Profiler::isDetached(const Tool *T) const {
  return std::find(Detached.begin(), Detached.end(), T) != Detached.end();
}

bool Profiler::detachToolByName(const std::string &Name) {
  for (auto &T : Tools) {
    if (T->name() != Name)
      continue;
    if (std::find(Detached.begin(), Detached.end(), T.get()) !=
        Detached.end())
      continue; // keep scanning: an earlier same-name tool was detached
    return detachTool(T.get());
  }
  return false;
}

void Profiler::attachCuda(cuda::CudaRuntime &Runtime, int DeviceIndex) {
  Handler.attachCuda(Runtime, DeviceIndex, Opts.Trace);
}

void Profiler::attachHip(hip::HipRuntime &Runtime, int AgentIndex) {
  Handler.attachHip(Runtime, AgentIndex, Opts.Trace);
}

void Profiler::attachDl(dl::CallbackRegistry &Callbacks) {
  Handler.attachDl(Callbacks);
}

void Profiler::finish() {
  if (Finished)
    return;
  Finished = true;
  Handler.detach();
  // Hard flush barrier: every admitted event must reach the tools before
  // onFinish snapshots their state (async reports stay deterministic).
  Processor.flush();
  for (auto &T : Tools)
    if (std::find(Detached.begin(), Detached.end(), T.get()) ==
        Detached.end())
      T->onFinish();
}

void Profiler::writeReports(std::FILE *Out) {
  for (auto &T : Tools)
    T->writeReport(Out);
}

void Profiler::writeReports(ReportSink &Sink) { writeReports(Sink, true); }

void Profiler::writeReports(ReportSink &Sink, bool Close) {
  for (auto &T : Tools)
    T->report(Sink);
  if (Close)
    Sink.close();
}
