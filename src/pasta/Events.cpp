//===- pasta/Events.cpp ---------------------------------------------------===//
//
// Part of the PASTA reproduction, under the MIT license.
//
//===----------------------------------------------------------------------===//

#include "pasta/Events.h"

#include "dl/Tensor.h"
#include "sim/Kernel.h"
#include "support/ErrorHandling.h"

using namespace pasta;

void Event::retainPointees() {
  if (Kernel && !OwnedKernel) {
    OwnedKernel = std::make_shared<sim::KernelDesc>(*Kernel);
    Kernel = OwnedKernel.get();
  }
  if (Tensor && !OwnedTensor) {
    OwnedTensor = std::make_shared<dl::TensorInfo>(*Tensor);
    Tensor = OwnedTensor.get();
  }
}

const char *pasta::eventKindName(EventKind Kind) {
  switch (Kind) {
  case EventKind::DriverFunction:
    return "DriverFunction";
  case EventKind::RuntimeFunction:
    return "RuntimeFunction";
  case EventKind::Synchronization:
    return "Synchronization";
  case EventKind::KernelLaunch:
    return "KernelLaunch";
  case EventKind::KernelComplete:
    return "KernelComplete";
  case EventKind::MemoryCopy:
    return "MemoryCopy";
  case EventKind::MemorySet:
    return "MemorySet";
  case EventKind::MemoryAlloc:
    return "MemoryAlloc";
  case EventKind::MemoryFree:
    return "MemoryFree";
  case EventKind::StreamCreate:
    return "StreamCreate";
  case EventKind::StreamDestroy:
    return "StreamDestroy";
  case EventKind::BatchMemoryOp:
    return "BatchMemoryOp";
  case EventKind::ThreadBlockEntry:
    return "ThreadBlockEntry";
  case EventKind::ThreadBlockExit:
    return "ThreadBlockExit";
  case EventKind::BarrierInstruction:
    return "BarrierInstruction";
  case EventKind::DeviceMalloc:
    return "DeviceMalloc";
  case EventKind::DeviceFree:
    return "DeviceFree";
  case EventKind::OperatorStart:
    return "OperatorStart";
  case EventKind::OperatorEnd:
    return "OperatorEnd";
  case EventKind::TensorAlloc:
    return "TensorAlloc";
  case EventKind::TensorReclaim:
    return "TensorReclaim";
  case EventKind::LayerBoundary:
    return "LayerBoundary";
  case EventKind::FwdBwdBoundary:
    return "FwdBwdBoundary";
  case EventKind::CustomRegion:
    return "CustomRegion";
  }
  PASTA_UNREACHABLE("unknown EventKind");
}

EventLevel pasta::eventLevel(EventKind Kind) {
  switch (Kind) {
  case EventKind::DriverFunction:
  case EventKind::RuntimeFunction:
  case EventKind::Synchronization:
  case EventKind::KernelLaunch:
  case EventKind::KernelComplete:
  case EventKind::MemoryCopy:
  case EventKind::MemorySet:
  case EventKind::MemoryAlloc:
  case EventKind::MemoryFree:
  case EventKind::StreamCreate:
  case EventKind::StreamDestroy:
  case EventKind::BatchMemoryOp:
    return EventLevel::HostApi;
  case EventKind::ThreadBlockEntry:
  case EventKind::ThreadBlockExit:
  case EventKind::BarrierInstruction:
  case EventKind::DeviceMalloc:
  case EventKind::DeviceFree:
    return EventLevel::DeviceOp;
  case EventKind::OperatorStart:
  case EventKind::OperatorEnd:
  case EventKind::TensorAlloc:
  case EventKind::TensorReclaim:
  case EventKind::LayerBoundary:
  case EventKind::FwdBwdBoundary:
  case EventKind::CustomRegion:
    return EventLevel::DlFramework;
  }
  PASTA_UNREACHABLE("unknown EventKind");
}

AdmissionClass pasta::eventAdmissionClass(EventKind Kind) {
  switch (Kind) {
  case EventKind::Synchronization:
    return AdmissionClass::Barrier;
  case EventKind::MemoryAlloc:
  case EventKind::MemoryFree:
  case EventKind::StreamCreate:
  case EventKind::StreamDestroy:
  case EventKind::DeviceMalloc:
  case EventKind::DeviceFree:
  case EventKind::TensorAlloc:
  case EventKind::TensorReclaim:
    return AdmissionClass::Resource;
  case EventKind::DriverFunction:
  case EventKind::RuntimeFunction:
  case EventKind::KernelLaunch:
  case EventKind::KernelComplete:
  case EventKind::MemoryCopy:
  case EventKind::MemorySet:
  case EventKind::BatchMemoryOp:
  case EventKind::ThreadBlockEntry:
  case EventKind::ThreadBlockExit:
  case EventKind::BarrierInstruction:
  case EventKind::OperatorStart:
  case EventKind::OperatorEnd:
  case EventKind::LayerBoundary:
  case EventKind::FwdBwdBoundary:
  case EventKind::CustomRegion:
    return AdmissionClass::Standard;
  }
  PASTA_UNREACHABLE("unknown EventKind");
}
