//===- pasta/EventQueue.h - Bounded MPSC event queue ------------*- C++ -*-===//
//
// Part of the PASTA reproduction, under the MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The buffer between event collection and tool analysis (paper §III-B's
/// dispatch unit, made concurrent): a bounded multi-producer /
/// single-consumer queue of normalized Events. The processor runs one
/// queue per dispatch lane; producers are the runtime/handler threads
/// calling EventProcessor::process(), the single consumer is the owning
/// lane's thread, which drains whole batches at a time (double
/// buffering: the consumer swaps the producing buffer out under the
/// lock and dispatches it lock-free). Events arrive with arena-interned
/// payloads, so buffering and batching shuffle refcounted handles, not
/// payload bytes.
///
/// When the queue is full, one of three overflow policies applies:
///
///  * Block      — producers wait for space; nothing is ever lost, at the
///                 cost of back-pressure into the application (the
///                 deterministic default).
///  * DropNewest — the incoming event is discarded and counted; the
///                 application never stalls.
///  * Sample     — 1/N of overflowing events are admitted (waiting for
///                 space like Block), the other N-1 are counted as
///                 sampled out; a statistical middle ground.
///
//===----------------------------------------------------------------------===//

#ifndef PASTA_PASTA_EVENTQUEUE_H
#define PASTA_PASTA_EVENTQUEUE_H

#include "pasta/Events.h"

#include <condition_variable>
#include <cstdint>
#include <mutex>
#include <optional>
#include <string>
#include <vector>

namespace pasta {

/// What happens to an incoming event when the queue is full.
enum class OverflowPolicy : std::uint8_t {
  Block,      ///< Producer waits for space (lossless, back-pressure).
  DropNewest, ///< Incoming event is discarded and counted.
  Sample,     ///< 1/N of overflowing events admitted, rest counted out.
};

/// Stable lower-case name ("block", "drop-newest", "sample").
const char *overflowPolicyName(OverflowPolicy Policy);

/// Parses driver/env spellings ("block", "drop", "drop-newest",
/// "sample"); nullopt when unknown.
std::optional<OverflowPolicy> parseOverflowPolicy(const std::string &Name);

/// Monotonic counters; snapshot via EventQueue::counters().
struct EventQueueCounters {
  std::uint64_t Enqueued = 0;
  std::uint64_t Dropped = 0;
  std::uint64_t SampledOut = 0;
  /// High-water mark of the producing buffer.
  std::uint64_t MaxDepth = 0;
  /// Batches handed to the consumer.
  std::uint64_t Batches = 0;
};

/// Bounded MPSC queue with batched, double-buffered consumption.
class EventQueue {
public:
  /// \p Capacity bounds the producing buffer (> 0); \p SampleEveryN is
  /// the Sample policy's N (> 0, ignored by the other policies).
  EventQueue(std::size_t Capacity, OverflowPolicy Policy,
             std::uint64_t SampleEveryN);

  EventQueue(const EventQueue &) = delete;
  EventQueue &operator=(const EventQueue &) = delete;

  /// Producer side: admits \p E per the overflow policy. Events arriving
  /// after close() are discarded. \p Critical events (resource admission
  /// class, barriers) bypass the lossy policies: they wait for space like
  /// Block so allocation/tensor views stay consistent under loss.
  /// When \p InternOnAdmit is set, the event's payloads are interned
  /// into that arena only once the event is actually admitted —
  /// single-lane routes use this so events discarded by a lossy policy
  /// never allocate or touch the arena (multi-lane fan-out interns
  /// before enqueueing instead, because the per-lane copies must share).
  void enqueue(Event E, bool Critical = false,
               EventArena *InternOnAdmit = nullptr);

  /// Consumer side: swaps the producing buffer into \p Batch, blocking
  /// until events are available. Returns false when the queue is closed
  /// and fully drained. Calling dequeueBatch also marks the previous
  /// batch as fully dispatched (the consumer is "idle" while blocked
  /// here), which is what waitDrained() synchronizes on.
  bool dequeueBatch(std::vector<Event> &Batch);

  /// Blocks until every enqueued event has been dispatched (queue empty
  /// AND the consumer is between batches). Producer-side flush barrier.
  void waitDrained();

  /// Ends the stream: the consumer drains what is queued, then
  /// dequeueBatch returns false. Idempotent.
  void close();

  std::size_t capacity() const { return Capacity; }
  OverflowPolicy policy() const { return Policy; }
  EventQueueCounters counters() const;

private:
  const std::size_t Capacity;
  const OverflowPolicy Policy;
  const std::uint64_t SampleEveryN;

  mutable std::mutex Mutex;
  std::condition_variable NotEmpty; ///< consumer waits for events
  std::condition_variable NotFull;  ///< Block/Sample producers wait here
  std::condition_variable Drained;  ///< waitDrained() waiters
  std::vector<Event> Buffer;
  EventQueueCounters Counters;
  std::uint64_t OverflowSeen = 0; ///< Sample policy's modular counter
  bool ConsumerIdle = true;
  bool Closed = false;
};

} // namespace pasta

#endif // PASTA_PASTA_EVENTQUEUE_H
