//===- pasta/EventQueue.h - Ticketed MPSC ring queue ------------*- C++ -*-===//
//
// Part of the PASTA reproduction, under the MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The buffer between event collection and tool analysis (paper §III-B's
/// dispatch unit, made concurrent): a bounded multi-producer /
/// single-consumer *ring* of normalized Events. The processor runs one
/// queue per dispatch lane; producers are the runtime/handler threads
/// calling EventProcessor::process(), the single consumer is the owning
/// lane's thread, which drains whole batches at a time. Events arrive
/// with arena-interned payloads, so buffering and batching shuffle
/// refcounted handles, not payload bytes.
///
/// Admission protocol (the low-contention producer path):
///
///  * Producers *claim* a slot by taking a ticket — an atomic fetch-add
///    on the tail for admissions that cannot fail (Block policy,
///    critical events), a fullness-checked CAS for lossy policies (so a
///    DropNewest producer never claims a slot it would have to stall
///    on). No lock is taken on the admission fast path.
///  * A claimed slot is *published* by storing the ticket+1 into the
///    slot's sequence number (release); the consumer recognizes
///    published slots by that sequence and frees them by storing
///    ticket+ring-size after moving the event out. Per-producer FIFO
///    order follows from ticket order.
///  * When the ring is actually full, Block/Sample producers spin
///    briefly and then park on a futex-style waiter (mutex+condvar,
///    entered only on this slow path). The consumer wakes parked
///    producers only when someone is actually parked — batch drains no
///    longer broadcast to empty waiter lists (see counters Spins/Parks).
///
/// The consumer still drains double-buffered batches: dequeueBatch moves
/// every contiguously published slot into the caller's vector and
/// dispatches it lock-free; waitDrained() synchronizes on "ring empty
/// and the consumer between batches", exactly as before.
///
/// When the queue is full, one of three overflow policies applies:
///
///  * Block      — producers wait for space; nothing is ever lost, at the
///                 cost of back-pressure into the application (the
///                 deterministic default).
///  * DropNewest — the incoming event is discarded and counted; the
///                 application never stalls.
///  * Sample     — 1/N of overflowing events are admitted (waiting for
///                 space like Block), the other N-1 are counted as
///                 sampled out; a statistical middle ground. The modular
///                 counter is *per producer thread* (a thread-local memo
///                 keyed by the queue's process-unique id, mirroring the
///                 arena's intern memo), so the sampled-out fast path
///                 performs no shared write at all — each producer
///                 independently keeps 1/N of the overflow it produces,
///                 and only the SampledOut accounting counter is shared.
///
//===----------------------------------------------------------------------===//

#ifndef PASTA_PASTA_EVENTQUEUE_H
#define PASTA_PASTA_EVENTQUEUE_H

#include "pasta/Events.h"

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <memory>
#include <mutex>
#include <optional>
#include <string>
#include <vector>

namespace pasta {

/// What happens to an incoming event when the queue is full.
enum class OverflowPolicy : std::uint8_t {
  Block,      ///< Producer waits for space (lossless, back-pressure).
  DropNewest, ///< Incoming event is discarded and counted.
  Sample,     ///< 1/N of overflowing events admitted, rest counted out.
};

/// Stable lower-case name ("block", "drop-newest", "sample").
const char *overflowPolicyName(OverflowPolicy Policy);

/// Parses driver/env spellings ("block", "drop", "drop-newest",
/// "sample"); nullopt when unknown.
std::optional<OverflowPolicy> parseOverflowPolicy(const std::string &Name);

/// Default spin window before a full-ring producer (or empty-ring
/// consumer) parks: 64 iterations on multi-core hosts, 0 on single-core
/// ones — spinning there only delays the thread that would free the
/// ring.
std::size_t defaultQueueSpinIterations();

/// Monotonic counters; snapshot via EventQueue::counters().
struct EventQueueCounters {
  std::uint64_t Enqueued = 0;
  std::uint64_t Dropped = 0;
  std::uint64_t SampledOut = 0;
  /// High-water mark of occupied ring slots.
  std::uint64_t MaxDepth = 0;
  /// Batches handed to the consumer.
  std::uint64_t Batches = 0;
  /// Enqueues that found the ring full and entered the spin window.
  std::uint64_t Spins = 0;
  /// Enqueues that exhausted the spin window and parked on the waiter.
  std::uint64_t Parks = 0;
};

/// Bounded ticketed MPSC ring with batched, double-buffered consumption.
class EventQueue {
public:
  /// The ring preallocates its slots (unlike the old growable buffer),
  /// so the capacity is clamped to this many events (65536; ~tens of MB
  /// per lane) — capacity() reports the clamped figure. Depths past a
  /// few thousand showed no benefit in bench_ablation_async_queue long
  /// before this bound.
  static constexpr std::size_t MaxCapacity = std::size_t(1) << 16;

  /// \p Capacity bounds the number of buffered events (> 0, clamped to
  /// MaxCapacity; the backing ring rounds up to a power of two but
  /// admission enforces the exact figure); \p SampleEveryN is the
  /// Sample policy's N (> 0, ignored by the other policies).
  /// \p SpinIterations is how long a full-ring producer (or an
  /// empty-ring consumer) spins before parking; 0 parks immediately —
  /// the right call on single-core hosts.
  EventQueue(std::size_t Capacity, OverflowPolicy Policy,
             std::uint64_t SampleEveryN,
             std::size_t SpinIterations = defaultQueueSpinIterations());
  ~EventQueue();

  EventQueue(const EventQueue &) = delete;
  EventQueue &operator=(const EventQueue &) = delete;

  /// Producer side: admits \p E per the overflow policy. Events arriving
  /// after close() are discarded. \p Critical events (resource admission
  /// class, barriers) bypass the lossy policies: they wait for space like
  /// Block so allocation/tensor views stay consistent under loss.
  /// When \p InternOnAdmit is set, the event's payloads are interned
  /// into that arena only once the event's slot claim succeeded —
  /// single-lane routes use this so events discarded by a lossy policy
  /// never allocate or touch the arena (multi-lane fan-out interns
  /// before enqueueing instead, because the per-lane copies must share).
  void enqueue(Event E, bool Critical = false,
               EventArena *InternOnAdmit = nullptr);

  /// Consumer side: moves every contiguously published event into
  /// \p Batch, blocking until events are available. Returns false when
  /// the queue is closed and fully drained. Calling dequeueBatch also
  /// marks the previous batch as fully dispatched (the consumer is
  /// "idle" while blocked here), which is what waitDrained()
  /// synchronizes on.
  bool dequeueBatch(std::vector<Event> &Batch);

  /// Blocks until every claimed event has been dispatched (ring empty
  /// AND the consumer is between batches). Producer-side flush barrier.
  void waitDrained();

  /// Ends the stream: the consumer drains what is claimed, then
  /// dequeueBatch returns false. Idempotent. Producers parked for space
  /// at close time still publish (their events are delivered rather
  /// than torn out of the ticket sequence); enqueues *arriving* after
  /// close are discarded and counted.
  void close();

  std::size_t capacity() const { return Capacity; }
  OverflowPolicy policy() const { return Policy; }
  EventQueueCounters counters() const;

  /// Validation accessors (PASTA_VALIDATE flush-barrier assertions).
  /// Tickets claimed by producers so far; monotonic.
  std::uint64_t admittedTickets() const {
    return ticketOf(Tail.load(std::memory_order_acquire));
  }
  /// Tickets fully consumed (dispatched) so far; monotonic, so a
  /// barrier check against a pre-barrier admitted snapshot is race-free
  /// even with concurrent producers.
  std::uint64_t consumedTickets() const {
    return Head.load(std::memory_order_acquire);
  }

private:
  /// One ring slot. Seq encodes the publication protocol: == ticket
  /// means free for that ticket's producer, == ticket+1 means published,
  /// == ticket+RingSize means consumed (free for the next lap).
  struct Slot {
    std::atomic<std::uint64_t> Seq{0};
    Event E;
  };

  Slot &slot(std::uint64_t Ticket) {
    return Ring[static_cast<std::size_t>(Ticket) & RingMask];
  }

  /// Claims the next ticket with a fetch-add; nullopt when the queue
  /// was closed before the claim (the increment is repaired and the
  /// event counted as dropped).
  std::optional<std::uint64_t> claimTicket();

  /// Publishes \p E into the slot claimed by \p Ticket (interning first
  /// when the admission deferred it) and wakes a parked consumer.
  void publish(std::uint64_t Ticket, Event &&E, EventArena *InternOnAdmit);

  /// Spin-then-park until \p Ticket's slot has space
  /// (Ticket - Head < Capacity). Slow path only.
  void awaitSpace(std::uint64_t Ticket);

  /// Wakes drain waiters if the queue is drained and anyone waits.
  void notifyDrainedIfIdle();

  const std::size_t Capacity;
  const OverflowPolicy Policy;
  const std::uint64_t SampleEveryN;
  const std::size_t SpinIterations;
  /// Process-unique id tagging this queue's per-producer Sample-counter
  /// memo entries (a recycled heap address must not revive a dead
  /// queue's overflow count; same pattern as EventArena's intern memo).
  const std::uint64_t Id;
  std::size_t RingMask = 0;
  /// The ring storage (power-of-two sized, >= Capacity).
  std::vector<Slot> Ring;

  /// close() sets this bit in Tail with one fetch_or, making closure
  /// atomic with ticket claims in Tail's modification order: a claim
  /// either precedes the close (its event is delivered before the
  /// consumer can observe closed-and-drained) or observes the bit and
  /// voids itself (counted dropped, increment repaired). Without this,
  /// an enqueue racing close() could publish into a ring whose consumer
  /// already exited — losing the event and hanging waitDrained().
  static constexpr std::uint64_t ClosedBit = std::uint64_t(1) << 63;

  static bool isClosed(std::uint64_t TailWord) {
    return (TailWord & ClosedBit) != 0;
  }
  static std::uint64_t ticketOf(std::uint64_t TailWord) {
    return TailWord & ~ClosedBit;
  }

  /// Next ticket to claim (plus ClosedBit once closed). fetch-add for
  /// must-admit paths, CAS for lossy ones.
  std::atomic<std::uint64_t> Tail{0};
  /// First unconsumed ticket; published by the consumer after freeing a
  /// batch's slots.
  std::atomic<std::uint64_t> Head{0};
  /// True while the consumer is between batches (blocked in
  /// dequeueBatch); waitDrained synchronizes on it.
  std::atomic<bool> ConsumerIdle{true};
  /// True while the consumer is parked on NotEmpty — producers only
  /// take the wait mutex to wake it when it actually is.
  std::atomic<bool> ConsumerParked{false};
  /// Producers parked on NotFull / threads parked in waitDrained.
  /// Wakeups are targeted: the consumer skips the mutex+notify entirely
  /// when these are zero (the common case), so batch drains no longer
  /// thundering-herd empty waiter lists.
  std::atomic<std::uint32_t> ParkedProducers{0};
  std::atomic<std::uint32_t> DrainWaiters{0};
  // The Sample policy's modular counter lives in a thread-local memo
  // keyed by Id (see EventQueue.cpp), not here: the sampled-out path is
  // the *lossy* fast path, and a shared atomic counter on it was the
  // last cross-producer write on lossy admission.

  /// Enqueued is not here: it is derived from Tail (every claim
  /// publishes), keeping the admission fast path at one atomic RMW.
  struct {
    std::atomic<std::uint64_t> Dropped{0};
    std::atomic<std::uint64_t> SampledOut{0};
    std::atomic<std::uint64_t> MaxDepth{0};
    std::atomic<std::uint64_t> Batches{0};
    std::atomic<std::uint64_t> Spins{0};
    std::atomic<std::uint64_t> Parks{0};
  } Counters;

  /// Slow-path parking only; never taken on the admission fast path.
  std::mutex WaitMutex;
  std::condition_variable NotEmpty; ///< parked consumer
  std::condition_variable NotFull;  ///< parked Block/Sample producers
  std::condition_variable Drained;  ///< waitDrained() waiters
};

} // namespace pasta

#endif // PASTA_PASTA_EVENTQUEUE_H
