//===- pasta/Injection.h - Process-injection policy -------------*- C++ -*-===//
//
// Part of the PASTA reproduction, under the MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The multi-process injection policy of paper §IV-D. Multi-GPU
/// applications spawn one worker process per GPU plus auxiliary helpers
/// (e.g. Megatron-LM's JIT compilation workers). Blanket LD_PRELOAD
/// injection instruments the helpers too — they never create a CUDA
/// context, producing spurious initialization and potential runtime
/// errors. The CUDA_INJECTION64_PATH mechanism instead injects the
/// profiler only into processes that actually initialize a CUDA context.
///
/// InjectionPolicy models both mechanisms over a small process registry,
/// so the behavioural difference is testable without real processes.
///
//===----------------------------------------------------------------------===//

#ifndef PASTA_PASTA_INJECTION_H
#define PASTA_PASTA_INJECTION_H

#include <cstdint>
#include <string>
#include <vector>

namespace pasta {

/// How the profiler shared library reaches target processes.
enum class InjectionMechanism {
  /// LD_PRELOAD: every spawned process loads the profiler.
  LdPreload,
  /// CUDA_INJECTION64_PATH: only processes initializing a CUDA context
  /// load it.
  CudaInjectionPath,
};

/// One process of a (simulated) multi-process job.
struct ProcessInfo {
  std::uint32_t Pid = 0;
  std::string Command;
  /// Worker processes initialize a CUDA context; auxiliary helpers (JIT
  /// compilers, data loaders) do not.
  bool InitializesCudaContext = false;
};

/// Decides which processes get instrumented under a mechanism.
class InjectionPolicy {
public:
  explicit InjectionPolicy(InjectionMechanism Mechanism)
      : Mechanism(Mechanism) {}

  /// Registers a spawned process; returns true when the profiler is
  /// injected into it under this policy.
  bool onProcessSpawn(const ProcessInfo &Process) {
    bool Injected = Mechanism == InjectionMechanism::LdPreload ||
                    Process.InitializesCudaContext;
    if (Injected)
      Instrumented.push_back(Process);
    else
      Skipped.push_back(Process);
    return Injected;
  }

  /// Processes that were instrumented but never created a CUDA context —
  /// the spurious-injection hazard §IV-D describes for LD_PRELOAD.
  std::vector<ProcessInfo> spuriouslyInstrumented() const {
    std::vector<ProcessInfo> Out;
    for (const ProcessInfo &Process : Instrumented)
      if (!Process.InitializesCudaContext)
        Out.push_back(Process);
    return Out;
  }

  const std::vector<ProcessInfo> &instrumented() const {
    return Instrumented;
  }
  const std::vector<ProcessInfo> &skipped() const { return Skipped; }
  InjectionMechanism mechanism() const { return Mechanism; }

private:
  InjectionMechanism Mechanism;
  std::vector<ProcessInfo> Instrumented;
  std::vector<ProcessInfo> Skipped;
};

} // namespace pasta

#endif // PASTA_PASTA_INJECTION_H
