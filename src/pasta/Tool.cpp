//===- pasta/Tool.cpp -----------------------------------------------------===//
//
// Part of the PASTA reproduction, under the MIT license.
//
//===----------------------------------------------------------------------===//

#include "pasta/Tool.h"

#include "support/Format.h"
#include "support/Logging.h"
#include "support/ReportSink.h"

#include <cstdlib>

using namespace pasta;

DeviceAnalysis::~DeviceAnalysis() = default;
Tool::~Tool() = default;

const char *pasta::capabilityName(Capability Cap) {
  switch (Cap) {
  case Capability::CoarseEvents:
    return "coarse-events";
  case Capability::AccessRecords:
    return "access-records";
  case Capability::InstrMix:
    return "instr-mix";
  case Capability::UvmCounters:
    return "uvm-counters";
  }
  return "unknown";
}

std::string CapabilitySet::str() const {
  std::string Out;
  for (Capability Cap :
       {Capability::CoarseEvents, Capability::AccessRecords,
        Capability::InstrMix, Capability::UvmCounters}) {
    if (!has(Cap))
      continue;
    if (!Out.empty())
      Out += '|';
    Out += capabilityName(Cap);
  }
  return Out.empty() ? "none" : Out;
}

const char *pasta::executionModelName(ExecutionModel Model) {
  switch (Model) {
  case ExecutionModel::Serial:
    return "serial";
  case ExecutionModel::ShardByDevice:
    return "shard-by-device";
  case ExecutionModel::Concurrent:
    return "concurrent";
  }
  return "unknown";
}

std::string EventKindMask::str() const {
  if (*this == all())
    return "all";
  if (empty())
    return "none";
  std::string Out;
  for (std::size_t I = 0; I < NumEventKinds; ++I) {
    EventKind Kind = static_cast<EventKind>(I);
    if (!has(Kind))
      continue;
    if (!Out.empty())
      Out += '|';
    Out += eventKindName(Kind);
  }
  return Out;
}

CapabilitySet Subscription::requiredCapabilities() const {
  CapabilitySet Required(Capability::CoarseEvents);
  if (AccessRecords)
    Required |= Capability::AccessRecords;
  if (InstrMix)
    Required |= Capability::InstrMix;
  if (UvmCounters)
    Required |= Capability::UvmCounters;
  return Required;
}

CapabilitySet Tool::probeFineGrained() {
  // Probe the fine-grained hooks with empty payloads: when the virtual
  // call lands back in the Tool default, that hook was not overridden and
  // the matching capability is not required. Overrides observe one
  // zero-record batch / zero mix, which every tool treats as a no-op.
  CapabilitySet DefaultsReached;
  ProbeSink = &DefaultsReached;
  sim::LaunchInfo ProbeInfo;
  onAccessBatch(ProbeInfo, nullptr, 0);
  onInstrMix(ProbeInfo, sim::InstrMix());
  ProbeSink = nullptr;

  CapabilitySet Probed;
  if (!DefaultsReached.has(Capability::AccessRecords) || deviceAnalysis())
    Probed |= Capability::AccessRecords;
  if (!DefaultsReached.has(Capability::InstrMix))
    Probed |= Capability::InstrMix;
  return Probed;
}

Subscription Tool::subscription() {
  // Migration default for override-only tools: everything coarse on one
  // serial lane, trace breakdowns on (the probe cannot see an
  // onKernelTraceEnd override), fine-grained interests from the probe.
  CapabilitySet Probed = probeFineGrained();
  Subscription Sub;
  Sub.Kinds = EventKindMask::all();
  Sub.AccessRecords = Probed.has(Capability::AccessRecords);
  Sub.InstrMix = Probed.has(Capability::InstrMix);
  Sub.KernelTrace = true;
  // Conservative: a legacy tool may capture stacks from any hook, so its
  // lane keeps receiving Python-stack context. Explicit subscriptions
  // opt out (or in) precisely.
  Sub.CapturesStacks = true;
  Sub.Model = ExecutionModel::Serial;
  return Sub;
}

CapabilitySet Tool::requirements() {
  CapabilitySet Required = subscription().requiredCapabilities();
  if (deviceAnalysis())
    Required |= Capability::AccessRecords;
  return Required;
}

CapabilitySet Tool::legacyProbeRequirements() {
  return CapabilitySet(Capability::CoarseEvents) | probeFineGrained();
}

std::string Tool::renderTextReport() {
  char *Buffer = nullptr;
  std::size_t Size = 0;
  std::FILE *Mem = open_memstream(&Buffer, &Size);
  if (!Mem)
    return std::string();
  writeReport(Mem);
  std::fclose(Mem);
  std::string Text(Buffer, Size);
  std::free(Buffer);
  return Text;
}

void Tool::report(ReportSink &Sink) {
  Sink.beginReport(name());
  std::string Text = renderTextReport();
  if (!Text.empty())
    Sink.text(Text);
  Sink.endReport();
}

ToolRegistry &ToolRegistry::instance() {
  static ToolRegistry Registry;
  return Registry;
}

void ToolRegistry::registerTool(const std::string &Name, Factory MakeTool) {
  auto [It, Inserted] = Factories.emplace(Name, std::move(MakeTool));
  if (!Inserted)
    logWarning("tool registered twice: " + Name);
}

std::unique_ptr<Tool> ToolRegistry::create(const std::string &Name) const {
  auto It = Factories.find(Name);
  if (It == Factories.end())
    return nullptr;
  return It->second();
}

std::unique_ptr<Tool> ToolRegistry::create(const std::string &Name,
                                           SessionError &Err) const {
  if (std::unique_ptr<Tool> T = create(Name))
    return T;
  std::vector<std::string> Known = registeredNames();
  Err.assign("unknown tool '" + Name + "'; registered tools: " +
             (Known.empty() ? "<none>" : join(Known, ", ")));
  return nullptr;
}

std::vector<std::string> ToolRegistry::registeredNames() const {
  std::vector<std::string> Names;
  Names.reserve(Factories.size());
  for (const auto &[Name, Factory] : Factories)
    Names.push_back(Name);
  return Names;
}
