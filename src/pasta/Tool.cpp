//===- pasta/Tool.cpp -----------------------------------------------------===//
//
// Part of the PASTA reproduction, under the MIT license.
//
//===----------------------------------------------------------------------===//

#include "pasta/Tool.h"

#include "support/Format.h"
#include "support/Logging.h"
#include "support/ReportSink.h"

#include <cstdlib>

using namespace pasta;

DeviceAnalysis::~DeviceAnalysis() = default;
Tool::~Tool() = default;

const char *pasta::capabilityName(Capability Cap) {
  switch (Cap) {
  case Capability::CoarseEvents:
    return "coarse-events";
  case Capability::AccessRecords:
    return "access-records";
  case Capability::InstrMix:
    return "instr-mix";
  case Capability::UvmCounters:
    return "uvm-counters";
  }
  return "unknown";
}

std::string CapabilitySet::str() const {
  std::string Out;
  for (Capability Cap :
       {Capability::CoarseEvents, Capability::AccessRecords,
        Capability::InstrMix, Capability::UvmCounters}) {
    if (!has(Cap))
      continue;
    if (!Out.empty())
      Out += '|';
    Out += capabilityName(Cap);
  }
  return Out.empty() ? "none" : Out;
}

CapabilitySet Tool::requirements() {
  // Probe the fine-grained hooks with empty payloads: when the virtual
  // call lands back in the Tool default, that hook was not overridden and
  // the matching capability is not required. Overrides observe one
  // zero-record batch / zero mix, which every tool treats as a no-op.
  CapabilitySet DefaultsReached;
  ProbeSink = &DefaultsReached;
  sim::LaunchInfo ProbeInfo;
  onAccessBatch(ProbeInfo, nullptr, 0);
  onInstrMix(ProbeInfo, sim::InstrMix());
  ProbeSink = nullptr;

  CapabilitySet Required(Capability::CoarseEvents);
  if (!DefaultsReached.has(Capability::AccessRecords) || deviceAnalysis())
    Required |= Capability::AccessRecords;
  if (!DefaultsReached.has(Capability::InstrMix))
    Required |= Capability::InstrMix;
  return Required;
}

std::string Tool::renderTextReport() {
  char *Buffer = nullptr;
  std::size_t Size = 0;
  std::FILE *Mem = open_memstream(&Buffer, &Size);
  if (!Mem)
    return std::string();
  writeReport(Mem);
  std::fclose(Mem);
  std::string Text(Buffer, Size);
  std::free(Buffer);
  return Text;
}

void Tool::report(ReportSink &Sink) {
  Sink.beginReport(name());
  std::string Text = renderTextReport();
  if (!Text.empty())
    Sink.text(Text);
  Sink.endReport();
}

ToolRegistry &ToolRegistry::instance() {
  static ToolRegistry Registry;
  return Registry;
}

void ToolRegistry::registerTool(const std::string &Name, Factory MakeTool) {
  auto [It, Inserted] = Factories.emplace(Name, std::move(MakeTool));
  if (!Inserted)
    logWarning("tool registered twice: " + Name);
}

std::unique_ptr<Tool> ToolRegistry::create(const std::string &Name) const {
  auto It = Factories.find(Name);
  if (It == Factories.end())
    return nullptr;
  return It->second();
}

std::unique_ptr<Tool> ToolRegistry::create(const std::string &Name,
                                           SessionError &Err) const {
  if (std::unique_ptr<Tool> T = create(Name))
    return T;
  std::vector<std::string> Known = registeredNames();
  Err.assign("unknown tool '" + Name + "'; registered tools: " +
             (Known.empty() ? "<none>" : join(Known, ", ")));
  return nullptr;
}

std::vector<std::string> ToolRegistry::registeredNames() const {
  std::vector<std::string> Names;
  Names.reserve(Factories.size());
  for (const auto &[Name, Factory] : Factories)
    Names.push_back(Name);
  return Names;
}
