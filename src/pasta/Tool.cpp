//===- pasta/Tool.cpp -----------------------------------------------------===//
//
// Part of the PASTA reproduction, under the MIT license.
//
//===----------------------------------------------------------------------===//

#include "pasta/Tool.h"

#include "support/Logging.h"

using namespace pasta;

DeviceAnalysis::~DeviceAnalysis() = default;
Tool::~Tool() = default;

ToolRegistry &ToolRegistry::instance() {
  static ToolRegistry Registry;
  return Registry;
}

void ToolRegistry::registerTool(const std::string &Name, Factory MakeTool) {
  auto [It, Inserted] = Factories.emplace(Name, std::move(MakeTool));
  if (!Inserted)
    logWarning("tool registered twice: " + Name);
}

std::unique_ptr<Tool> ToolRegistry::create(const std::string &Name) const {
  auto It = Factories.find(Name);
  if (It == Factories.end())
    return nullptr;
  return It->second();
}

std::vector<std::string> ToolRegistry::registeredNames() const {
  std::vector<std::string> Names;
  Names.reserve(Factories.size());
  for (const auto &[Name, Factory] : Factories)
    Names.push_back(Name);
  return Names;
}
