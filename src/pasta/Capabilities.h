//===- pasta/Capabilities.h - Instrumentation capabilities ------*- C++ -*-===//
//
// Part of the PASTA reproduction, under the MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Event classes a platform backend can provide and a tool can consume.
/// Sessions intersect the union of the attached tools' requirements()
/// with the backend's capabilities() and enable only the instrumentation
/// that is actually needed — the paper's selective-instrumentation story
/// (§III-D) made explicit in the API.
///
//===----------------------------------------------------------------------===//

#ifndef PASTA_PASTA_CAPABILITIES_H
#define PASTA_PASTA_CAPABILITIES_H

#include <initializer_list>
#include <string>

namespace pasta {

/// One class of profiling data.
enum class Capability : unsigned {
  /// Coarse host-API events (kernel launches, allocations, copies, DL
  /// framework operators) — cheap callbacks, every backend has them.
  CoarseEvents = 1u << 0,
  /// Fine-grained memory-access records from device instrumentation.
  AccessRecords = 1u << 1,
  /// Dynamic instruction mix (full-SASS coverage backends only).
  InstrMix = 1u << 2,
  /// Unified-memory fault/migration/eviction counters.
  UvmCounters = 1u << 3,
};

const char *capabilityName(Capability Cap);

/// Small value-type bitmask over Capability.
class CapabilitySet {
public:
  CapabilitySet() = default;
  CapabilitySet(Capability Cap) : Bits(static_cast<unsigned>(Cap)) {}
  CapabilitySet(std::initializer_list<Capability> Caps) {
    for (Capability Cap : Caps)
      Bits |= static_cast<unsigned>(Cap);
  }

  static CapabilitySet all() {
    return {Capability::CoarseEvents, Capability::AccessRecords,
            Capability::InstrMix, Capability::UvmCounters};
  }

  bool has(Capability Cap) const {
    return (Bits & static_cast<unsigned>(Cap)) != 0;
  }
  bool empty() const { return Bits == 0; }

  CapabilitySet &operator|=(CapabilitySet Other) {
    Bits |= Other.Bits;
    return *this;
  }
  CapabilitySet &operator&=(CapabilitySet Other) {
    Bits &= Other.Bits;
    return *this;
  }
  friend CapabilitySet operator|(CapabilitySet A, CapabilitySet B) {
    return A |= B;
  }
  friend CapabilitySet operator&(CapabilitySet A, CapabilitySet B) {
    return A &= B;
  }
  /// Capabilities in *this but not in \p Other.
  CapabilitySet minus(CapabilitySet Other) const {
    CapabilitySet Result;
    Result.Bits = Bits & ~Other.Bits;
    return Result;
  }
  friend bool operator==(CapabilitySet A, CapabilitySet B) {
    return A.Bits == B.Bits;
  }
  friend bool operator!=(CapabilitySet A, CapabilitySet B) {
    return A.Bits != B.Bits;
  }

  /// "coarse-events|access-records" style rendering for diagnostics.
  std::string str() const;

private:
  unsigned Bits = 0;
};

} // namespace pasta

#endif // PASTA_PASTA_CAPABILITIES_H
