//===- pasta/TraceWriter.h - Binary trace capture ---------------*- C++ -*-===//
//
// Part of the PASTA reproduction, under the MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Serializes an admitted event stream into the PASTA binary trace
/// format (TraceFormat.h / docs/TRACE_FORMAT.md). The writer mirrors
/// the EventArena's content deduplication on disk: each distinct
/// string, Python stack and kernel descriptor is emitted once as a
/// payload-definition record, and events reference it by u32 id. Dedup
/// is keyed by *content* (not handle identity) so the writer is correct
/// for both arena-interned events and sync-mode events whose payloads
/// are per-event allocations.
///
/// Usage: open(), append() per admitted event, finalize() to emit the
/// required End record and close the file. All failures surface through
/// SessionError (no exceptions anywhere in PASTA).
///
/// The destination is pluggable: open() writes a capture file, while
/// openSink() writes the same byte stream into any TraceOutput — the
/// stream_forward tool points it at a TraceStreamSink socket connection
/// with the kFlagStreamed header flag, which is how a live session
/// ships its admitted stream to an `accelprof --serve` aggregator
/// (docs/SERVE.md).
///
//===----------------------------------------------------------------------===//

#ifndef PASTA_PASTA_TRACEWRITER_H
#define PASTA_PASTA_TRACEWRITER_H

#include "pasta/SessionError.h"

#include <cstdint>
#include <cstdio>
#include <string>
#include <unordered_map>

namespace pasta {

struct Event;

/// Destination byte sink for TraceWriter: a capture file stays the
/// default, a TraceStreamSink socket connection is the streaming case.
/// write() returns false on a permanent failure; the writer then
/// latches failed and reports once, at finalize().
class TraceOutput {
public:
  virtual ~TraceOutput() = default;
  virtual bool write(const char *Data, std::size_t Size) = 0;
  /// Destination name for diagnostics ("file.trace", "socket:/run/x").
  virtual std::string describe() const = 0;
};

/// Capture-side counters (surfaced by the trace_capture tool's report).
struct TraceWriterStats {
  std::uint64_t Events = 0;
  /// Distinct payloads written to the definition tables, by kind.
  std::uint64_t Strings = 0;
  std::uint64_t Stacks = 0;
  std::uint64_t Kernels = 0;
  /// Payload references emitted in event records (id fields != 0).
  std::uint64_t PayloadRefs = 0;
  /// References resolved to an already-written definition — bytes the
  /// table encoding saved relative to inline payloads.
  std::uint64_t PayloadHits = 0;
  std::uint64_t BytesWritten = 0;
};

/// Streams Events into a binary trace file.
///
/// Not thread-safe: the intended producer is a Serial-lane tool
/// (trace_capture), which the dispatcher already serializes.
class TraceWriter {
public:
  TraceWriter() = default;
  ~TraceWriter();
  TraceWriter(const TraceWriter &) = delete;
  TraceWriter &operator=(const TraceWriter &) = delete;

  /// Creates \p Path (truncating) and writes the header with the
  /// capture-file flags word. False on failure with \p Err naming the
  /// file.
  bool open(const std::string &Path, SessionError &Err);

  /// Attaches \p Sink (not owned; must outlive the writer) and writes
  /// the header with \p Flags — trace::kFlagStreamed for socket
  /// streams. finalize() emits the End record but leaves the sink's
  /// lifecycle to its owner.
  bool openSink(TraceOutput &Sink, std::uint32_t Flags, SessionError &Err);

  bool isOpen() const { return Out != nullptr || Sink != nullptr; }
  const std::string &path() const { return FilePath; }

  /// Serializes one event, emitting definition records for any payload
  /// seen for the first time. Silently ignored when the writer is not
  /// open or a prior write failed (the failure is reported once, at
  /// finalize()).
  void append(const Event &E);

  /// Writes the End record, then closes the file (file mode) or
  /// detaches the sink (sink mode). Idempotent. False when any write
  /// (including earlier appends) failed, with \p Err naming the
  /// destination.
  bool finalize(SessionError &Err);

  const TraceWriterStats &stats() const { return Stats; }

private:
  std::uint32_t stringId(const std::string &Content);
  std::uint32_t stackId(const Event &E);
  std::uint32_t kernelId(const Event &E);
  void writeRecord(std::uint8_t Tag, const std::string &Body);
  void writeBytes(const char *Data, std::size_t Size);

  std::FILE *Out = nullptr;
  /// Non-null in sink mode (mutually exclusive with Out).
  TraceOutput *Sink = nullptr;
  std::string FilePath;
  bool WriteFailed = false;
  TraceWriterStats Stats;
  /// Content-keyed id tables (ids start at 1; 0 means "absent").
  /// Strings are keyed by their text, stacks and kernels by their
  /// serialized body minus the id — bounded by distinct payloads.
  std::unordered_map<std::string, std::uint32_t> StringIds;
  std::unordered_map<std::string, std::uint32_t> StackIds;
  std::unordered_map<std::string, std::uint32_t> KernelIds;
  /// Reused body scratch to keep append() allocation-light.
  std::string Scratch;
};

} // namespace pasta

#endif // PASTA_PASTA_TRACEWRITER_H
