//===- pasta/Validate.cpp - Runtime contract validation -------------------===//
//
// Part of the PASTA reproduction, under the MIT license.
//
//===----------------------------------------------------------------------===//

#include "pasta/Validate.h"

#include <cstdio>
#include <cstdlib>
#include <thread>

namespace pasta {

namespace {

/// Canary seed: entries derive their expected word from this and the
/// payload address, so a bulk memset or off-by-one neighbour write
/// cannot accidentally produce a valid canary.
constexpr std::uint64_t CanarySeed = 0x5041535441564c44ULL; // "PASTAVLD"
constexpr std::uint64_t PoisonSeed = 0xdeadbeefdeadbeefULL;

std::uint64_t threadFingerprint() {
  return std::hash<std::thread::id>{}(std::this_thread::get_id());
}

} // namespace

const char *validationViolationName(ValidationViolation::Kind K) {
  switch (K) {
  case ValidationViolation::Kind::SerialOverlap:
    return "serial-overlap";
  case ValidationViolation::Kind::SerialLaneMigration:
    return "serial-lane-migration";
  case ValidationViolation::Kind::SubscriptionMask:
    return "subscription-mask";
  case ValidationViolation::Kind::SubscriptionDrift:
    return "subscription-drift";
  case ValidationViolation::Kind::UnregisteredTool:
    return "unregistered-tool";
  case ValidationViolation::Kind::PayloadDoubleRelease:
    return "payload-double-release";
  case ValidationViolation::Kind::PayloadUnknownRelease:
    return "payload-unknown-release";
  case ValidationViolation::Kind::PayloadUseAfterRelease:
    return "payload-use-after-release";
  case ValidationViolation::Kind::PayloadCanaryStomp:
    return "payload-canary-stomp";
  case ValidationViolation::Kind::FlushFromLane:
    return "flush-from-lane";
  case ValidationViolation::Kind::FlushNotDrained:
    return "flush-not-drained";
  }
  return "unknown";
}

Validator::Validator() = default;
Validator::~Validator() = default;

void Validator::setHandler(Handler H) {
  std::lock_guard<std::mutex> Lock(HandlerMutex);
  OnViolation = std::move(H);
}

void Validator::report(ValidationViolation::Kind What, std::string Message) {
  Violations.fetch_add(1, std::memory_order_relaxed);
  ValidationViolation V;
  V.What = What;
  V.Message = std::move(Message);

  Handler H;
  {
    std::lock_guard<std::mutex> Lock(HandlerMutex);
    H = OnViolation;
  }
  if (H) {
    H(V);
    return;
  }
  // Default: a violated contract means tool or arena state is already
  // corrupt — print and abort rather than let the run limp on.
  std::fprintf(stderr, "pasta: PASTA_VALIDATE violation [%s]: %s\n",
               validationViolationName(V.What), V.Message.c_str());
  std::abort();
}

//===----------------------------------------------------------------------===//
// Tool contracts
//===----------------------------------------------------------------------===//

void Validator::registerTool(Tool &T, const Subscription &Compiled,
                             std::size_t PinnedLane) {
  {
    std::lock_guard<std::mutex> Lock(StateMutex);
    std::unique_ptr<ToolState> &Slot = Tools[&T];
    if (!Slot)
      Slot = std::make_unique<ToolState>();
    else if (Reconfiguring && Slot->Stale &&
             Compiled.Model == ExecutionModel::Serial &&
             Slot->Model == ExecutionModel::Serial &&
             Slot->PinnedLane != PinnedLane)
      // Epoch boundary: the swap drained the old epoch before this
      // re-registration, so moving the pin is the sanctioned migration
      // path, not a lane-affinity break.
      SanctionedMigrations.fetch_add(1, std::memory_order_relaxed);
    Slot->T = &T;
    Slot->Name = T.name();
    Slot->Kinds = Compiled.Kinds;
    Slot->Model = Compiled.Model;
    Slot->PinnedLane = PinnedLane;
    Slot->Stale = false;
  }

  // Drift watchdog: the routing tables were compiled from one answer;
  // if subscription() gives a different one now, deliveries will follow
  // a contract the tool no longer declares. Caller holds the attach
  // lock, so re-querying user code here is as safe as the compile was.
  Subscription Now = T.subscription();
  if (Now.Kinds != Compiled.Kinds)
    report(ValidationViolation::Kind::SubscriptionDrift,
           "tool '" + T.name() + "' subscription() kinds drifted: compiled " +
               Compiled.Kinds.str() + ", now reports " + Now.Kinds.str());
  else if (Now.Model != Compiled.Model)
    report(ValidationViolation::Kind::SubscriptionDrift,
           "tool '" + T.name() +
               "' subscription() execution model drifted: compiled " +
               std::string(executionModelName(Compiled.Model)) +
               ", now reports " + executionModelName(Now.Model));
}

void Validator::unregisterTools() {
  std::lock_guard<std::mutex> Lock(StateMutex);
  Tools.clear();
}

void Validator::beginReconfiguration() {
  std::lock_guard<std::mutex> Lock(StateMutex);
  Reconfiguring = true;
  for (auto &Entry : Tools)
    Entry.second->Stale = true;
}

void Validator::endReconfiguration() {
  std::lock_guard<std::mutex> Lock(StateMutex);
  Reconfiguring = false;
  for (auto It = Tools.begin(); It != Tools.end();) {
    if (It->second->Stale)
      It = Tools.erase(It);
    else
      ++It;
  }
}

Validator::ToolState *Validator::stateOf(Tool &T) {
  std::lock_guard<std::mutex> Lock(StateMutex);
  auto It = Tools.find(&T);
  return It == Tools.end() ? nullptr : It->second.get();
}

void Validator::beforeDelivery(Tool &T, const Event &E, std::size_t Lane) {
  DeliveriesChecked.fetch_add(1, std::memory_order_relaxed);

  ToolState *State = stateOf(T);
  if (!State) {
    report(ValidationViolation::Kind::UnregisteredTool,
           "tool '" + T.name() +
               "' received an event but was never registered with the "
               "validator (routing tables out of sync)");
    return;
  }

  // Subscription-mask watchdog: the compiled routes must never hand a
  // tool an event kind it did not subscribe to.
  if (!State->Kinds.has(E.Kind))
    report(ValidationViolation::Kind::SubscriptionMask,
           "tool '" + State->Name + "' delivered " +
               eventKindName(E.Kind) + " outside its subscribed kinds " +
               State->Kinds.str());

  if (State->Model == ExecutionModel::Serial) {
    // Lane affinity: a Serial tool is pinned to one dispatch lane; any
    // other lane delivering to it is a routing bug. Inline (sync-mode)
    // deliveries have no lane and are exempt.
    if (Lane != InlineDelivery && Lane != State->PinnedLane)
      report(ValidationViolation::Kind::SerialLaneMigration,
             "Serial tool '" + State->Name + "' pinned to lane " +
                 std::to_string(State->PinnedLane) +
                 " was delivered an event on lane " + std::to_string(Lane));

    // Overlap: hook invocations of a Serial tool must never be
    // concurrent. fetch_add makes the check itself race-free.
    int Prev = State->Active.fetch_add(1, std::memory_order_acq_rel);
    std::uint64_t Self = threadFingerprint();
    if (Prev != 0) {
      std::uint64_t Other =
          State->ActiveThread.load(std::memory_order_acquire);
      report(ValidationViolation::Kind::SerialOverlap,
             "Serial tool '" + State->Name +
                 "' hook invoked while another invocation was in flight "
                 "(thread 0x" +
                 std::to_string(Self) + " overlapped thread 0x" +
                 std::to_string(Other) + ")");
    }
    State->ActiveThread.store(Self, std::memory_order_release);
  } else {
    State->Active.fetch_add(1, std::memory_order_acq_rel);
  }

  checkEventPayloads(E, *State);
}

void Validator::afterDelivery(Tool &T) {
  if (ToolState *State = stateOf(T))
    State->Active.fetch_sub(1, std::memory_order_acq_rel);
}

//===----------------------------------------------------------------------===//
// Payload ledger
//===----------------------------------------------------------------------===//

std::uint64_t Validator::canaryFor(const void *Payload) {
  return CanarySeed ^ reinterpret_cast<std::uintptr_t>(Payload);
}

std::uint64_t Validator::poisonFor(const void *Payload) {
  return PoisonSeed ^ reinterpret_cast<std::uintptr_t>(Payload);
}

bool Validator::checkCanary(const void *Payload, const PayloadEntry &Entry) {
  std::uint64_t Expected =
      Entry.Released ? poisonFor(Payload) : canaryFor(Payload);
  if (Entry.Canary == Expected)
    return true;
  report(ValidationViolation::Kind::PayloadCanaryStomp,
         std::string("ledger canary for ") + Entry.What +
             " payload was overwritten (memory corruption near the "
             "payload bookkeeping)");
  return false;
}

void Validator::registerPayload(const void *Payload, const char *What) {
  if (!Payload)
    return;
  std::lock_guard<std::mutex> Lock(LedgerMutex);
  PayloadEntry &Entry = Ledger[Payload];
  if (Entry.Canary != 0 && Entry.Released) {
    // The arena re-interned content at an address that was released:
    // legitimate recycling — the entry is reborn live.
    Entry.Released = false;
  }
  Entry.Canary = canaryFor(Payload);
  Entry.What = What;
  PayloadsTracked.fetch_add(1, std::memory_order_relaxed);
}

void Validator::releasePayload(const void *Payload) {
  if (!Payload)
    return;
  std::lock_guard<std::mutex> Lock(LedgerMutex);
  auto It = Ledger.find(Payload);
  if (It == Ledger.end()) {
    report(ValidationViolation::Kind::PayloadUnknownRelease,
           "release of a payload the ledger never tracked (refcount "
           "underflow or stray pointer)");
    return;
  }
  if (!checkCanary(Payload, It->second))
    return;
  if (It->second.Released) {
    report(ValidationViolation::Kind::PayloadDoubleRelease,
           std::string("double release of ") + It->second.What +
               " payload (refcount would drop below zero)");
    return;
  }
  It->second.Released = true;
  It->second.Canary = poisonFor(Payload);
}

bool Validator::payloadLive(const void *Payload) {
  std::lock_guard<std::mutex> Lock(LedgerMutex);
  auto It = Ledger.find(Payload);
  return It != Ledger.end() && !It->second.Released;
}

void Validator::checkPayloadHandle(const void *Payload, const char *What,
                                   const ToolState &State) {
  if (!Payload)
    return;
  std::lock_guard<std::mutex> Lock(LedgerMutex);
  auto It = Ledger.find(Payload);
  if (It == Ledger.end())
    return; // not arena-tracked (pre-admission or fallback pin)
  if (!checkCanary(Payload, It->second))
    return;
  if (It->second.Released)
    report(ValidationViolation::Kind::PayloadUseAfterRelease,
           "event delivered to tool '" + State.Name +
               "' still references a released " + What + " payload");
}

void Validator::checkEventPayloads(const Event &E, const ToolState &State) {
  checkPayloadHandle(E.OpName.handle().get(), "string", State);
  checkPayloadHandle(E.LayerName.handle().get(), "string", State);
  checkPayloadHandle(E.PythonStack.handle().get(), "stack", State);
  checkPayloadHandle(E.ownedKernel().get(), "kernel", State);
}

//===----------------------------------------------------------------------===//
// Flush barriers
//===----------------------------------------------------------------------===//

void Validator::onFlushFromLane() {
  report(ValidationViolation::Kind::FlushFromLane,
         "flush() entered from a dispatch-lane thread: a lane cannot "
         "wait for its own queue to drain (the wait was skipped to "
         "avoid deadlock)");
}

void Validator::onFlushBarrier(std::size_t Lane,
                               std::uint64_t AdmittedTickets,
                               std::uint64_t ConsumedTickets) {
  if (ConsumedTickets >= AdmittedTickets)
    return;
  report(ValidationViolation::Kind::FlushNotDrained,
         "flush barrier on lane " + std::to_string(Lane) +
             " returned with " + std::to_string(ConsumedTickets) +
             " tickets consumed of " + std::to_string(AdmittedTickets) +
             " admitted before the barrier");
}

ValidatorStats Validator::stats() const {
  ValidatorStats S;
  S.DeliveriesChecked = DeliveriesChecked.load(std::memory_order_relaxed);
  S.PayloadsTracked = PayloadsTracked.load(std::memory_order_relaxed);
  S.Violations = Violations.load(std::memory_order_relaxed);
  S.SanctionedMigrations =
      SanctionedMigrations.load(std::memory_order_relaxed);
  return S;
}

} // namespace pasta
