//===- pasta/EventQueue.cpp -----------------------------------------------===//
//
// Part of the PASTA reproduction, under the MIT license.
//
//===----------------------------------------------------------------------===//

#include "pasta/EventQueue.h"

#include <algorithm>
#include <cassert>

using namespace pasta;

const char *pasta::overflowPolicyName(OverflowPolicy Policy) {
  switch (Policy) {
  case OverflowPolicy::Block:
    return "block";
  case OverflowPolicy::DropNewest:
    return "drop-newest";
  case OverflowPolicy::Sample:
    return "sample";
  }
  return "unknown";
}

std::optional<OverflowPolicy>
pasta::parseOverflowPolicy(const std::string &Name) {
  if (Name == "block")
    return OverflowPolicy::Block;
  if (Name == "drop" || Name == "drop-newest")
    return OverflowPolicy::DropNewest;
  if (Name == "sample")
    return OverflowPolicy::Sample;
  return std::nullopt;
}

EventQueue::EventQueue(std::size_t Capacity, OverflowPolicy Policy,
                       std::uint64_t SampleEveryN)
    : Capacity(Capacity), Policy(Policy), SampleEveryN(SampleEveryN) {
  assert(Capacity > 0 && "queue depth must be positive");
  assert(SampleEveryN > 0 && "sample modulus must be positive");
  // Pre-size for the common case, but don't let an enormous (or
  // nonsensical) capacity reserve unbounded memory up front.
  Buffer.reserve(std::min<std::size_t>(Capacity, 1u << 16));
}

void EventQueue::enqueue(Event E, bool Critical,
                         EventArena *InternOnAdmit) {
  std::unique_lock<std::mutex> Lock(Mutex);
  if (Closed) {
    // Shutdown teardown: count the loss so conservation invariants
    // (enqueued + dropped + sampled-out == sent) keep holding.
    ++Counters.Dropped;
    return;
  }
  if (Buffer.size() >= Capacity) {
    switch (Critical ? OverflowPolicy::Block : Policy) {
    case OverflowPolicy::Block:
      break;
    case OverflowPolicy::DropNewest:
      ++Counters.Dropped;
      return;
    case OverflowPolicy::Sample:
      // The first N-1 of every N overflowing events are sampled out;
      // the Nth is admitted, waiting for space like Block. Sampling
      // before blocking means a stalled consumer still accumulates
      // sampled-out counts instead of wedging the producer on the very
      // first overflow.
      if (++OverflowSeen % SampleEveryN != 0) {
        ++Counters.SampledOut;
        return;
      }
      break;
    }
    NotFull.wait(Lock,
                 [this] { return Buffer.size() < Capacity || Closed; });
    if (Closed) {
      ++Counters.Dropped; // woken by close(), not by space
      return;
    }
  }
  // The event is admitted. Lossy single-lane routes intern here — only
  // events that actually enter the queue allocate or register arena
  // payloads (dropped/sampled events above never do). Everything else
  // arrives already interned (InternOnAdmit null), keeping the arena
  // mutex out of this queue-lock critical section. Pinning the
  // borrowed kernel/tensor pointees is part of intern(): the producing
  // callback's frame is still live here, so the pointers are valid to
  // copy from.
  if (InternOnAdmit)
    InternOnAdmit->intern(E);
  Buffer.push_back(std::move(E));
  ++Counters.Enqueued;
  Counters.MaxDepth = std::max<std::uint64_t>(Counters.MaxDepth,
                                              Buffer.size());
  NotEmpty.notify_one();
}

bool EventQueue::dequeueBatch(std::vector<Event> &Batch) {
  Batch.clear();
  std::unique_lock<std::mutex> Lock(Mutex);
  // The previous batch is fully dispatched once the consumer re-enters.
  ConsumerIdle = true;
  Drained.notify_all();
  NotEmpty.wait(Lock, [this] { return !Buffer.empty() || Closed; });
  if (Buffer.empty())
    return false; // closed and drained
  std::swap(Batch, Buffer);
  Buffer.reserve(std::min<std::size_t>(Capacity, 1u << 16));
  ConsumerIdle = false;
  ++Counters.Batches;
  NotFull.notify_all();
  return true;
}

void EventQueue::waitDrained() {
  std::unique_lock<std::mutex> Lock(Mutex);
  Drained.wait(Lock, [this] { return Buffer.empty() && ConsumerIdle; });
}

void EventQueue::close() {
  {
    std::lock_guard<std::mutex> Lock(Mutex);
    Closed = true;
  }
  NotEmpty.notify_all();
  NotFull.notify_all();
  Drained.notify_all();
}

EventQueueCounters EventQueue::counters() const {
  std::lock_guard<std::mutex> Lock(Mutex);
  return Counters;
}
