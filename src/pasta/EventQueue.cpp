//===- pasta/EventQueue.cpp -----------------------------------------------===//
//
// Part of the PASTA reproduction, under the MIT license.
//
//===----------------------------------------------------------------------===//
//
// Ticketed MPSC ring. The admission fast path is lock-free: a producer
// claims a ticket (fetch-add when the admission cannot fail, a
// fullness-checked CAS for lossy policies), writes the event into the
// ticket's slot, and publishes it by storing ticket+1 into the slot's
// sequence number. The single consumer drains contiguously published
// slots in ticket order and frees them by storing ticket+ring-size.
//
// Parking is the only place a lock appears, and it is reached only when
// the ring is actually full (producers) or actually empty (consumer).
// Wakeups are targeted through waiter counters: the publishing /
// draining side first executes a seq_cst fence and then reads the
// counter — paired with the waiter's counter-increment + fence before
// its predicate check, this closes the classic store/load (SB) race
// without putting a seq_cst store on the per-event path.
//
//===----------------------------------------------------------------------===//

#include "pasta/EventQueue.h"

#include "pasta/EventArena.h"

#include <algorithm>
#include <array>
#include <cassert>
#include <chrono>
#include <thread>

using namespace pasta;

const char *pasta::overflowPolicyName(OverflowPolicy Policy) {
  switch (Policy) {
  case OverflowPolicy::Block:
    return "block";
  case OverflowPolicy::DropNewest:
    return "drop-newest";
  case OverflowPolicy::Sample:
    return "sample";
  }
  return "unknown";
}

std::optional<OverflowPolicy>
pasta::parseOverflowPolicy(const std::string &Name) {
  if (Name == "block")
    return OverflowPolicy::Block;
  if (Name == "drop" || Name == "drop-newest")
    return OverflowPolicy::DropNewest;
  if (Name == "sample")
    return OverflowPolicy::Sample;
  return std::nullopt;
}

std::size_t pasta::defaultQueueSpinIterations() {
  return std::thread::hardware_concurrency() > 1 ? 64 : 0;
}

namespace {

std::size_t roundUpPow2(std::size_t Value) {
  std::size_t Pow = 1;
  while (Pow < Value)
    Pow <<= 1;
  return Pow;
}

/// Queue ids are process-unique so a thread-local memo entry can never
/// mistake a new queue at a recycled address for the one it counted
/// overflow for (the EventArena intern-memo pattern).
std::atomic<std::uint64_t> NextQueueId{1};

/// Bumped by every ~EventQueue: a memo that last synced under an older
/// generation may hold entries for destroyed queues, so it drops them
/// all before serving (sampleMemoFor). Without this, the thread-local
/// entries outlive their queues — a workload that creates and destroys
/// many sessions on one thread accumulates dead cadence state that a
/// later id collision would resurrect mid-count instead of starting the
/// fresh queue's 1/N cadence at zero.
std::atomic<std::uint64_t> MemoGeneration{1};

/// Per-producer Sample-policy state: each producer thread counts the
/// overflow *it* sees for each queue, so the sampled-out fast path is
/// write-free outside the thread (only the SampledOut accounting counter
/// is shared, and only on the discard branch). Direct-mapped by queue
/// id; a collision between two live queues merely resets a count — the
/// sampling cadence restarts, accounting stays exact (every discarded
/// event still increments SampledOut).
struct SampleMemoEntry {
  std::uint64_t QueueId = 0;
  std::uint64_t Seen = 0;
};

constexpr std::size_t SampleMemoSlots = 16;

SampleMemoEntry &sampleMemoFor(std::uint64_t QueueId) {
  thread_local std::array<SampleMemoEntry, SampleMemoSlots> Memo;
  thread_local std::uint64_t SeenGeneration = 0;
  // Acquire pairs with the destructor's release bump: stale entries are
  // flushed before any queue constructed after a destruction is served.
  std::uint64_t Generation =
      MemoGeneration.load(std::memory_order_acquire);
  if (SeenGeneration != Generation) {
    SeenGeneration = Generation;
    Memo.fill(SampleMemoEntry{});
  }
  SampleMemoEntry &Entry = Memo[QueueId % SampleMemoSlots];
  if (Entry.QueueId != QueueId) {
    Entry.QueueId = QueueId;
    Entry.Seen = 0;
  }
  return Entry;
}

} // namespace

EventQueue::EventQueue(std::size_t Capacity, OverflowPolicy Policy,
                       std::uint64_t SampleEveryN,
                       std::size_t SpinIterations)
    : Capacity(std::min<std::size_t>(Capacity, MaxCapacity)),
      Policy(Policy), SampleEveryN(SampleEveryN),
      SpinIterations(SpinIterations),
      Id(NextQueueId.fetch_add(1, std::memory_order_relaxed)) {
  assert(Capacity > 0 && "queue depth must be positive");
  assert(SampleEveryN > 0 && "sample modulus must be positive");
  std::size_t RingSize = roundUpPow2(this->Capacity);
  RingMask = RingSize - 1;
  Ring = std::vector<Slot>(RingSize);
  // Seq == index marks every slot free for its first-lap ticket.
  for (std::size_t I = 0; I < RingSize; ++I)
    Ring[I].Seq.store(I, std::memory_order_relaxed);
}

EventQueue::~EventQueue() {
  // Invalidate every producer's thread-local Sample memo: entries for
  // this queue must not survive into a future queue's cadence.
  MemoGeneration.fetch_add(1, std::memory_order_release);
}

std::optional<std::uint64_t> EventQueue::claimTicket() {
  std::uint64_t Claim = Tail.fetch_add(1, std::memory_order_seq_cst);
  if (!isClosed(Claim))
    return Claim;
  // Closed before this claim in Tail's modification order: void it.
  // Repair the counter (void claims are exactly cancelled — once the
  // bit is set every later claim is void too), count the loss so
  // conservation invariants (enqueued + dropped + sampled-out == sent)
  // keep holding, and release any drain waiter watching the transient
  // inflation.
  Tail.fetch_sub(1, std::memory_order_seq_cst);
  Counters.Dropped.fetch_add(1, std::memory_order_relaxed);
  notifyDrainedIfIdle();
  return std::nullopt;
}

void EventQueue::enqueue(Event E, bool Critical,
                         EventArena *InternOnAdmit) {
  // Must-admit path (Block policy, critical events, and the admitted
  // 1/N of Sample's overflow): the claim cannot fail, so it is a plain
  // fetch-add ticket; if the ring is full the producer waits for space
  // *after* claiming — ticket order is what preserves per-producer FIFO.
  // Closure is checked on the claimed word itself (see claimTicket), so
  // an enqueue racing close() is either delivered or counted dropped —
  // never stranded.
  if (Critical || Policy == OverflowPolicy::Block) {
    std::optional<std::uint64_t> Ticket = claimTicket();
    if (!Ticket)
      return;
    if (*Ticket - Head.load(std::memory_order_seq_cst) >= Capacity)
      awaitSpace(*Ticket);
    publish(*Ticket, std::move(E), InternOnAdmit);
    return;
  }

  // Lossy policies: never claim a ticket the policy might discard — a
  // claimed-but-unpublished ticket would stall the in-order consumer.
  // The fullness check and the claim sit in one CAS loop, so a
  // successful claim implies the slot is already free (no waiting, which
  // is what keeps DropNewest non-blocking).
  std::uint64_t TailWord = Tail.load(std::memory_order_relaxed);
  for (;;) {
    if (isClosed(TailWord)) {
      Counters.Dropped.fetch_add(1, std::memory_order_relaxed);
      return;
    }
    // Signed distance: a stale ticket can sit *behind* Head (other
    // producers claimed past it and the consumer drained); that must
    // read as "not full" so the CAS below refreshes it, not as a bogus
    // wrapped-around overflow.
    std::int64_t Used = static_cast<std::int64_t>(
        TailWord - Head.load(std::memory_order_seq_cst));
    if (Used >= static_cast<std::int64_t>(Capacity)) {
      switch (Policy) {
      case OverflowPolicy::Block:
        break; // unreachable (handled above)
      case OverflowPolicy::DropNewest:
        Counters.Dropped.fetch_add(1, std::memory_order_relaxed);
        return;
      case OverflowPolicy::Sample: {
        // The first N-1 of every N overflowing events are sampled out;
        // the Nth is admitted, waiting for space like Block. Sampling
        // before blocking means a stalled consumer still accumulates
        // sampled-out counts instead of wedging the producer on the
        // very first overflow. The modular counter is per producer
        // thread (see sampleMemoFor): each producer keeps 1/N of the
        // overflow it sees, with no shared write on the discard path
        // beyond the SampledOut accounting counter.
        std::uint64_t Seen = ++sampleMemoFor(Id).Seen;
        if (Seen % SampleEveryN != 0) {
          Counters.SampledOut.fetch_add(1, std::memory_order_relaxed);
          return;
        }
        std::optional<std::uint64_t> Ticket = claimTicket();
        if (!Ticket)
          return;
        if (*Ticket - Head.load(std::memory_order_seq_cst) >= Capacity)
          awaitSpace(*Ticket);
        publish(*Ticket, std::move(E), InternOnAdmit);
        return;
      }
      }
    }
    if (Tail.compare_exchange_weak(TailWord, TailWord + 1,
                                   std::memory_order_seq_cst,
                                   std::memory_order_relaxed)) {
      // The expected word had no ClosedBit, so a close() sneaking in
      // between the check and the claim fails this CAS and the reloaded
      // word is handled above.
      publish(TailWord, std::move(E), InternOnAdmit);
      return;
    }
    // CAS failure refreshed TailWord with the current tail; re-check
    // closure and fullness against it.
  }
}

void EventQueue::awaitSpace(std::uint64_t Ticket) {
  Counters.Spins.fetch_add(1, std::memory_order_relaxed);
  auto HasSpace = [&] {
    return Ticket - Head.load(std::memory_order_seq_cst) < Capacity;
  };
  for (std::size_t I = 0; I < SpinIterations; ++I) {
    if (HasSpace())
      return;
    std::this_thread::yield();
  }
  Counters.Parks.fetch_add(1, std::memory_order_relaxed);
  std::unique_lock<std::mutex> Lock(WaitMutex);
  ParkedProducers.fetch_add(1, std::memory_order_relaxed);
  std::atomic_thread_fence(std::memory_order_seq_cst);
  // Liveness: the consumer always consumes up to this ticket's lap
  // eventually (tickets are claimed and published in a total order), so
  // the predicate needs no Closed escape — close() keeps the consumer
  // draining until every claimed ticket is consumed.
  NotFull.wait(Lock, HasSpace);
  ParkedProducers.fetch_sub(1, std::memory_order_relaxed);
}

void EventQueue::publish(std::uint64_t Ticket, Event &&E,
                         EventArena *InternOnAdmit) {
  Slot &S = slot(Ticket);
  // The claim protocol guarantees the slot is free for this lap (the
  // fullness check precedes every claim); the loop is a defensive fence.
  while (S.Seq.load(std::memory_order_acquire) != Ticket)
    std::this_thread::yield();
  // The event is admitted. Lossy single-lane routes intern here — only
  // events that actually claimed a slot allocate or register arena
  // payloads (dropped/sampled events never do). Everything else arrives
  // already interned (InternOnAdmit null). Pinning the borrowed
  // kernel/tensor pointees is part of intern(): the producing callback's
  // frame is still live here, so the pointers are valid to copy from.
  if (InternOnAdmit)
    InternOnAdmit->intern(E);
  S.E = std::move(E);
  S.Seq.store(Ticket + 1, std::memory_order_release);
  // No admitted-events counter here: every claim publishes, so the
  // snapshot derives Enqueued from the ticket counter (one less atomic
  // on the per-event path).

  // Occupancy high-water mark. Head only advances, and every claim
  // checked Ticket - Head < Capacity, so the figure never exceeds the
  // logical capacity.
  std::uint64_t H = Head.load(std::memory_order_relaxed);
  std::uint64_t Depth = Ticket + 1 > H ? Ticket + 1 - H : 0;
  std::uint64_t Cur = Counters.MaxDepth.load(std::memory_order_relaxed);
  while (Depth > Cur && !Counters.MaxDepth.compare_exchange_weak(
                            Cur, Depth, std::memory_order_relaxed))
    ;

  // Targeted wakeup, twice over: only the producer whose ticket sits at
  // the consumer's head position can be the one unblocking a parked
  // consumer (it waits for that specific slot; later tickets change
  // nothing it can see), and even then the mutex is only taken when the
  // consumer actually parked. Steady-state publishes with a backlog
  // skip even the fence. A stale Head read here can at worst skip one
  // wake — the consumer's timed wait re-checks shortly after, so this
  // is a bounded latency blip, never a lost event.
  if (Ticket == Head.load(std::memory_order_seq_cst)) {
    std::atomic_thread_fence(std::memory_order_seq_cst);
    if (ConsumerParked.load(std::memory_order_relaxed)) {
      std::lock_guard<std::mutex> Lock(WaitMutex);
      NotEmpty.notify_one();
    }
  }
}

bool EventQueue::dequeueBatch(std::vector<Event> &Batch) {
  Batch.clear();
  // The previous batch is fully dispatched once the consumer re-enters.
  ConsumerIdle.store(true, std::memory_order_seq_cst);
  notifyDrainedIfIdle();

  std::uint64_t H = Head.load(std::memory_order_relaxed);
  auto Ready = [&] {
    // An event published at the head, or closed with every claimed
    // ticket consumed (a claimed-but-unpublished ticket keeps the
    // consumer alive until its producer publishes; a void claim's
    // transient inflation resolves within the timed wait below).
    if (slot(H).Seq.load(std::memory_order_acquire) == H + 1)
      return true;
    std::uint64_t TailWord = Tail.load(std::memory_order_seq_cst);
    return isClosed(TailWord) && ticketOf(TailWord) == H;
  };
  if (!Ready()) {
    bool Done = false;
    for (std::size_t I = 0; I < SpinIterations; ++I) {
      std::this_thread::yield();
      if ((Done = Ready()))
        break;
    }
    if (!Done) {
      std::unique_lock<std::mutex> Lock(WaitMutex);
      ConsumerParked.store(true, std::memory_order_relaxed);
      std::atomic_thread_fence(std::memory_order_seq_cst);
      // Timed wait: the publish-side wake check is allowed to skip a
      // wake on a stale Head read (see publish()); the periodic
      // re-check turns that race into bounded latency instead of a
      // hang. While the queue is idle this costs one predicate probe
      // per millisecond.
      while (!NotEmpty.wait_for(Lock, std::chrono::milliseconds(1),
                                Ready))
        ;
      ConsumerParked.store(false, std::memory_order_relaxed);
    }
  }
  if (slot(H).Seq.load(std::memory_order_acquire) != H + 1)
    return false; // closed and drained

  ConsumerIdle.store(false, std::memory_order_seq_cst);
  // Drain every contiguously published slot (the double buffer: events
  // move out of the ring here and are dispatched lock-free by the
  // caller), freeing each slot for its next-lap producer.
  while (slot(H).Seq.load(std::memory_order_acquire) == H + 1) {
    Slot &S = slot(H);
    Batch.push_back(std::move(S.E));
    S.Seq.store(H + Ring.size(), std::memory_order_release);
    ++H;
  }
  Head.store(H, std::memory_order_seq_cst);
  Counters.Batches.fetch_add(1, std::memory_order_relaxed);

  // Targeted wakeup: only producers that actually parked are woken —
  // a batch drain with nobody parked costs two relaxed loads, not a
  // broadcast (the pre-ring queue notify_all'd every batch).
  std::atomic_thread_fence(std::memory_order_seq_cst);
  if (ParkedProducers.load(std::memory_order_relaxed) > 0) {
    std::lock_guard<std::mutex> Lock(WaitMutex);
    NotFull.notify_all();
  }
  return true;
}

void EventQueue::notifyDrainedIfIdle() {
  std::atomic_thread_fence(std::memory_order_seq_cst);
  if (DrainWaiters.load(std::memory_order_relaxed) == 0)
    return;
  if (Head.load(std::memory_order_relaxed) !=
      ticketOf(Tail.load(std::memory_order_relaxed)))
    return;
  std::lock_guard<std::mutex> Lock(WaitMutex);
  Drained.notify_all();
}

void EventQueue::waitDrained() {
  auto DrainedNow = [&] {
    return ConsumerIdle.load(std::memory_order_seq_cst) &&
           Head.load(std::memory_order_seq_cst) ==
               ticketOf(Tail.load(std::memory_order_seq_cst));
  };
  if (DrainedNow())
    return;
  std::unique_lock<std::mutex> Lock(WaitMutex);
  DrainWaiters.fetch_add(1, std::memory_order_relaxed);
  std::atomic_thread_fence(std::memory_order_seq_cst);
  Drained.wait(Lock, DrainedNow);
  DrainWaiters.fetch_sub(1, std::memory_order_relaxed);
}

void EventQueue::close() {
  // One fetch_or makes closure atomic with ticket claims: every claim
  // is ordered before or after this in Tail's modification order, and
  // the after ones void themselves (claimTicket). Idempotent.
  Tail.fetch_or(ClosedBit, std::memory_order_seq_cst);
  std::lock_guard<std::mutex> Lock(WaitMutex);
  NotEmpty.notify_all();
  NotFull.notify_all();
  Drained.notify_all();
}

EventQueueCounters EventQueue::counters() const {
  EventQueueCounters Snapshot;
  // Every claimed ticket is published: the tail IS the admitted-event
  // count (claimed-but-unpublished events are counted a moment early).
  Snapshot.Enqueued = ticketOf(Tail.load(std::memory_order_relaxed));
  Snapshot.Dropped = Counters.Dropped.load(std::memory_order_relaxed);
  Snapshot.SampledOut =
      Counters.SampledOut.load(std::memory_order_relaxed);
  Snapshot.MaxDepth = Counters.MaxDepth.load(std::memory_order_relaxed);
  Snapshot.Batches = Counters.Batches.load(std::memory_order_relaxed);
  Snapshot.Spins = Counters.Spins.load(std::memory_order_relaxed);
  Snapshot.Parks = Counters.Parks.load(std::memory_order_relaxed);
  return Snapshot;
}
