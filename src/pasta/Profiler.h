//===- pasta/Profiler.h - PASTA facade --------------------------*- C++ -*-===//
//
// Part of the PASTA reproduction, under the MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The top-level PASTA object — the analogue of the LD_PRELOAD-injected
/// "accelprof" shared library. It owns the event processor and handler,
/// hosts the selected tools, and exposes the user-facing annotation API
/// (pasta.start / pasta.stop). Typical use:
///
/// \code
///   pasta::Profiler Prof;                       // options from env
///   Prof.addToolByName("kernel_frequency");     // or PASTA_TOOL env var
///   Prof.attachCuda(Runtime, /*Device=*/0);
///   Prof.attachDl(Callbacks);
///   ... run workload ...
///   Prof.finish();
///   Prof.writeReports(stdout);
/// \endcode
///
//===----------------------------------------------------------------------===//

#ifndef PASTA_PASTA_PROFILER_H
#define PASTA_PASTA_PROFILER_H

#include "pasta/EventHandler.h"
#include "pasta/EventProcessor.h"
#include "pasta/Knobs.h"
#include "pasta/Tool.h"

#include <memory>
#include <string>
#include <vector>

namespace pasta {

/// Profiler-wide options; fromEnv() resolves the paper's environment
/// variables (PASTA_TOOL, ACCEL_PROF_ENV_SAMPLE_RATE,
/// PASTA_TRACE_GRANULARITY, PASTA_ASYNC_EVENTS, PASTA_QUEUE_DEPTH,
/// PASTA_OVERFLOW_POLICY, PASTA_DISPATCH_THREADS, PASTA_QUEUE_SPINS,
/// PASTA_ARENA_SHARDS, PASTA_ARENA_MEMO, PASTA_ARENA_MAX_BYTES,
/// PASTA_LANES_AUTO, PASTA_MIN_LANES, PASTA_MAX_LANES;
/// START_GRID_ID / END_GRID_ID are read by the range filter itself).
struct ProfilerOptions {
  TraceOptions Trace;
  /// Dispatch-unit configuration: analysis-thread width, async event
  /// pipeline, queue depth and overflow policy.
  ProcessorOptions Processor;

  static ProfilerOptions fromEnv();
};

class ReportSink;

/// Owns the PASTA pipeline and the active tools.
///
/// \deprecated New code should assemble a pasta::Session (Session.h),
/// which adds pluggable platform backends, capability negotiation and
/// structured report sinks on top of this facade. The vendor-specific
/// attachCuda/attachHip entry points remain as shims for existing
/// clients; a Session routes attachment through PlatformBackend instead.
class Profiler {
public:
  explicit Profiler(ProfilerOptions Opts = ProfilerOptions::fromEnv());
  ~Profiler();

  //===--------------------------------------------------------------------===
  // Tool management
  //===--------------------------------------------------------------------===
  /// Adds a tool instance; the profiler owns it. Works on a running
  /// pipeline — the processor publishes a new routing epoch and the
  /// tool sees every event admitted after the swap. Returns the raw
  /// pointer for convenience, or null when called from inside a
  /// dispatch-lane thread or tool hook (reconfiguring from the work the
  /// swap barrier waits on would deadlock, so it is rejected).
  Tool *addTool(std::unique_ptr<Tool> T);
  /// Creates a tool from the global registry; null when unknown.
  Tool *addToolByName(const std::string &Name);
  /// Adds the tool named by the PASTA_TOOL environment variable, if set.
  Tool *addToolFromEnv();
  /// Detaches \p T from the live pipeline: the routing swap drains every
  /// event admitted before the detach into the tool, then its onFinish
  /// runs and its report freezes. The profiler keeps owning the tool —
  /// writeReports() still includes it — but finish() will not run its
  /// onFinish again. Returns false when \p T is not an attached tool of
  /// this profiler or when called from a dispatch context.
  bool detachTool(Tool *T);
  /// Detaches the first attached tool whose name() is \p Name.
  bool detachToolByName(const std::string &Name);
  /// True when \p T was detached from the live pipeline (it still
  /// appears in tools() because its frozen report stays in the output).
  bool isDetached(const Tool *T) const;
  const std::vector<std::unique_ptr<Tool>> &tools() const { return Tools; }

  //===--------------------------------------------------------------------===
  // Attachment (the LD_PRELOAD moment)
  //===--------------------------------------------------------------------===
  /// \deprecated Vendor-specific shim; prefer SessionBuilder::backend(),
  /// which resolves a PlatformBackend by name and negotiates capabilities.
  void attachCuda(cuda::CudaRuntime &Runtime, int DeviceIndex = 0);
  /// \deprecated Vendor-specific shim; prefer SessionBuilder::backend().
  void attachHip(hip::HipRuntime &Runtime, int AgentIndex = 0);
  void attachDl(dl::CallbackRegistry &Callbacks);

  //===--------------------------------------------------------------------===
  // Annotation API (pasta.start / pasta.stop; paper Listing 1)
  //===--------------------------------------------------------------------===
  // Routed through the processor so the async pipeline flushes first and
  // the region boundary falls between the same events as in sync mode.
  void start() { Processor.annotationStart(); }
  void stop() { Processor.annotationStop(); }

  //===--------------------------------------------------------------------===
  // Lifecycle / reporting
  //===--------------------------------------------------------------------===
  /// Detaches instrumentation and runs every tool's onFinish. Safe to
  /// call any number of times; only the first invocation acts.
  void finish();
  /// Writes every tool's report to \p Out. Safe before or after finish().
  /// \deprecated Prefer writeReports(ReportSink&) for structured output.
  void writeReports(std::FILE *Out);
  /// Emits every tool's report into \p Sink (and closes it).
  void writeReports(ReportSink &Sink);
  /// Same, but leaves the sink open when \p Close is false so the
  /// caller can append further report sections (the serve daemon's
  /// per-tenant rollups) before closing once.
  void writeReports(ReportSink &Sink, bool Close);

  EventProcessor &processor() { return Processor; }
  EventHandler &handler() { return Handler; }
  const ProfilerOptions &options() const { return Opts; }
  /// Overrides the tracing configuration used by subsequent attach calls.
  void setTraceOptions(const TraceOptions &Trace) { Opts.Trace = Trace; }
  const Knobs &knobs() const { return ActiveKnobs; }

private:
  ProfilerOptions Opts;
  Knobs ActiveKnobs;
  EventProcessor Processor;
  EventHandler Handler;
  std::vector<std::unique_ptr<Tool>> Tools;
  /// Tools detached from the live pipeline: onFinish already ran at
  /// detach (their reports are frozen snapshots of the attached window),
  /// so finish() must not run it again.
  std::vector<const Tool *> Detached;
  bool Finished = false;
};

} // namespace pasta

#endif // PASTA_PASTA_PROFILER_H
