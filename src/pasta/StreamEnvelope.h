//===- pasta/StreamEnvelope.h - Socket session framing ----------*- C++ -*-===//
//
// Part of the PASTA reproduction, under the MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The transport envelope a TraceStreamSink connection speaks to an
/// `accelprof --serve` aggregator (docs/SERVE.md). The envelope is a
/// thin session layer *around* the trace byte stream, not a second
/// serialization format: a Hello identifying the client (tenant name +
/// process id), then length-prefixed frames whose concatenated payloads
/// form exactly one PASTA trace stream — version trace::Version, header
/// flags trace::kFlagStreamed, terminated by the End record. Frame
/// boundaries are a transport artifact and need not align with record
/// boundaries; the server's TraceStreamDecoder is byte-incremental.
///
/// Frames carry an incrementing sequence number so a duplicated or
/// reordered frame (a transport bug, not a trace bug) is caught at the
/// envelope layer with its own diagnostic rather than surfacing as a
/// confusing record-level parse error.
///
/// All integers little-endian, reusing TraceFormat.h's append/read
/// helpers. This header is intentionally separate from TraceFormat.h:
/// the envelope can evolve (StreamProtocolVersion) without bumping the
/// trace format version that capture files depend on.
///
//===----------------------------------------------------------------------===//

#ifndef PASTA_PASTA_STREAMENVELOPE_H
#define PASTA_PASTA_STREAMENVELOPE_H

#include "pasta/TraceFormat.h"

#include <cstddef>
#include <cstdint>
#include <string>

namespace pasta {
namespace trace {

/// First eight bytes of every stream connection ("PASTASTM").
inline constexpr char StreamMagic[8] = {'P', 'A', 'S', 'T', 'A', 'S', 'T',
                                        'M'};

/// Envelope protocol version; servers reject other versions outright.
inline constexpr std::uint32_t StreamProtocolVersion = 1;

/// Hello flags word. Reserved — clients send 0, servers reject any set
/// bit (same posture as the trace header's flags word).
inline constexpr std::uint32_t StreamHelloFlags = 0;

/// Magic + protocol version + flags + process id + tenant length. The
/// tenant name's bytes follow.
inline constexpr std::size_t StreamHelloFixedSize = 8 + 4 + 4 + 8 + 4;

/// Tenant names identify the merge domain; they become report keys and
/// (optionally) file names, so they are short and filesystem-safe:
/// 1..=64 bytes of [A-Za-z0-9._-], not starting with a dot.
inline constexpr std::size_t StreamMaxTenantBytes = 64;

/// u64 sequence number + u32 payload length.
inline constexpr std::size_t StreamFrameHeaderSize = 12;

/// Ceiling on one frame's payload. Client sinks flush far below this;
/// the server rejects oversized lengths before buffering, so a hostile
/// length prefix cannot make the aggregator buffer gigabytes.
inline constexpr std::uint32_t StreamMaxFramePayload = 1u << 20;

/// True iff \p Name is a valid tenant name (see StreamMaxTenantBytes).
inline bool isValidTenantName(const std::string &Name) {
  if (Name.empty() || Name.size() > StreamMaxTenantBytes || Name[0] == '.')
    return false;
  for (char C : Name) {
    bool Ok = (C >= 'a' && C <= 'z') || (C >= 'A' && C <= 'Z') ||
              (C >= '0' && C <= '9') || C == '.' || C == '_' || C == '-';
    if (!Ok)
      return false;
  }
  return true;
}

/// Client identity carried by the Hello.
struct StreamHello {
  std::string Tenant;
  std::uint64_t ProcessId = 0;
};

/// Serializes a Hello (caller has validated the tenant name).
inline void encodeStreamHello(std::string &Out, const StreamHello &Hello) {
  Out.append(StreamMagic, sizeof(StreamMagic));
  appendU32(Out, StreamProtocolVersion);
  appendU32(Out, StreamHelloFlags);
  appendU64(Out, Hello.ProcessId);
  appendString(Out, Hello.Tenant);
}

/// Serializes one frame header; \p PayloadSize bytes follow on the wire.
inline void encodeStreamFrameHeader(std::string &Out, std::uint64_t Sequence,
                                    std::uint32_t PayloadSize) {
  appendU64(Out, Sequence);
  appendU32(Out, PayloadSize);
}

//===----------------------------------------------------------------------===//
// Control channel
//===----------------------------------------------------------------------===//
//
// A control connection speaks to the same socket as the trace streams;
// the daemon disambiguates on the first eight bytes ("PASTACTL" vs
// "PASTASTM"). One request, one response, then the connection closes:
//   request:  magic(8) + u32 protocol version + u32 length + command text
//   response: u32 status (0 = ok) + u32 length + message text
// Commands are whitespace-separated words ("attach-tool <tenant>
// <tool>", "detach-tool <tenant> <tool>", "list-tenants") — the verbs
// behind `accelprof --control SOCKET <command>`, the path that live-
// reconfigures a running daemon's tenant sessions.

/// First eight bytes of every control connection ("PASTACTL").
inline constexpr char ControlMagic[8] = {'P', 'A', 'S', 'T', 'A', 'C', 'T',
                                         'L'};

/// Control protocol version; servers reject other versions outright.
inline constexpr std::uint32_t ControlProtocolVersion = 1;

/// Ceiling on a control command's text (and a response message).
inline constexpr std::uint32_t ControlMaxCommandBytes = 4096;

/// Response status words.
inline constexpr std::uint32_t ControlStatusOk = 0;
inline constexpr std::uint32_t ControlStatusError = 1;

/// Serializes a control request.
inline void encodeControlRequest(std::string &Out,
                                 const std::string &Command) {
  Out.append(ControlMagic, sizeof(ControlMagic));
  appendU32(Out, ControlProtocolVersion);
  appendString(Out, Command);
}

/// Serializes a control response.
inline void encodeControlResponse(std::string &Out, std::uint32_t Status,
                                  const std::string &Message) {
  appendU32(Out, Status);
  appendString(Out, Message);
}

} // namespace trace
} // namespace pasta

#endif // PASTA_PASTA_STREAMENVELOPE_H
