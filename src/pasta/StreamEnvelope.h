//===- pasta/StreamEnvelope.h - Socket session framing ----------*- C++ -*-===//
//
// Part of the PASTA reproduction, under the MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The transport envelope a TraceStreamSink connection speaks to an
/// `accelprof --serve` aggregator (docs/SERVE.md). The envelope is a
/// thin session layer *around* the trace byte stream, not a second
/// serialization format: a Hello identifying the client (tenant name +
/// process id + resume token), then length-prefixed frames whose
/// concatenated payloads form exactly one PASTA trace stream — version
/// trace::Version, header flags trace::kFlagStreamed, terminated by the
/// End record. Frame boundaries are a transport artifact and need not
/// align with record boundaries; the server's TraceStreamDecoder is
/// byte-incremental.
///
/// Frames carry an incrementing sequence number so a duplicated or
/// reordered frame (a transport bug, not a trace bug) is caught at the
/// envelope layer with its own diagnostic rather than surfacing as a
/// confusing record-level parse error.
///
/// Protocol v2 adds fault tolerance: the Hello carries a resume token
/// (a client-chosen stream id plus the lowest frame sequence the client
/// still retains), the server answers every Hello with a fixed-size
/// Resume/Reject message and thereafter acks its sequence watermark
/// periodically, and a frame whose length word carries the meta bit
/// holds client pipeline counters instead of trace bytes. A
/// reconnecting client replays only unacked frames; the server skips
/// frames below its watermark, making admission exactly-once across
/// any disconnect/reconnect pattern. Unknown versions, flags, message
/// types and meta keys are rejected on both sides.
///
/// All integers little-endian, reusing TraceFormat.h's append/read
/// helpers. This header is intentionally separate from TraceFormat.h:
/// the envelope can evolve (StreamProtocolVersion) without bumping the
/// trace format version that capture files depend on.
///
//===----------------------------------------------------------------------===//

#ifndef PASTA_PASTA_STREAMENVELOPE_H
#define PASTA_PASTA_STREAMENVELOPE_H

#include "pasta/TraceFormat.h"

#include <cstddef>
#include <cstdint>
#include <string>
#include <vector>

namespace pasta {
namespace trace {

/// First eight bytes of every stream connection ("PASTASTM").
inline constexpr char StreamMagic[8] = {'P', 'A', 'S', 'T', 'A', 'S', 'T',
                                        'M'};

/// Envelope protocol version; servers reject other versions outright.
/// v2 added the Hello resume token and the server->client message
/// channel (Resume/Ack/Reject).
inline constexpr std::uint32_t StreamProtocolVersion = 2;

/// Hello flags word. Reserved — clients send 0, servers reject any set
/// bit (same posture as the trace header's flags word).
inline constexpr std::uint32_t StreamHelloFlags = 0;

/// Magic + protocol version + flags + process id + stream id + first
/// retained sequence + tenant length. The tenant name's bytes follow.
inline constexpr std::size_t StreamHelloFixedSize = 8 + 4 + 4 + 8 + 8 + 8 + 4;

/// Tenant names identify the merge domain; they become report keys and
/// (optionally) file names, so they are short and filesystem-safe:
/// 1..=64 bytes of [A-Za-z0-9._-], not starting with a dot.
inline constexpr std::size_t StreamMaxTenantBytes = 64;

/// u64 sequence number + u32 payload length.
inline constexpr std::size_t StreamFrameHeaderSize = 12;

/// Frame length word bit marking a meta frame: the payload is a
/// counter block (encodeStreamMeta), not trace bytes. Meta frames are
/// sequenced and acked like data frames, so client pipeline stats are
/// merged exactly once too.
inline constexpr std::uint32_t StreamFrameMetaBit = 0x80000000u;

/// Ceiling on one frame's payload (after masking StreamFrameMetaBit).
/// Client sinks flush far below this; the server rejects oversized
/// lengths before buffering, so a hostile length prefix cannot make
/// the aggregator buffer gigabytes.
inline constexpr std::uint32_t StreamMaxFramePayload = 1u << 20;

/// Server->client messages on a stream connection: u32 type + u64
/// value, fixed twelve bytes. Unknown types are a protocol error.
inline constexpr std::size_t StreamServerMsgSize = 12;
/// Hello answer: value = the sequence the client must send (or replay
/// from) next — the server's watermark for this stream id.
inline constexpr std::uint32_t StreamMsgResume = 1;
/// Periodic watermark: every frame below value is durably admitted and
/// the client may drop it from its spill buffer.
inline constexpr std::uint32_t StreamMsgAck = 2;
/// Hello refusal: value = a StreamReject* code; the server closes the
/// connection after sending it.
inline constexpr std::uint32_t StreamMsgReject = 3;

/// Reject codes (StreamMsgReject's value word).
/// The client's first retained sequence is above the server's
/// watermark — a daemon restart lost state the client no longer has.
inline constexpr std::uint64_t StreamRejectResumeUnavailable = 1;
/// Another live connection owns this (tenant, stream id).
inline constexpr std::uint64_t StreamRejectStreamBusy = 2;
/// The tenant's connection quota is exhausted.
inline constexpr std::uint64_t StreamRejectConnectionQuota = 3;
/// The stream previously failed decoding; it cannot be resumed.
inline constexpr std::uint64_t StreamRejectPoisoned = 4;

/// The server acks its watermark every this-many admitted frames (and
/// always once the trace's End record verifies, so a finishing client
/// learns its stream is durable without waiting an interval out).
inline constexpr std::uint32_t StreamAckInterval = 32;

/// True iff \p Name is a valid tenant name (see StreamMaxTenantBytes).
inline bool isValidTenantName(const std::string &Name) {
  if (Name.empty() || Name.size() > StreamMaxTenantBytes || Name[0] == '.')
    return false;
  for (char C : Name) {
    bool Ok = (C >= 'a' && C <= 'z') || (C >= 'A' && C <= 'Z') ||
              (C >= '0' && C <= '9') || C == '.' || C == '_' || C == '-';
    if (!Ok)
      return false;
  }
  return true;
}

/// Client identity carried by the Hello.
struct StreamHello {
  std::string Tenant;
  std::uint64_t ProcessId = 0;
  /// Client-chosen nonzero id naming the logical stream across
  /// reconnects; the server keys resume state by (tenant, stream id).
  std::uint64_t StreamId = 0;
  /// Lowest frame sequence the client can still replay (its spill
  /// buffer's oldest retained frame; equals the next sequence when
  /// nothing is retained).
  std::uint64_t FirstRetainedSeq = 0;
};

/// Serializes a Hello (caller has validated the tenant name).
inline void encodeStreamHello(std::string &Out, const StreamHello &Hello) {
  Out.append(StreamMagic, sizeof(StreamMagic));
  appendU32(Out, StreamProtocolVersion);
  appendU32(Out, StreamHelloFlags);
  appendU64(Out, Hello.ProcessId);
  appendU64(Out, Hello.StreamId);
  appendU64(Out, Hello.FirstRetainedSeq);
  appendString(Out, Hello.Tenant);
}

/// Serializes one frame header; \p PayloadSize bytes follow on the
/// wire. \p PayloadSize may carry StreamFrameMetaBit.
inline void encodeStreamFrameHeader(std::string &Out, std::uint64_t Sequence,
                                    std::uint32_t PayloadSize) {
  appendU64(Out, Sequence);
  appendU32(Out, PayloadSize);
}

/// Serializes one server->client message.
inline void encodeStreamServerMessage(std::string &Out, std::uint32_t Type,
                                      std::uint64_t Value) {
  appendU32(Out, Type);
  appendU64(Out, Value);
}

//===----------------------------------------------------------------------===//
// Meta frames: client pipeline counters
//===----------------------------------------------------------------------===//
//
// A meta frame's payload is u32 count, then count x (u32 key + u64
// value), keys strictly ascending from the enumeration below. The
// daemon merges them into the tenant's client-pipeline rollup
// (event_pipeline section, --pipeline-report): sums everywhere except
// the high-water keys, which merge by max. Unknown keys are rejected —
// same posture as unknown header flags.

inline constexpr std::uint32_t StreamMetaEventsProcessed = 1;
inline constexpr std::uint32_t StreamMetaEventsFiltered = 2;
inline constexpr std::uint32_t StreamMetaEventsDropped = 3;
inline constexpr std::uint32_t StreamMetaEventsSampledOut = 4;
/// High-water mark: merged by max, not sum.
inline constexpr std::uint32_t StreamMetaMaxQueueDepth = 5;
inline constexpr std::uint32_t StreamMetaFlushCount = 6;
inline constexpr std::uint32_t StreamMetaQueueSpins = 7;
inline constexpr std::uint32_t StreamMetaQueueParks = 8;
inline constexpr std::uint32_t StreamMetaArenaPayloads = 9;
inline constexpr std::uint32_t StreamMetaArenaBytes = 10;
inline constexpr std::uint32_t StreamMetaArenaHits = 11;
inline constexpr std::uint32_t StreamMetaArenaMemoHits = 12;
inline constexpr std::uint32_t StreamMetaMaxKey = 12;

/// One counter in a meta frame.
struct StreamMetaCounter {
  std::uint32_t Key = 0;
  std::uint64_t Value = 0;
};

/// Serializes a meta-frame payload (keys must be valid and ascending).
inline void encodeStreamMeta(std::string &Out,
                             const std::vector<StreamMetaCounter> &Counters) {
  appendU32(Out, static_cast<std::uint32_t>(Counters.size()));
  for (const StreamMetaCounter &C : Counters) {
    appendU32(Out, C.Key);
    appendU64(Out, C.Value);
  }
}

//===----------------------------------------------------------------------===//
// Control channel
//===----------------------------------------------------------------------===//
//
// A control connection speaks to the same socket as the trace streams;
// the daemon disambiguates on the first eight bytes ("PASTACTL" vs
// "PASTASTM"). One request, one response, then the connection closes:
//   request:  magic(8) + u32 protocol version + u32 length + command text
//   response: u32 status (0 = ok) + u32 length + message text
// Commands are whitespace-separated words ("attach-tool <tenant>
// <tool>", "detach-tool <tenant> <tool>", "set-lanes <tenant> <n>",
// "list-tenants") — the verbs behind `accelprof --control SOCKET
// <command>`, the path that live-reconfigures a running daemon's
// tenant sessions.

/// First eight bytes of every control connection ("PASTACTL").
inline constexpr char ControlMagic[8] = {'P', 'A', 'S', 'T', 'A', 'C', 'T',
                                         'L'};

/// Control protocol version; servers reject other versions outright.
inline constexpr std::uint32_t ControlProtocolVersion = 1;

/// Ceiling on a control command's text (and a response message).
inline constexpr std::uint32_t ControlMaxCommandBytes = 4096;

/// Response status words.
inline constexpr std::uint32_t ControlStatusOk = 0;
inline constexpr std::uint32_t ControlStatusError = 1;

/// Serializes a control request.
inline void encodeControlRequest(std::string &Out,
                                 const std::string &Command) {
  Out.append(ControlMagic, sizeof(ControlMagic));
  appendU32(Out, ControlProtocolVersion);
  appendString(Out, Command);
}

/// Serializes a control response.
inline void encodeControlResponse(std::string &Out, std::uint32_t Status,
                                  const std::string &Message) {
  appendU32(Out, Status);
  appendString(Out, Message);
}

} // namespace trace
} // namespace pasta

#endif // PASTA_PASTA_STREAMENVELOPE_H
