//===- pasta/CallStack.cpp ------------------------------------------------===//
//
// Part of the PASTA reproduction, under the MIT license.
//
//===----------------------------------------------------------------------===//

#include "pasta/CallStack.h"

#include <string_view>

using namespace pasta;

std::string CrossLayerStack::str() const {
  std::string Out;
  bool InPython = false;
  Out += "--- C/C++ ---\n";
  for (const StackFrame &Frame : Frames) {
    if (Frame.Language == StackFrame::Lang::Python && !InPython) {
      Out += "--- Python ---\n";
      InPython = true;
    }
    Out += "  ";
    Out += Frame.Text;
    Out += '\n';
  }
  return Out;
}

static bool contains(std::string_view Haystack, std::string_view Needle) {
  return Haystack.find(Needle) != std::string_view::npos;
}

CrossLayerStack CallStackBuilder::capture(const std::string &KernelName) const {
  CrossLayerStack Stack;
  auto Cpp = [&Stack](const char *Text) {
    Stack.Frames.push_back({StackFrame::Lang::Cpp, Text});
  };

  // Innermost C++ frames depend on the kernel family — matching the
  // paper's Fig. 4 example for the BERT GEMM.
  if (contains(KernelName, "sgemm") || contains(KernelName, "Cijk")) {
    Cpp("torch/aten/src/ATen/cuda/CUDABlas.cpp:771 "
        "at::cuda::blas::gemm_and_bias()");
    Cpp("torch/aten/src/ATen/native/cuda/Blas.cpp:281 operator()");
    Cpp("torch/aten/src/ATen/native/cuda/Blas.cpp:281 "
        "addmm_out_cuda_impl");
    Cpp("torch/build/aten/src/ATen/RegisterCUDA.cpp:17434 "
        "wrapper_CUDA_addmm");
  } else if (contains(KernelName, "im2col") || contains(KernelName, "Col")) {
    Cpp("torch/aten/src/ATen/native/cuda/im2col.cuh:98 "
        "at::native::im2col()");
    Cpp("torch/aten/src/ATen/native/cuda/ConvolutionMM2d.cu:147 "
        "conv2d_forward_cuda");
  } else if (contains(KernelName, "winograd") ||
             contains(KernelName, "cudnn") ||
             contains(KernelName, "miopen")) {
    Cpp("torch/aten/src/ATen/native/cudnn/Conv_v8.cpp:612 "
        "at::native::cudnn_convolution_forward()");
    Cpp("torch/aten/src/ATen/native/cudnn/ConvShared.cpp:259 "
        "cudnn_convolution");
  } else if (contains(KernelName, "batch_norm") ||
             contains(KernelName, "BatchNorm")) {
    Cpp("torch/aten/src/ATen/native/cuda/Normalization.cu:521 "
        "at::native::batch_norm_cuda()");
  } else if (contains(KernelName, "softmax") ||
             contains(KernelName, "SoftMax")) {
    Cpp("torch/aten/src/ATen/native/cuda/SoftMax.cu:1012 "
        "at::native::softmax_cuda()");
  } else if (contains(KernelName, "nccl")) {
    Cpp("torch/csrc/distributed/c10d/ProcessGroupNCCL.cpp:3210 "
        "c10d::ProcessGroupNCCL::allreduce()");
  } else {
    Cpp("torch/aten/src/ATen/native/cuda/CUDALoops.cuh:312 "
        "at::native::gpu_kernel()");
    Cpp("torch/aten/src/ATen/native/cuda/Loops.cuh:78 "
        "at::native::launch_vectorized_kernel");
  }
  Cpp("torch/aten/src/ATen/core/dispatch/Dispatcher.h:702 "
      "c10::Dispatcher::call");

  {
    // Snapshot the handle under the lock; the frames themselves are
    // immutable, so iteration needs no further synchronization.
    PayloadStack Python;
    {
      std::lock_guard<std::mutex> Lock(Mutex);
      Python = PythonFrames;
    }
    for (const std::string &Frame : Python)
      Stack.Frames.push_back({StackFrame::Lang::Python, Frame});
  }

  // Process entry frames close the stack like the paper's figure.
  Cpp("../sysdeps/nptl/libc_start_call_main.h:58 __libc_start_call_main");
  Cpp("../csu/libc-start.c:392 __libc_start_main_impl");
  return Stack;
}
