//===- pasta/EventProcessor.h - Preprocess + dispatch -----------*- C++ -*-===//
//
// Part of the PASTA reproduction, under the MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The PASTA event processor (paper §III-B): CPU preprocessing of coarse
/// events, GPU-accelerated in-situ analysis of fine-grained device
/// records, and the dispatch unit routing preprocessed data to the active
/// tools. It implements sim::TraceSink so vendor profiling layers stream
/// device records straight into it.
///
/// The GPU-resident collect-and-analyze model (paper Fig. 2b) is realized
/// by a host thread pool standing in for device analysis warps: tools
/// returning a DeviceAnalysis get their records reduced concurrently, for
/// real, while the *simulated* cost was already charged by the device's
/// cost model.
///
//===----------------------------------------------------------------------===//

#ifndef PASTA_PASTA_EVENTPROCESSOR_H
#define PASTA_PASTA_EVENTPROCESSOR_H

#include "pasta/CallStack.h"
#include "pasta/Events.h"
#include "pasta/RangeFilter.h"
#include "pasta/Tool.h"
#include "sim/Trace.h"
#include "support/ThreadPool.h"

#include <cstdint>
#include <memory>
#include <vector>

namespace pasta {

/// Processor-side counters (tests assert on them).
struct ProcessorStats {
  std::uint64_t EventsProcessed = 0;
  std::uint64_t EventsFiltered = 0;
  std::uint64_t RecordBatches = 0;
  std::uint64_t RecordsDelivered = 0;
  std::uint64_t DeviceAnalyzedRecords = 0;
  std::uint64_t HostAnalyzedRecords = 0;
};

/// Preprocessing + dispatch layer between the event handler and tools.
class EventProcessor : public sim::TraceSink {
public:
  /// \p DeviceAnalysisThreads sizes the host stand-in for the device
  /// analysis warps (0 = hardware concurrency).
  explicit EventProcessor(std::size_t DeviceAnalysisThreads = 0);
  ~EventProcessor() override;

  /// Tools receiving dispatched data (not owned).
  void addTool(Tool *T) {
    Tools.push_back(T);
    T->onAttach(*this);
  }
  void clearTools() { Tools.clear(); }
  const std::vector<Tool *> &tools() const { return Tools; }

  RangeFilter &rangeFilter() { return Filter; }
  CallStackBuilder &callStacks() { return Stacks; }
  const ProcessorStats &stats() const { return Stats; }

  /// CPU preprocess + dispatch of one coarse event (called by the event
  /// handler). Kernel-scoped events honour the range filter.
  void process(Event E);

  //===--------------------------------------------------------------------===
  // sim::TraceSink — fine-grained device records
  //===--------------------------------------------------------------------===
  void onKernelBegin(const sim::LaunchInfo &Info) override;
  void onAccessBatch(const sim::LaunchInfo &Info,
                     const sim::MemAccessRecord *Records,
                     std::size_t Count) override;
  void onInstrMix(const sim::LaunchInfo &Info,
                  const sim::InstrMix &Mix) override;
  void onKernelEnd(const sim::LaunchInfo &Info,
                   const sim::TraceTimeBreakdown &Breakdown) override;

private:
  /// Dispatch-unit core: routes \p E to the kind-specific hook and the
  /// generic hook of every tool.
  void dispatch(const Event &E);

  std::vector<Tool *> Tools;
  RangeFilter Filter;
  CallStackBuilder Stacks;
  ThreadPool AnalysisThreads;
  ProcessorStats Stats;
};

} // namespace pasta

#endif // PASTA_PASTA_EVENTPROCESSOR_H
