//===- pasta/EventProcessor.h - Preprocess + dispatch -----------*- C++ -*-===//
//
// Part of the PASTA reproduction, under the MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The PASTA event processor (paper §III-B): CPU preprocessing of coarse
/// events, GPU-accelerated in-situ analysis of fine-grained device
/// records, and the dispatch unit routing preprocessed data to the active
/// tools. It implements sim::TraceSink so vendor profiling layers stream
/// device records straight into it.
///
/// Dispatch is subscription-driven: each tool's declared Subscription
/// (EventKind mask + fine-grained interests + concurrency contract) is
/// compiled into an immutable, epoch-versioned RoutingTable, so an event
/// only reaches the tools that asked for its kind — including the
/// generic onEvent hook, which non-subscribers never see.
///
/// The dispatch unit runs in one of two modes:
///
///  * synchronous (default): process() preprocesses and dispatches on the
///    caller's thread — the application pays tool-analysis cost inline.
///  * asynchronous: process() admits the event into the bounded MPSC
///    queues of one or more dispatch *lanes* and returns; each lane's
///    thread drains its queue in batches and runs tool dispatch off the
///    application's critical path. An event is routed to the pinned lane
///    of every Serial subscriber, plus — when it has ShardByDevice or
///    Concurrent subscribers — the event's home lane (DeviceIndex modulo
///    the active lane count), so per-device ordering holds for sharded
///    tools and Serial tools keep today's exactly-one-thread contract.
///
///    Admission classes: resource events (allocations, frees, tensors,
///    streams) are never dropped or sampled by the lossy overflow
///    policies — they wait for space like Block — so every tool's
///    allocation view stays consistent under loss. Synchronization
///    events, TraceSink record deliveries and finish() are hard flush
///    barriers across all lanes; with the Block policy and Serial-
///    contract tools, async reports are byte-identical to synchronous
///    ones.
///
///    Preprocessing (range filtering, Python-stack context) runs at
///    admission on the producer's thread; each lane additionally keeps
///    its own CallStackBuilder fed in lane order, so callStacks() from
///    a tool hook resolves to a context consistent with that lane's
///    event stream. Context updates fan out only to lanes hosting tools
///    whose Subscription declares CapturesStacks — stack-indifferent
///    lanes never pay context-only deliveries.
///
///    Zero-copy fan-out: once routing determines an event reaches at
///    least one lane, its payloads (operator/layer names, Python
///    stacks, kernel/tensor descriptors) are interned into the
///    processor's EventArena on the producer's thread — up front when
///    the event fans out to several lanes (the copies must share), at
///    queue admission for single-lane routes (events discarded by a
///    lossy overflow policy never allocate). Per-lane Event copies
///    share refcounted immutable payloads instead of duplicating them,
///    so fan-out cost no longer scales with the subscriber count, and
///    unrouted events never touch the arena. The arena's occupancy and
///    hit counters surface through stats() and the event_pipeline
///    report (arena.* metrics).
///
/// Live reconfiguration (epoch-swapped routing tables): the tool set is
/// NOT sealed at the first admitted event. Every producer admits under
/// the routing table published by the RoutingEpoch (a single acquire
/// load on the event path); addTool()/removeTool()/clearTools()/
/// setLaneCount() quiesce admission behind a 64-slot entry-counter gate
/// (a Dekker-style handshake: producers bump a striped counter and
/// re-check the Reconfiguring flag, the reconfigurer sets the flag and
/// waits for every counter to reach zero), flush the draining epoch
/// through every lane (so every event admitted under epoch N is fully
/// dispatched under epoch N's table), then build and publish table N+1
/// and release the gate. Retired tables stay resident until the
/// processor is destroyed, so a reader that loaded table N is always
/// safe to finish with it. Serial tools are re-pinned round-robin over
/// the *active* lanes of the new table only at this barrier — the
/// sanctioned-migration point PASTA_VALIDATE's lane-affinity checker is
/// taught about.
///
/// Reconfiguration entry points must not be called from a dispatch-lane
/// thread or from inside a tool hook running under an admission guard
/// (synchronous dispatch, record deliveries): the calling hook is part
/// of the work the gate waits on, so the call is rejected with a
/// diagnostic instead of self-deadlocking (the same contract flush()
/// enforces for lane threads).
///
/// Lane auto-scaling: with ProcessorOptions::LanesAuto, the lane vector
/// is preallocated to MaxLanes (threads park cheaply on their empty
/// rings) and a controller thread samples the queues' park/enqueue
/// counters every LanesAutoIntervalMs, growing the active lane set when
/// producers park on a full ring and shrinking it after idle intervals,
/// always within [MinLanes, MaxLanes] and always through the same epoch
/// swap — so Serial digests stay byte-identical at any active lane
/// count.
///
/// The GPU-resident collect-and-analyze model (paper Fig. 2b) is realized
/// by a host thread pool standing in for device analysis warps: tools
/// returning a DeviceAnalysis get their records reduced concurrently, for
/// real, while the *simulated* cost was already charged by the device's
/// cost model.
///
//===----------------------------------------------------------------------===//

#ifndef PASTA_PASTA_EVENTPROCESSOR_H
#define PASTA_PASTA_EVENTPROCESSOR_H

#include "pasta/CallStack.h"
#include "pasta/EventArena.h"
#include "pasta/EventQueue.h"
#include "pasta/Events.h"
#include "pasta/RangeFilter.h"
#include "pasta/Tool.h"
#include "sim/Trace.h"
#include "support/ThreadPool.h"

#include <array>
#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <memory>
#include <mutex>
#include <optional>
#include <thread>
#include <vector>

namespace pasta {

class ReportSink;
class Validator;

/// Compile-time default for ProcessorOptions::Validate: the
/// -DPASTA_VALIDATE=ON build flips every processor to validating unless
/// a caller opts out explicitly.
constexpr bool validateDefault() {
#ifdef PASTA_VALIDATE_DEFAULT_ON
  return true;
#else
  return false;
#endif
}

/// Processor-side counters (tests assert on them). In asynchronous mode
/// the snapshot returned by stats() merges the per-lane counters; it is
/// only stable after flush() or a finished session.
struct ProcessorStats {
  /// Dispatch passes that delivered an event to at least one tool
  /// (summed across lanes in asynchronous mode; an event fanned out to
  /// two lanes counts one pass per lane).
  std::uint64_t EventsProcessed = 0;
  std::uint64_t EventsFiltered = 0;
  std::uint64_t RecordBatches = 0;
  std::uint64_t RecordsDelivered = 0;
  std::uint64_t DeviceAnalyzedRecords = 0;
  std::uint64_t HostAnalyzedRecords = 0;
  /// Async pipeline: events discarded by the DropNewest policy.
  std::uint64_t EventsDropped = 0;
  /// Async pipeline: events discarded by the Sample policy.
  std::uint64_t EventsSampledOut = 0;
  /// Async pipeline: high-water mark over every lane's queue.
  std::uint64_t MaxQueueDepth = 0;
  /// Hard flush barriers taken (Synchronization events, record
  /// deliveries, annotation toggles, finish).
  std::uint64_t FlushCount = 0;
  /// Active dispatch lanes (0 = synchronous inline dispatch).
  std::uint64_t DispatchLanes = 0;
  /// Routing-table swaps published so far (tool attach/detach/clear and
  /// lane-count changes all count; the initial empty table does not).
  std::uint64_t Reconfigurations = 0;
  /// Auto-scaler grow decisions (LanesAuto).
  std::uint64_t LaneScaleUps = 0;
  /// Auto-scaler shrink decisions (LanesAuto).
  std::uint64_t LaneScaleDowns = 0;
  /// Async pipeline: enqueues that found a lane's ring full and spun
  /// for space (summed over lanes).
  std::uint64_t QueueSpins = 0;
  /// Async pipeline: enqueues whose spin window expired and parked on
  /// the queue's waiter (back-pressure actually blocking a producer).
  std::uint64_t QueueParks = 0;
  /// Event arena (async mode): distinct payloads resident — strings,
  /// stacks, kernel/tensor descriptors interned once and shared by
  /// every lane.
  std::uint64_t ArenaPayloads = 0;
  /// Event arena: approximate bytes those payloads occupy, once.
  std::uint64_t ArenaBytes = 0;
  /// Event arena: intern lookups that found an existing payload — each
  /// one an allocation (and its per-lane copies) avoided.
  std::uint64_t ArenaHits = 0;
  /// Event arena: subset of ArenaHits served by the thread-local memo
  /// with zero lock acquisitions.
  std::uint64_t ArenaMemoHits = 0;
  /// Event arena: shard lock acquisitions that found the lock held.
  std::uint64_t ArenaShardContention = 0;
  /// Event arena: payloads admitted past the MaxBytes guard rail as
  /// per-event pins (not deduplicated).
  std::uint64_t ArenaEvictedFallbacks = 0;
  /// Event arena: content-hash shards the intern tables split into.
  std::uint64_t ArenaShards = 0;
};

/// Per-lane counter snapshot (merged into ProcessorStats by stats()).
struct DispatchLaneStats {
  std::uint64_t EventsDispatched = 0;
  std::uint64_t Enqueued = 0;
  std::uint64_t Dropped = 0;
  std::uint64_t SampledOut = 0;
  std::uint64_t MaxQueueDepth = 0;
};

/// Dispatch-unit configuration.
struct ProcessorOptions {
  /// Device-analysis thread-pool width (0 = hardware concurrency).
  std::size_t AnalysisThreads = 0;
  /// Decouple event collection from tool analysis on dispatch lanes.
  bool AsyncEvents = false;
  /// Bounded per-lane queue capacity between producers and dispatch.
  std::size_t QueueDepth = 4096;
  /// What happens to standard-class events arriving while a lane's
  /// queue is full (resource events always wait for space).
  OverflowPolicy Overflow = OverflowPolicy::Block;
  /// The Sample policy's N: 1/N of overflowing events are admitted.
  std::uint64_t SampleEveryN = 8;
  /// Dispatch lanes when AsyncEvents is on (clamped to [1, 64]). Serial
  /// tools are pinned round-robin; ShardByDevice/Concurrent tools run on
  /// each event's home lane. With LanesAuto this is the *initial* active
  /// lane count (clamped into [MinLanes, MaxLanes]).
  std::size_t DispatchThreads = 1;
  /// Iterations a full-ring producer (or empty-ring lane consumer)
  /// spins before parking; 0 parks immediately — the default on
  /// single-core hosts (PASTA_QUEUE_SPINS).
  std::size_t QueueSpinIterations = defaultQueueSpinIterations();
  /// Content-hash shards for the payload arena's intern tables (0 =
  /// hardware-concurrency-derived default; PASTA_ARENA_SHARDS).
  std::size_t ArenaShards = 0;
  /// Thread-local intern memo in front of the arena shards
  /// (PASTA_ARENA_MEMO; disable to measure or to cap per-thread state).
  bool ArenaMemo = true;
  /// Resident arena payload byte cap, 0 = unlimited
  /// (PASTA_ARENA_MAX_BYTES); past it, new payloads are per-event pins.
  std::uint64_t ArenaMaxBytes = 0;
  /// Lane auto-scaling (PASTA_LANES_AUTO, --lanes-auto): a controller
  /// thread grows the active lane set when producers park on full rings
  /// and shrinks it across idle intervals, within [MinLanes, MaxLanes].
  /// Only meaningful with AsyncEvents.
  bool LanesAuto = false;
  /// Auto-scaling floor (PASTA_MIN_LANES; 0 = 1).
  std::size_t MinLanes = 0;
  /// Auto-scaling ceiling (PASTA_MAX_LANES; 0 = max(DispatchThreads, 4),
  /// clamped to 64). The lane vector is preallocated to this size.
  std::size_t MaxLanes = 0;
  /// Controller sampling interval in milliseconds.
  std::size_t LanesAutoIntervalMs = 20;
  /// Runtime contract validation (see pasta/Validate.h): Serial
  /// overlap/lane-affinity watchdogs, subscription-mask and -drift
  /// checks, arena payload canaries, flush-barrier assertions. Off by
  /// default (one null check per dispatch); PASTA_VALIDATE env and the
  /// -DPASTA_VALIDATE=ON build flip it.
  bool Validate = validateDefault();
};

/// One tool as compiled into a routing table.
struct ToolRouteEntry {
  Tool *T = nullptr;
  Subscription Sub;
  /// Pinned lane for Serial contracts (0 in synchronous mode).
  std::size_t Lane = 0;
};

/// Per-kind routing: which entries to invoke, split by placement.
struct KindRoute {
  /// Serial subscribers — invoked on their pinned lane.
  std::vector<std::uint32_t> Pinned;
  /// ShardByDevice/Concurrent subscribers — invoked on the event's
  /// home lane.
  std::vector<std::uint32_t> Floating;
  /// Bitmask of lanes with pinned subscribers (fan-out set).
  std::uint64_t PinnedLaneMask = 0;
};

/// One immutable, epoch-versioned compilation of the attached tools'
/// subscriptions. Producers and lanes read it lock-free through the
/// RoutingEpoch; it is never mutated after publication, and retired
/// tables outlive every reader (they are retained until the processor
/// is destroyed).
struct RoutingTable {
  /// Publication sequence number (0 = the initial empty table).
  std::uint64_t Epoch = 0;
  /// Lanes this table routes to (<= the constructed lane vector; the
  /// auto-scaler moves this between MinLanes and MaxLanes).
  std::size_t ActiveLanes = 1;
  std::vector<ToolRouteEntry> Entries;
  std::array<KindRoute, NumEventKinds> Routes;
  /// Lanes hosting stack-capturing tools (Subscription::CapturesStacks):
  /// the pinned lane of each capturing Serial tool, widened to every
  /// active lane when a capturing ShardByDevice/Concurrent tool exists
  /// (any lane can be its home lane). Python-stack context updates fan
  /// out to exactly this set.
  std::uint64_t StackLaneMask = 0;
  /// Entry indices with fine-grained interests (record batches,
  /// instruction mixes, per-launch trace breakdowns).
  std::vector<std::uint32_t> RecordEntries;
  std::vector<std::uint32_t> MixEntries;
  std::vector<std::uint32_t> TraceEntries;
};

/// The single authorized window onto the current routing table. Every
/// reader MUST go through current() — pasta-lint's routing-epoch rule
/// rejects any other reference to the underlying pointer — so the
/// acquire/release pairing that makes table publication safe cannot be
/// bypassed by a relaxed load sneaking into a hot path.
class RoutingEpoch {
public:
  /// The currently published table (acquire: a reader sees every write
  /// that built the table it observes).
  const RoutingTable *current() const {
    return EpochTablePtr.load(std::memory_order_acquire);
  }
  /// Publishes \p Table (release). Caller owns quiescence: the
  /// processor's admission gate guarantees no producer is mid-admission
  /// and every lane has drained the previous epoch.
  void publish(const RoutingTable *Table) {
    EpochTablePtr.store(Table, std::memory_order_release);
  }

private:
  std::atomic<const RoutingTable *> EpochTablePtr{nullptr};
};

/// Preprocessing + dispatch layer between the event handler and tools.
class EventProcessor : public sim::TraceSink {
public:
  /// \p DeviceAnalysisThreads sizes the host stand-in for the device
  /// analysis warps (0 = hardware concurrency).
  explicit EventProcessor(std::size_t DeviceAnalysisThreads = 0);
  explicit EventProcessor(const ProcessorOptions &Opts);
  ~EventProcessor() override;

  /// Adds a tool (not owned) and publishes a new routing-table epoch —
  /// on a live pipeline this quiesces admission, drains every lane, and
  /// swaps tables, so the tool sees exactly the events admitted after
  /// the call returns. Returns false (without mutating) only when
  /// called from a dispatch-lane thread or from inside a tool hook
  /// running under an admission guard — the caller is part of the work
  /// the reconfiguration barrier waits on.
  bool addTool(Tool *T);
  /// Detaches \p T from the routing tables at an epoch boundary: events
  /// admitted after the call returns never reach it, and every event
  /// admitted before is fully delivered first. False when \p T is not
  /// attached or under the same dispatch-context rule as addTool.
  bool removeTool(Tool *T);
  /// Removes every tool. Same dispatch-context rule as addTool.
  bool clearTools();
  const std::vector<Tool *> &tools() const { return Tools; }
  /// The subscription \p T was attached with (as compiled into the
  /// current routing table); nullopt when \p T is not attached.
  std::optional<Subscription> subscriptionOf(const Tool *T) const;

  /// Repins the active lane set to \p Count at an epoch boundary;
  /// Serial tools migrate to their new round-robin home as part of the
  /// swap. False in synchronous mode and when \p Count is outside
  /// [1, constructed lanes]. Same dispatch-context rule as addTool. The
  /// auto-scaler calls this; it is public so tests and embedders can
  /// drive scaling directly.
  bool setLaneCount(std::size_t Count);

  RangeFilter &rangeFilter() { return Filter; }
  /// The shared immutable payload arena events are interned into at
  /// admission (asynchronous mode). Exposed for tests and benches that
  /// assert on interning behavior.
  EventArena &arena() { return Arena; }
  /// The cross-layer stack context for the calling thread: dispatch-lane
  /// threads get their lane's builder (fed in lane order), every other
  /// thread the shared builder updated at admission.
  CallStackBuilder &callStacks();
  /// Counter snapshot, merged across the dispatch lanes. Safe to call
  /// concurrently with a running pipeline (each counter is read
  /// atomically), but only quiescent pipelines (after flush()/finish,
  /// or in synchronous mode) yield a mutually consistent snapshot.
  ProcessorStats stats() const;
  /// Per-constructed-lane snapshots (empty in synchronous mode; with
  /// LanesAuto, includes currently inactive lanes).
  std::vector<DispatchLaneStats> laneStats() const;
  bool asyncEvents() const { return !Lanes.empty(); }
  /// Active dispatch lanes (0 in synchronous mode). With LanesAuto this
  /// moves at epoch boundaries; without, it equals DispatchThreads.
  std::size_t laneCount() const;
  /// The runtime contract validator, or null when validation is off
  /// (ProcessorOptions::Validate). Tests install collecting handlers
  /// and drive the payload ledger through this.
  Validator *validator() const { return Val.get(); }

  /// Admits one coarse event (called by the event handler). Synchronous
  /// mode preprocesses + dispatches inline; asynchronous mode routes the
  /// event to its subscribers' lanes and returns, except for
  /// Synchronization events which flush the pipeline before returning
  /// (hard barrier).
  void process(Event E);

  /// Blocks until every admitted event has been dispatched on every
  /// lane. No-op in synchronous mode (everything already was). Must not
  /// be called from a tool hook — a dispatch lane cannot wait on itself.
  void flush();

  /// Annotation toggles (pasta.start/stop). Flush first so the region
  /// boundary falls between the same events as in synchronous mode.
  void annotationStart();
  void annotationStop();

  /// Emits the dispatch-unit counters as an "event_pipeline" report
  /// section (does not close \p Sink). Multi-lane pipelines include a
  /// per-lane breakdown.
  void reportPipeline(ReportSink &Sink) const;

  //===--------------------------------------------------------------------===
  // sim::TraceSink — fine-grained device records
  //===--------------------------------------------------------------------===
  // Record batches reference transient device buffers and are analyzed
  // inline on the delivering thread; in async mode each delivery first
  // flushes every lane so records never observe tool state older than
  // the coarse events preceding them. Only tools whose subscription
  // declares the matching interest are invoked. Deliveries hold an
  // admission guard for their duration, so a reconfiguration either
  // completes before a batch starts or waits until it finishes.
  void onKernelBegin(const sim::LaunchInfo &Info) override;
  void onAccessBatch(const sim::LaunchInfo &Info,
                     const sim::MemAccessRecord *Records,
                     std::size_t Count) override;
  void onInstrMix(const sim::LaunchInfo &Info,
                  const sim::InstrMix &Mix) override;
  void onKernelEnd(const sim::LaunchInfo &Info,
                   const sim::TraceTimeBreakdown &Breakdown) override;

private:
  friend class ProcessorAdmissionGuard;

  /// One dispatch lane: bounded queue, draining thread, lane-local
  /// stack context and counters. The lane vector is sized once at
  /// construction (to MaxLanes under LanesAuto) and never reallocated —
  /// scaling moves RoutingTable::ActiveLanes, not this vector — so
  /// stats()/laneStats()/callStacks() never race a vector resize.
  struct Lane {
    std::unique_ptr<EventQueue> Queue;
    std::thread Thread;
    CallStackBuilder Stacks;
    std::atomic<std::uint64_t> Dispatched{0};
  };

  /// Producer-side entry counters for the reconfiguration gate, striped
  /// across cache lines to keep the per-event cost one uncontended RMW.
  static constexpr std::size_t AdmissionSlots = 64;
  struct alignas(64) AdmissionSlot {
    std::atomic<std::uint64_t> Entries{0};
  };

  /// This thread's gate stripe (hash of the thread id).
  std::atomic<std::uint64_t> &admissionSlot();

  /// True when the calling thread must not reconfigure this processor:
  /// it is a dispatch-lane thread, or it is inside a tool hook running
  /// under an admission guard (synchronous dispatch, record delivery) —
  /// either way it is work the reconfiguration barrier would wait on.
  bool inDispatchContext() const;

  /// Bitmask of the first \p Count lanes.
  static std::uint64_t lanesMask(std::size_t Count) {
    return Count >= 64 ? ~std::uint64_t(0)
                       : (std::uint64_t(1) << Count) - 1;
  }

  /// Admission-side preprocessing on the producer's thread: range
  /// filtering and shared Python-stack context. False when filtered.
  bool admit(Event &E);

  /// Compiles the attached tools into a fresh routing table for
  /// \p ActiveLanes lanes (caller holds AttachMutex).
  std::unique_ptr<RoutingTable> buildTable(std::size_t ActiveLanes);

  /// The epoch swap (caller holds AttachMutex): engage the admission
  /// gate, wait for in-flight admissions, drain every lane (flushing
  /// epoch N completely under table N), register the new contracts with
  /// the validator, publish table N+1, release the gate.
  void swapTable(std::size_t ActiveLanes);

  /// The lane an event's ShardByDevice/Concurrent subscribers run on
  /// under \p Table.
  static std::size_t homeLane(const Event &E, const RoutingTable &Table) {
    return Table.ActiveLanes <= 1
               ? 0
               : static_cast<std::size_t>(E.DeviceIndex) %
                     Table.ActiveLanes;
  }

  /// Dispatch-unit core: routes \p E to the hooks of every subscriber
  /// \p Table places on \p LaneIndex. Returns true when any tool was
  /// invoked.
  bool dispatchOn(const Event &E, std::size_t LaneIndex,
                  const RoutingTable &Table);

  /// Calls the kind-specific hook, then the generic hook.
  static void invoke(Tool &T, const Event &E);

  /// Lane thread main: drains the lane's queue until close().
  void laneLoop(std::size_t LaneIndex);

  /// Auto-scaler main: samples queue pressure every interval and moves
  /// the active lane count through setLaneCount().
  void controllerLoop();

  /// Attached tools in attach order (mutated under AttachMutex; the
  /// compiled per-epoch view lives in the routing tables).
  std::vector<Tool *> Tools;
  /// Every routing table ever published, oldest first; the current one
  /// is Tables.back(). Retired tables are deliberately retained (a few
  /// KB each) so readers that loaded an old epoch are always safe —
  /// reclamation would need hazard tracking on the per-event path.
  std::vector<std::unique_ptr<const RoutingTable>> Tables;
  /// The published-table window every reader goes through.
  RoutingEpoch Epoch;

  RangeFilter Filter;
  /// Shared immutable payload arena; producers intern admitted events'
  /// payloads here so lane fan-out is zero-copy.
  EventArena Arena;
  /// Shared stack context: written at admission, read by synchronous
  /// dispatch and the record-delivery path.
  CallStackBuilder SharedStacks;
  ThreadPool AnalysisThreads;
  /// Core counters live as atomics: dispatch lanes increment them while
  /// producers may snapshot via stats() (e.g. a monitor polling drop
  /// counters mid-run).
  struct {
    std::atomic<std::uint64_t> EventsProcessed{0};
    std::atomic<std::uint64_t> EventsFiltered{0};
    std::atomic<std::uint64_t> RecordBatches{0};
    std::atomic<std::uint64_t> RecordsDelivered{0};
    std::atomic<std::uint64_t> DeviceAnalyzedRecords{0};
    std::atomic<std::uint64_t> HostAnalyzedRecords{0};
    std::atomic<std::uint64_t> FlushCount{0};
    std::atomic<std::uint64_t> Reconfigurations{0};
    std::atomic<std::uint64_t> LaneScaleUps{0};
    std::atomic<std::uint64_t> LaneScaleDowns{0};
  } Core;
  std::vector<std::unique_ptr<Lane>> Lanes;

  /// Reconfiguration gate. Producers enter by bumping their stripe and
  /// re-checking Reconfiguring (both seq_cst — the Dekker handshake
  /// with the reconfigurer's flag-store + counter-scan); when the flag
  /// is up they back out and park on ReconfigCv.
  std::array<AdmissionSlot, AdmissionSlots> Gate;
  std::atomic<bool> Reconfiguring{false};
  std::mutex ReconfigMutex;
  std::condition_variable ReconfigCv;

  /// Serializes reconfigurations (tool-set mutation, lane scaling)
  /// against each other; never taken on the steady-state event path.
  std::mutex AttachMutex;

  /// Auto-scaler state (LanesAuto only).
  std::size_t MinLanesEff = 1;
  std::size_t MaxLanesEff = 1;
  std::size_t ControllerIntervalMs = 20;
  std::thread Controller;
  std::mutex ControllerMutex;
  std::condition_variable ControllerCv;
  bool ControllerStop = false;

  /// Runtime contract checks (null when ProcessorOptions::Validate is
  /// off — the entire validation plane then costs one null test per
  /// dispatch).
  std::unique_ptr<Validator> Val;
  /// One-shot guard for the callStacks()-without-CapturesStacks
  /// diagnostic.
  std::atomic<bool> StaleStackWarned{false};
};

} // namespace pasta

#endif // PASTA_PASTA_EVENTPROCESSOR_H
