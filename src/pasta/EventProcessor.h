//===- pasta/EventProcessor.h - Preprocess + dispatch -----------*- C++ -*-===//
//
// Part of the PASTA reproduction, under the MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The PASTA event processor (paper §III-B): CPU preprocessing of coarse
/// events, GPU-accelerated in-situ analysis of fine-grained device
/// records, and the dispatch unit routing preprocessed data to the active
/// tools. It implements sim::TraceSink so vendor profiling layers stream
/// device records straight into it.
///
/// The dispatch unit runs in one of two modes:
///
///  * synchronous (default): process() preprocesses and dispatches on the
///    caller's thread — the application pays tool-analysis cost inline.
///  * asynchronous: process() only admits the event into a bounded MPSC
///    EventQueue and returns; a dedicated dispatch thread drains the
///    queue in batches and runs preprocessing + tool dispatch off the
///    application's critical path. Synchronization events, TraceSink
///    record deliveries and finish() are hard flush barriers, so tool
///    state and reports stay deterministic; with the Block overflow
///    policy async reports are byte-identical to synchronous ones.
///
///    Threading contract: any number of threads may call process()
///    concurrently, but annotation toggles and TraceSink record
///    deliveries are flush-then-proceed operations, not mutual
///    exclusion — they assume no *other* producer enqueues while they
///    run (true for the simulated runtimes, which deliver records from
///    the same thread that issued the launch). Concurrent producers
///    during a record delivery would let the dispatch thread run tool
///    hooks in parallel with the inline record analysis.
///
/// The GPU-resident collect-and-analyze model (paper Fig. 2b) is realized
/// by a host thread pool standing in for device analysis warps: tools
/// returning a DeviceAnalysis get their records reduced concurrently, for
/// real, while the *simulated* cost was already charged by the device's
/// cost model.
///
//===----------------------------------------------------------------------===//

#ifndef PASTA_PASTA_EVENTPROCESSOR_H
#define PASTA_PASTA_EVENTPROCESSOR_H

#include "pasta/CallStack.h"
#include "pasta/EventQueue.h"
#include "pasta/Events.h"
#include "pasta/RangeFilter.h"
#include "pasta/Tool.h"
#include "sim/Trace.h"
#include "support/ThreadPool.h"

#include <atomic>
#include <cstdint>
#include <memory>
#include <thread>
#include <vector>

namespace pasta {

class ReportSink;

/// Processor-side counters (tests assert on them). In asynchronous mode
/// the snapshot returned by stats() is only stable after flush() or a
/// finished session.
struct ProcessorStats {
  std::uint64_t EventsProcessed = 0;
  std::uint64_t EventsFiltered = 0;
  std::uint64_t RecordBatches = 0;
  std::uint64_t RecordsDelivered = 0;
  std::uint64_t DeviceAnalyzedRecords = 0;
  std::uint64_t HostAnalyzedRecords = 0;
  /// Async pipeline: events discarded by the DropNewest policy.
  std::uint64_t EventsDropped = 0;
  /// Async pipeline: events discarded by the Sample policy.
  std::uint64_t EventsSampledOut = 0;
  /// Async pipeline: high-water mark of the event queue.
  std::uint64_t MaxQueueDepth = 0;
  /// Hard flush barriers taken (Synchronization events, record
  /// deliveries, annotation toggles, finish).
  std::uint64_t FlushCount = 0;
};

/// Dispatch-unit configuration.
struct ProcessorOptions {
  /// Device-analysis thread-pool width (0 = hardware concurrency).
  std::size_t AnalysisThreads = 0;
  /// Decouple event collection from tool analysis on a dispatch thread.
  bool AsyncEvents = false;
  /// Bounded queue capacity between producers and the dispatch thread.
  std::size_t QueueDepth = 4096;
  /// What happens to events arriving while the queue is full.
  OverflowPolicy Overflow = OverflowPolicy::Block;
  /// The Sample policy's N: 1/N of overflowing events are admitted.
  std::uint64_t SampleEveryN = 8;
};

/// Preprocessing + dispatch layer between the event handler and tools.
class EventProcessor : public sim::TraceSink {
public:
  /// \p DeviceAnalysisThreads sizes the host stand-in for the device
  /// analysis warps (0 = hardware concurrency).
  explicit EventProcessor(std::size_t DeviceAnalysisThreads = 0);
  explicit EventProcessor(const ProcessorOptions &Opts);
  ~EventProcessor() override;

  /// Tools receiving dispatched data (not owned).
  void addTool(Tool *T) {
    Tools.push_back(T);
    T->onAttach(*this);
  }
  void clearTools() { Tools.clear(); }
  const std::vector<Tool *> &tools() const { return Tools; }

  RangeFilter &rangeFilter() { return Filter; }
  CallStackBuilder &callStacks() { return Stacks; }
  /// Counter snapshot, merged with the async queue counters. Safe to
  /// call concurrently with a running pipeline (each counter is read
  /// atomically), but only quiescent pipelines (after flush()/finish,
  /// or in synchronous mode) yield a mutually consistent snapshot.
  ProcessorStats stats() const;
  bool asyncEvents() const { return Queue != nullptr; }

  /// Admits one coarse event (called by the event handler). Synchronous
  /// mode preprocesses + dispatches inline; asynchronous mode enqueues
  /// and returns, except for Synchronization events which flush the
  /// pipeline before returning (hard barrier).
  void process(Event E);

  /// Blocks until every admitted event has been dispatched. No-op in
  /// synchronous mode (everything already was). Must not be called from
  /// a tool hook — the dispatch thread cannot wait on itself.
  void flush();

  /// Annotation toggles (pasta.start/stop). Flush first so the region
  /// boundary falls between the same events as in synchronous mode.
  void annotationStart();
  void annotationStop();

  /// Emits the dispatch-unit counters as an "event_pipeline" report
  /// section (does not close \p Sink).
  void reportPipeline(ReportSink &Sink) const;

  //===--------------------------------------------------------------------===
  // sim::TraceSink — fine-grained device records
  //===--------------------------------------------------------------------===
  // Record batches reference transient device buffers and are analyzed
  // inline on the delivering thread; in async mode each delivery first
  // flushes the queue so records never observe tool state older than the
  // coarse events preceding them.
  void onKernelBegin(const sim::LaunchInfo &Info) override;
  void onAccessBatch(const sim::LaunchInfo &Info,
                     const sim::MemAccessRecord *Records,
                     std::size_t Count) override;
  void onInstrMix(const sim::LaunchInfo &Info,
                  const sim::InstrMix &Mix) override;
  void onKernelEnd(const sim::LaunchInfo &Info,
                   const sim::TraceTimeBreakdown &Breakdown) override;

private:
  /// Preprocess + dispatch of one event: range filtering, call-stack
  /// context, then routing. Runs on the caller's thread in synchronous
  /// mode and on the dispatch thread in asynchronous mode.
  void processDispatch(Event E);

  /// Dispatch-unit core: routes \p E to the kind-specific hook and the
  /// generic hook of every tool.
  void dispatch(const Event &E);

  /// Dispatch thread main: drains queue batches until close().
  void dispatchLoop();

  std::vector<Tool *> Tools;
  RangeFilter Filter;
  CallStackBuilder Stacks;
  ThreadPool AnalysisThreads;
  /// Core counters live as atomics: the dispatch thread increments them
  /// while producers may snapshot via stats() (e.g. a monitor polling
  /// drop counters mid-run).
  struct {
    std::atomic<std::uint64_t> EventsProcessed{0};
    std::atomic<std::uint64_t> EventsFiltered{0};
    std::atomic<std::uint64_t> RecordBatches{0};
    std::atomic<std::uint64_t> RecordsDelivered{0};
    std::atomic<std::uint64_t> DeviceAnalyzedRecords{0};
    std::atomic<std::uint64_t> HostAnalyzedRecords{0};
    std::atomic<std::uint64_t> FlushCount{0};
  } Core;
  std::unique_ptr<EventQueue> Queue;
  std::thread DispatchThread;
};

} // namespace pasta

#endif // PASTA_PASTA_EVENTPROCESSOR_H
