//===- pasta/EventProcessor.h - Preprocess + dispatch -----------*- C++ -*-===//
//
// Part of the PASTA reproduction, under the MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The PASTA event processor (paper §III-B): CPU preprocessing of coarse
/// events, GPU-accelerated in-situ analysis of fine-grained device
/// records, and the dispatch unit routing preprocessed data to the active
/// tools. It implements sim::TraceSink so vendor profiling layers stream
/// device records straight into it.
///
/// Dispatch is subscription-driven: at attach time each tool's declared
/// Subscription (EventKind mask + fine-grained interests + concurrency
/// contract) is compiled into per-kind routing tables, so an event only
/// reaches the tools that asked for its kind — including the generic
/// onEvent hook, which non-subscribers no longer see.
///
/// The dispatch unit runs in one of two modes:
///
///  * synchronous (default): process() preprocesses and dispatches on the
///    caller's thread — the application pays tool-analysis cost inline.
///  * asynchronous: process() admits the event into the bounded MPSC
///    queues of one or more dispatch *lanes* and returns; each lane's
///    thread drains its queue in batches and runs tool dispatch off the
///    application's critical path. An event is routed to the pinned lane
///    of every Serial subscriber, plus — when it has ShardByDevice or
///    Concurrent subscribers — the event's home lane (DeviceIndex modulo
///    lane count), so per-device ordering holds for sharded tools and
///    Serial tools keep today's exactly-one-thread contract.
///
///    Admission classes: resource events (allocations, frees, tensors,
///    streams) are never dropped or sampled by the lossy overflow
///    policies — they wait for space like Block — so every tool's
///    allocation view stays consistent under loss. Synchronization
///    events, TraceSink record deliveries and finish() are hard flush
///    barriers across all lanes; with the Block policy and Serial-
///    contract tools, async reports are byte-identical to synchronous
///    ones.
///
///    Preprocessing (range filtering, Python-stack context) runs at
///    admission on the producer's thread; each lane additionally keeps
///    its own CallStackBuilder fed in lane order, so callStacks() from
///    a tool hook resolves to a context consistent with that lane's
///    event stream. Context updates fan out only to lanes hosting tools
///    whose Subscription declares CapturesStacks — stack-indifferent
///    lanes never pay context-only deliveries.
///
///    Zero-copy fan-out: once routing determines an event reaches at
///    least one lane, its payloads (operator/layer names, Python
///    stacks, kernel/tensor descriptors) are interned into the
///    processor's EventArena on the producer's thread — up front when
///    the event fans out to several lanes (the copies must share), at
///    queue admission for single-lane routes (events discarded by a
///    lossy overflow policy never allocate). Per-lane Event copies
///    share refcounted immutable payloads instead of duplicating them,
///    so fan-out cost no longer scales with the subscriber count, and
///    unrouted events never touch the arena. The arena's occupancy and
///    hit counters surface through stats() and the event_pipeline
///    report (arena.* metrics).
///
///    Threading contract (asynchronous mode): any number of threads may
///    call process() concurrently, but annotation toggles and TraceSink
///    record deliveries are flush-then-proceed operations, not mutual
///    exclusion — they assume no *other* producer enqueues while they
///    run (true for the simulated runtimes, which deliver records from
///    the same thread that issued the launch). Synchronous mode runs
///    tool hooks on the producing thread, so — exactly as before the
///    lanes existed — concurrent producers and tool/route mutation
///    require external serialization there.
///
///    The tool set is sealed once the asynchronous pipeline starts:
///    addTool() / clearTools() after the first admitted event (or
///    record delivery) are rejected, because the dispatch lanes read
///    the routing tables without locks.
///
/// The GPU-resident collect-and-analyze model (paper Fig. 2b) is realized
/// by a host thread pool standing in for device analysis warps: tools
/// returning a DeviceAnalysis get their records reduced concurrently, for
/// real, while the *simulated* cost was already charged by the device's
/// cost model.
///
//===----------------------------------------------------------------------===//

#ifndef PASTA_PASTA_EVENTPROCESSOR_H
#define PASTA_PASTA_EVENTPROCESSOR_H

#include "pasta/CallStack.h"
#include "pasta/EventArena.h"
#include "pasta/EventQueue.h"
#include "pasta/Events.h"
#include "pasta/RangeFilter.h"
#include "pasta/Tool.h"
#include "sim/Trace.h"
#include "support/ThreadPool.h"

#include <array>
#include <atomic>
#include <cstdint>
#include <memory>
#include <mutex>
#include <optional>
#include <thread>
#include <vector>

namespace pasta {

class ReportSink;
class Validator;

/// Compile-time default for ProcessorOptions::Validate: the
/// -DPASTA_VALIDATE=ON build flips every processor to validating unless
/// a caller opts out explicitly.
constexpr bool validateDefault() {
#ifdef PASTA_VALIDATE_DEFAULT_ON
  return true;
#else
  return false;
#endif
}

/// Processor-side counters (tests assert on them). In asynchronous mode
/// the snapshot returned by stats() merges the per-lane counters; it is
/// only stable after flush() or a finished session.
struct ProcessorStats {
  /// Dispatch passes that delivered an event to at least one tool
  /// (summed across lanes in asynchronous mode; an event fanned out to
  /// two lanes counts one pass per lane).
  std::uint64_t EventsProcessed = 0;
  std::uint64_t EventsFiltered = 0;
  std::uint64_t RecordBatches = 0;
  std::uint64_t RecordsDelivered = 0;
  std::uint64_t DeviceAnalyzedRecords = 0;
  std::uint64_t HostAnalyzedRecords = 0;
  /// Async pipeline: events discarded by the DropNewest policy.
  std::uint64_t EventsDropped = 0;
  /// Async pipeline: events discarded by the Sample policy.
  std::uint64_t EventsSampledOut = 0;
  /// Async pipeline: high-water mark over every lane's queue.
  std::uint64_t MaxQueueDepth = 0;
  /// Hard flush barriers taken (Synchronization events, record
  /// deliveries, annotation toggles, finish).
  std::uint64_t FlushCount = 0;
  /// Dispatch lanes running (0 = synchronous inline dispatch).
  std::uint64_t DispatchLanes = 0;
  /// Async pipeline: enqueues that found a lane's ring full and spun
  /// for space (summed over lanes).
  std::uint64_t QueueSpins = 0;
  /// Async pipeline: enqueues whose spin window expired and parked on
  /// the queue's waiter (back-pressure actually blocking a producer).
  std::uint64_t QueueParks = 0;
  /// Event arena (async mode): distinct payloads resident — strings,
  /// stacks, kernel/tensor descriptors interned once and shared by
  /// every lane.
  std::uint64_t ArenaPayloads = 0;
  /// Event arena: approximate bytes those payloads occupy, once.
  std::uint64_t ArenaBytes = 0;
  /// Event arena: intern lookups that found an existing payload — each
  /// one an allocation (and its per-lane copies) avoided.
  std::uint64_t ArenaHits = 0;
  /// Event arena: subset of ArenaHits served by the thread-local memo
  /// with zero lock acquisitions.
  std::uint64_t ArenaMemoHits = 0;
  /// Event arena: shard lock acquisitions that found the lock held.
  std::uint64_t ArenaShardContention = 0;
  /// Event arena: payloads admitted past the MaxBytes guard rail as
  /// per-event pins (not deduplicated).
  std::uint64_t ArenaEvictedFallbacks = 0;
  /// Event arena: content-hash shards the intern tables split into.
  std::uint64_t ArenaShards = 0;
};

/// Per-lane counter snapshot (merged into ProcessorStats by stats()).
struct DispatchLaneStats {
  std::uint64_t EventsDispatched = 0;
  std::uint64_t Enqueued = 0;
  std::uint64_t Dropped = 0;
  std::uint64_t SampledOut = 0;
  std::uint64_t MaxQueueDepth = 0;
};

/// Dispatch-unit configuration.
struct ProcessorOptions {
  /// Device-analysis thread-pool width (0 = hardware concurrency).
  std::size_t AnalysisThreads = 0;
  /// Decouple event collection from tool analysis on dispatch lanes.
  bool AsyncEvents = false;
  /// Bounded per-lane queue capacity between producers and dispatch.
  std::size_t QueueDepth = 4096;
  /// What happens to standard-class events arriving while a lane's
  /// queue is full (resource events always wait for space).
  OverflowPolicy Overflow = OverflowPolicy::Block;
  /// The Sample policy's N: 1/N of overflowing events are admitted.
  std::uint64_t SampleEveryN = 8;
  /// Dispatch lanes when AsyncEvents is on (clamped to [1, 64]). Serial
  /// tools are pinned round-robin; ShardByDevice/Concurrent tools run on
  /// each event's home lane.
  std::size_t DispatchThreads = 1;
  /// Iterations a full-ring producer (or empty-ring lane consumer)
  /// spins before parking; 0 parks immediately — the default on
  /// single-core hosts (PASTA_QUEUE_SPINS).
  std::size_t QueueSpinIterations = defaultQueueSpinIterations();
  /// Content-hash shards for the payload arena's intern tables (0 =
  /// hardware-concurrency-derived default; PASTA_ARENA_SHARDS).
  std::size_t ArenaShards = 0;
  /// Thread-local intern memo in front of the arena shards
  /// (PASTA_ARENA_MEMO; disable to measure or to cap per-thread state).
  bool ArenaMemo = true;
  /// Resident arena payload byte cap, 0 = unlimited
  /// (PASTA_ARENA_MAX_BYTES); past it, new payloads are per-event pins.
  std::uint64_t ArenaMaxBytes = 0;
  /// Runtime contract validation (see pasta/Validate.h): Serial
  /// overlap/lane-affinity watchdogs, subscription-mask and -drift
  /// checks, arena payload canaries, flush-barrier assertions. Off by
  /// default (one null check per dispatch); PASTA_VALIDATE env and the
  /// -DPASTA_VALIDATE=ON build flip it.
  bool Validate = validateDefault();
};

/// Preprocessing + dispatch layer between the event handler and tools.
class EventProcessor : public sim::TraceSink {
public:
  /// \p DeviceAnalysisThreads sizes the host stand-in for the device
  /// analysis warps (0 = hardware concurrency).
  explicit EventProcessor(std::size_t DeviceAnalysisThreads = 0);
  explicit EventProcessor(const ProcessorOptions &Opts);
  ~EventProcessor() override;

  /// Adds a tool (not owned) and compiles its subscription into the
  /// routing tables. Returns false — after flushing, without mutating —
  /// when the pipeline already started with live dispatch lanes: the
  /// lanes read the tables without locks, so the tool set is sealed by
  /// the first admitted event.
  bool addTool(Tool *T);
  /// Removes every tool. Same sealing rule as addTool.
  bool clearTools();
  const std::vector<Tool *> &tools() const { return Tools; }
  /// The subscription \p T was attached with (as compiled into the
  /// routing tables); nullopt when \p T is not attached.
  std::optional<Subscription> subscriptionOf(const Tool *T) const;

  RangeFilter &rangeFilter() { return Filter; }
  /// The shared immutable payload arena events are interned into at
  /// admission (asynchronous mode). Exposed for tests and benches that
  /// assert on interning behavior.
  EventArena &arena() { return Arena; }
  /// The cross-layer stack context for the calling thread: dispatch-lane
  /// threads get their lane's builder (fed in lane order), every other
  /// thread the shared builder updated at admission.
  CallStackBuilder &callStacks();
  /// Counter snapshot, merged across the dispatch lanes. Safe to call
  /// concurrently with a running pipeline (each counter is read
  /// atomically), but only quiescent pipelines (after flush()/finish,
  /// or in synchronous mode) yield a mutually consistent snapshot.
  ProcessorStats stats() const;
  /// Per-lane snapshots (empty in synchronous mode).
  std::vector<DispatchLaneStats> laneStats() const;
  bool asyncEvents() const { return !Lanes.empty(); }
  std::size_t laneCount() const { return Lanes.size(); }
  /// The runtime contract validator, or null when validation is off
  /// (ProcessorOptions::Validate). Tests install collecting handlers
  /// and drive the payload ledger through this.
  Validator *validator() const { return Val.get(); }

  /// Admits one coarse event (called by the event handler). Synchronous
  /// mode preprocesses + dispatches inline; asynchronous mode routes the
  /// event to its subscribers' lanes and returns, except for
  /// Synchronization events which flush the pipeline before returning
  /// (hard barrier).
  void process(Event E);

  /// Blocks until every admitted event has been dispatched on every
  /// lane. No-op in synchronous mode (everything already was). Must not
  /// be called from a tool hook — a dispatch lane cannot wait on itself.
  void flush();

  /// Annotation toggles (pasta.start/stop). Flush first so the region
  /// boundary falls between the same events as in synchronous mode.
  void annotationStart();
  void annotationStop();

  /// Emits the dispatch-unit counters as an "event_pipeline" report
  /// section (does not close \p Sink). Multi-lane pipelines include a
  /// per-lane breakdown.
  void reportPipeline(ReportSink &Sink) const;

  //===--------------------------------------------------------------------===
  // sim::TraceSink — fine-grained device records
  //===--------------------------------------------------------------------===
  // Record batches reference transient device buffers and are analyzed
  // inline on the delivering thread; in async mode each delivery first
  // flushes every lane so records never observe tool state older than
  // the coarse events preceding them. Only tools whose subscription
  // declares the matching interest are invoked.
  void onKernelBegin(const sim::LaunchInfo &Info) override;
  void onAccessBatch(const sim::LaunchInfo &Info,
                     const sim::MemAccessRecord *Records,
                     std::size_t Count) override;
  void onInstrMix(const sim::LaunchInfo &Info,
                  const sim::InstrMix &Mix) override;
  void onKernelEnd(const sim::LaunchInfo &Info,
                   const sim::TraceTimeBreakdown &Breakdown) override;

private:
  /// One tool as compiled into the routing tables.
  struct ToolEntry {
    Tool *T = nullptr;
    Subscription Sub;
    /// Pinned lane for Serial contracts (0 in synchronous mode).
    std::size_t Lane = 0;
  };

  /// Per-kind routing: which entries to invoke, split by placement.
  struct KindRoute {
    /// Serial subscribers — invoked on their pinned lane.
    std::vector<std::uint32_t> Pinned;
    /// ShardByDevice/Concurrent subscribers — invoked on the event's
    /// home lane.
    std::vector<std::uint32_t> Floating;
    /// Bitmask of lanes with pinned subscribers (fan-out set).
    std::uint64_t PinnedLaneMask = 0;
  };

  /// One dispatch lane: bounded queue, draining thread, lane-local
  /// stack context and counters.
  struct Lane {
    std::unique_ptr<EventQueue> Queue;
    std::thread Thread;
    CallStackBuilder Stacks;
    std::atomic<std::uint64_t> Dispatched{0};
  };

  /// Marks the pipeline started (seals the tool set). The transition
  /// happens under AttachMutex, so an addTool racing with the very
  /// first admitted event either completes before it or is rejected —
  /// the lock-free routing tables are never mutated after any event
  /// has been admitted. Steady state costs one atomic load.
  void ensureStarted() {
    if (Started.load(std::memory_order_acquire))
      return;
    std::lock_guard<std::mutex> Lock(AttachMutex);
    Started.store(true, std::memory_order_release);
  }

  /// Bitmask of every dispatch lane (safe at the 64-lane maximum).
  std::uint64_t allLanesMask() const {
    return Lanes.size() >= 64 ? ~std::uint64_t(0)
                              : (std::uint64_t(1) << Lanes.size()) - 1;
  }

  /// Admission-side preprocessing on the producer's thread: range
  /// filtering and shared Python-stack context. False when filtered.
  bool admit(Event &E);

  /// Recompiles the per-kind routing tables and fine-grained interest
  /// lists from the attached tools' subscriptions.
  void rebuildRoutes();

  /// The lane an event's ShardByDevice/Concurrent subscribers run on.
  std::size_t homeLane(const Event &E) const {
    return Lanes.size() <= 1
               ? 0
               : static_cast<std::size_t>(E.DeviceIndex) % Lanes.size();
  }

  /// Dispatch-unit core: routes \p E to the hooks of every subscriber
  /// placed on \p LaneIndex. Returns true when any tool was invoked.
  bool dispatchOn(const Event &E, std::size_t LaneIndex);

  /// Calls the kind-specific hook, then the generic hook.
  static void invoke(Tool &T, const Event &E);

  /// Lane thread main: drains the lane's queue until close().
  void laneLoop(std::size_t LaneIndex);

  std::vector<Tool *> Tools;
  std::vector<ToolEntry> Entries;
  std::array<KindRoute, NumEventKinds> Routes;
  /// Lanes hosting stack-capturing tools (Subscription::CapturesStacks):
  /// the pinned lane of each capturing Serial tool, widened to every
  /// lane when a capturing ShardByDevice/Concurrent tool exists (any
  /// lane can be its home lane). Python-stack context updates fan out
  /// to exactly this set — other lanes' CallStackBuilders are never
  /// consulted by their tools, so feeding them would be pure overhead.
  std::uint64_t StackLaneMask = 0;
  /// Entry indices with fine-grained interests (record batches,
  /// instruction mixes, per-launch trace breakdowns).
  std::vector<std::uint32_t> RecordEntries;
  std::vector<std::uint32_t> MixEntries;
  std::vector<std::uint32_t> TraceEntries;

  RangeFilter Filter;
  /// Shared immutable payload arena; producers intern admitted events'
  /// payloads here so lane fan-out is zero-copy.
  EventArena Arena;
  /// Shared stack context: written at admission, read by synchronous
  /// dispatch and the record-delivery path.
  CallStackBuilder SharedStacks;
  ThreadPool AnalysisThreads;
  /// Core counters live as atomics: dispatch lanes increment them while
  /// producers may snapshot via stats() (e.g. a monitor polling drop
  /// counters mid-run).
  struct {
    std::atomic<std::uint64_t> EventsProcessed{0};
    std::atomic<std::uint64_t> EventsFiltered{0};
    std::atomic<std::uint64_t> RecordBatches{0};
    std::atomic<std::uint64_t> RecordsDelivered{0};
    std::atomic<std::uint64_t> DeviceAnalyzedRecords{0};
    std::atomic<std::uint64_t> HostAnalyzedRecords{0};
    std::atomic<std::uint64_t> FlushCount{0};
  } Core;
  std::vector<std::unique_ptr<Lane>> Lanes;
  /// Serializes tool-set mutation against the first admission (see
  /// ensureStarted); never taken on the steady-state event path.
  std::mutex AttachMutex;
  /// Runtime contract checks (null when ProcessorOptions::Validate is
  /// off — the entire validation plane then costs one null test per
  /// dispatch).
  std::unique_ptr<Validator> Val;
  /// Set by the first admitted event; seals the tool set in async mode.
  std::atomic<bool> Started{false};
  /// One-shot guard for the callStacks()-without-CapturesStacks
  /// diagnostic.
  std::atomic<bool> StaleStackWarned{false};
};

} // namespace pasta

#endif // PASTA_PASTA_EVENTPROCESSOR_H
