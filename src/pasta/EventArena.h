//===- pasta/EventArena.h - Shared immutable event payloads -----*- C++ -*-===//
//
// Part of the PASTA reproduction, under the MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The shared immutable payload arena behind the zero-copy lane fan-out.
///
/// Sharded dispatch (EventProcessor) routes one admitted event to several
/// dispatch lanes. Before the arena existed, every per-lane copy of an
/// Event deep-copied its string payloads (operator names, layer paths,
/// Python stacks), so fan-out cost scaled with the subscriber count —
/// exactly the overhead the paper's dispatch unit is supposed to keep off
/// the application. Two pieces remove that scaling:
///
///  * PayloadString / PayloadStack — value types wrapping a refcounted
///    handle to an immutable payload. Copying one (and therefore copying
///    an Event) bumps a reference count instead of duplicating bytes.
///    Assignment from a plain string allocates once, at creation.
///
///  * EventArena — an intern table that canonicalizes payloads *across*
///    events on the producer's thread: the thousandth "aten::conv2d"
///    resolves to the same allocation as the first, and kernel
///    descriptors borrowed from a producer's stack frame are pinned
///    into shared, content-deduplicated copies that outlive the
///    producing backend. Tensor descriptors are pinned (shared by the
///    fan-out) but not deduplicated — their identity is per-instance,
///    so a dedup table would grow with event volume.
///
/// Low-contention admission: the intern tables are split into N
/// content-hash-indexed *shards* (default derived from the hardware
/// concurrency; EventArenaOptions::Shards / PASTA_ARENA_SHARDS /
/// SessionBuilder::arenaShards override), each behind its own mutex, so
/// concurrent producers interning distinct payloads rarely touch the
/// same lock. intern(Event&) groups an event's payloads by shard and
/// takes each involved shard's lock exactly once. In front of the
/// shards sits a small *thread-local memo* (a direct-mapped last-N
/// cache keyed by content hash): the overwhelmingly common repeated
/// payload — the same op name or Python stack across a training step —
/// resolves to a refcount bump with zero lock acquisitions. Memo
/// entries always hold canonical (table-resident) handles, so identity
/// guarantees are unchanged.
///
/// Guard rail: EventArenaOptions::MaxBytes (PASTA_ARENA_MAX_BYTES /
/// SessionBuilder::arenaMaxBytes) caps resident payload bytes. Past the
/// cap, *new* payloads fall back to per-event owned pins — content
/// still correct and safely owned, just not deduplicated — a one-time
/// warning fires, and every fallback is counted (EvictedFallbacks),
/// making pathological workloads visible instead of unbounded.
///
/// Ownership model: interned payloads are immutable and refcounted. The
/// arena keeps one reference for the dedup table (payloads are resident
/// for the arena's lifetime — bounded by the number of *distinct*
/// payloads, not the event volume); events, queues, lanes and tools share
/// further references for free. A tool may keep any payload handle past
/// session teardown; the bytes stay alive until the last handle drops.
///
/// Thread safety: every EventArena method may be called concurrently
/// (producers intern at admission from any thread). PayloadString /
/// PayloadStack are as thread-safe as the shared_ptr they wrap: distinct
/// copies may be read/written concurrently, one instance must not be
/// mutated while read.
///
//===----------------------------------------------------------------------===//

#ifndef PASTA_PASTA_EVENTARENA_H
#define PASTA_PASTA_EVENTARENA_H

#include "dl/Tensor.h"
#include "sim/Kernel.h"

#include <atomic>
#include <cstdint>
#include <iosfwd>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

namespace pasta {

struct Event;
class Validator;

/// A shared immutable string payload. Behaves like a read-only
/// std::string (implicit conversion, comparisons, empty()/size()), but
/// copying is a reference-count bump — the backbone of the zero-copy
/// event fan-out. An empty value holds no allocation at all.
class PayloadString {
public:
  PayloadString() = default;
  PayloadString(const char *S) { assign(S ? std::string(S) : std::string()); }
  PayloadString(std::string S) { assign(std::move(S)); }
  PayloadString(const PayloadString &Other)
      : Handle(Other.Handle),
        HashCache(Other.HashCache.load(std::memory_order_relaxed)) {}
  PayloadString(PayloadString &&Other) noexcept
      : Handle(std::move(Other.Handle)),
        HashCache(Other.HashCache.load(std::memory_order_relaxed)) {}
  PayloadString &operator=(const PayloadString &Other) {
    Handle = Other.Handle;
    HashCache.store(Other.HashCache.load(std::memory_order_relaxed),
                    std::memory_order_relaxed);
    return *this;
  }
  PayloadString &operator=(PayloadString &&Other) noexcept {
    Handle = std::move(Other.Handle);
    HashCache.store(Other.HashCache.load(std::memory_order_relaxed),
                    std::memory_order_relaxed);
    return *this;
  }

  PayloadString &operator=(const char *S) {
    assign(S ? std::string(S) : std::string());
    return *this;
  }
  PayloadString &operator=(std::string S) {
    assign(std::move(S));
    return *this;
  }

  /// The payload text ("" when unset; never dangles).
  const std::string &str() const {
    return Handle ? *Handle : emptyString();
  }
  operator const std::string &() const { return str(); }
  const char *c_str() const { return str().c_str(); }
  bool empty() const { return !Handle || Handle->empty(); }
  std::size_t size() const { return Handle ? Handle->size() : 0; }

  friend bool operator==(const PayloadString &A, const PayloadString &B) {
    return A.Handle == B.Handle || A.str() == B.str();
  }
  friend bool operator!=(const PayloadString &A, const PayloadString &B) {
    return !(A == B);
  }
  friend bool operator==(const PayloadString &A, const char *B) {
    return A.str() == (B ? B : "");
  }
  friend bool operator==(const char *A, const PayloadString &B) {
    return B == A;
  }
  friend bool operator!=(const PayloadString &A, const char *B) {
    return !(A == B);
  }
  friend bool operator!=(const char *A, const PayloadString &B) {
    return !(B == A);
  }
  friend bool operator==(const PayloadString &A, const std::string &B) {
    return A.str() == B;
  }
  friend bool operator==(const std::string &A, const PayloadString &B) {
    return B == A;
  }
  friend bool operator!=(const PayloadString &A, const std::string &B) {
    return !(A == B);
  }
  friend bool operator!=(const std::string &A, const PayloadString &B) {
    return !(B == A);
  }
  friend bool operator<(const PayloadString &A, const PayloadString &B) {
    return A.str() < B.str();
  }

  /// The underlying refcounted handle (null when empty). Two values
  /// produced by the same arena compare equal on handle identity —
  /// benches and tests use this to prove fan-out shares storage.
  const std::shared_ptr<const std::string> &handle() const {
    return Handle;
  }
  /// Replaces the handle with \p H, which must reference *equal
  /// content* (the arena hands out canonical ones) — the cached content
  /// hash is deliberately kept.
  void adopt(std::shared_ptr<const std::string> H) {
    Handle = std::move(H);
  }
  /// True when both values share one allocation (not mere equality).
  bool sharesStorageWith(const PayloadString &Other) const {
    return Handle == Other.Handle;
  }

  /// The avalanched FNV-1a hash of the payload content, computed once
  /// per value and inherited by copies — so a handle reused across
  /// events (shared stack context, fan-out copies, canonical arena
  /// handles) is never rehashed on the admission path. Thread-safe: a
  /// racing pair of readers fills the cache with the identical value.
  std::uint64_t contentHash() const;

private:
  void assign(std::string S) {
    Handle = S.empty() ? nullptr
                       : std::make_shared<const std::string>(std::move(S));
    HashCache.store(0, std::memory_order_relaxed);
  }
  static const std::string &emptyString();

  std::shared_ptr<const std::string> Handle;
  /// 0 = not yet computed (the hash itself is never 0 in practice; a
  /// collision with 0 merely recomputes).
  mutable std::atomic<std::uint64_t> HashCache{0};
};

std::ostream &operator<<(std::ostream &Out, const PayloadString &S);

/// A shared immutable Python-stack payload (frames innermost-first).
/// Same refcounted-copy semantics as PayloadString; iterable like the
/// std::vector<std::string> it replaced.
class PayloadStack {
public:
  using FrameList = std::vector<std::string>;

  PayloadStack() = default;
  PayloadStack(FrameList Frames) { assign(std::move(Frames)); }
  PayloadStack(std::initializer_list<std::string> Frames)
      : PayloadStack(FrameList(Frames)) {}
  PayloadStack(const PayloadStack &Other)
      : Handle(Other.Handle),
        HashCache(Other.HashCache.load(std::memory_order_relaxed)) {}
  PayloadStack(PayloadStack &&Other) noexcept
      : Handle(std::move(Other.Handle)),
        HashCache(Other.HashCache.load(std::memory_order_relaxed)) {}
  PayloadStack &operator=(const PayloadStack &Other) {
    Handle = Other.Handle;
    HashCache.store(Other.HashCache.load(std::memory_order_relaxed),
                    std::memory_order_relaxed);
    return *this;
  }
  PayloadStack &operator=(PayloadStack &&Other) noexcept {
    Handle = std::move(Other.Handle);
    HashCache.store(Other.HashCache.load(std::memory_order_relaxed),
                    std::memory_order_relaxed);
    return *this;
  }
  PayloadStack &operator=(FrameList Frames) {
    assign(std::move(Frames));
    return *this;
  }
  PayloadStack &operator=(std::initializer_list<std::string> Frames) {
    assign(FrameList(Frames));
    return *this;
  }

  /// The frames ([] when unset; never dangles).
  const FrameList &frames() const {
    return Handle ? *Handle : emptyFrames();
  }
  operator const FrameList &() const { return frames(); }
  bool empty() const { return !Handle || Handle->empty(); }
  std::size_t size() const { return Handle ? Handle->size() : 0; }
  FrameList::const_iterator begin() const { return frames().begin(); }
  FrameList::const_iterator end() const { return frames().end(); }
  const std::string &operator[](std::size_t I) const {
    return frames()[I];
  }

  friend bool operator==(const PayloadStack &A, const PayloadStack &B) {
    return A.Handle == B.Handle || A.frames() == B.frames();
  }
  friend bool operator!=(const PayloadStack &A, const PayloadStack &B) {
    return !(A == B);
  }

  const std::shared_ptr<const FrameList> &handle() const { return Handle; }
  /// \p H must reference equal content (see PayloadString::adopt).
  void adopt(std::shared_ptr<const FrameList> H) { Handle = std::move(H); }
  bool sharesStorageWith(const PayloadStack &Other) const {
    return Handle == Other.Handle;
  }

  /// Cached avalanched content hash (see PayloadString::contentHash).
  std::uint64_t contentHash() const;

private:
  void assign(FrameList Frames) {
    Handle = Frames.empty()
                 ? nullptr
                 : std::make_shared<const FrameList>(std::move(Frames));
    HashCache.store(0, std::memory_order_relaxed);
  }
  static const FrameList &emptyFrames();

  std::shared_ptr<const FrameList> Handle;
  mutable std::atomic<std::uint64_t> HashCache{0};
};

/// Arena occupancy and effectiveness counters (snapshot via
/// EventArena::stats(); surfaced through ProcessorStats and the
/// event_pipeline report as arena.* metrics).
struct EventArenaStats {
  /// Distinct payloads resident, by kind. Tensor descriptors are
  /// deliberately absent: they are per-instance (id/address identity),
  /// so the arena pins them per event instead of interning them.
  std::uint64_t Strings = 0;
  std::uint64_t Stacks = 0;
  std::uint64_t Kernels = 0;
  /// Approximate bytes those payloads occupy — once, shared by every
  /// event, lane and tool that references them.
  std::uint64_t Bytes = 0;
  /// Intern lookups resolved to an existing payload (memo hits
  /// included); each hit is an allocation (and for fan-out, N-1
  /// per-lane copies) avoided.
  std::uint64_t Hits = 0;
  /// Intern lookups that created a new resident payload.
  std::uint64_t Misses = 0;
  /// Subset of Hits served by the thread-local memo — resolved with
  /// zero lock acquisitions.
  std::uint64_t MemoHits = 0;
  /// Shard lock acquisitions that found the lock held (try_lock
  /// failed): the direct measure of admission-side arena contention.
  std::uint64_t ShardContention = 0;
  /// Payloads admitted past the MaxBytes guard rail as per-event owned
  /// pins instead of residents (0 when no cap is set or it never hit).
  std::uint64_t EvictedFallbacks = 0;
  /// Content-hash shards the tables are split into (config echo).
  std::uint64_t Shards = 0;

  std::uint64_t payloads() const { return Strings + Stacks + Kernels; }
};

/// Admission-path configuration for EventArena.
struct EventArenaOptions {
  /// Content-hash shards for the intern tables: 0 derives a default
  /// from std::thread::hardware_concurrency (capped at 16, power of
  /// two); explicit values are clamped to [1, 64].
  std::size_t Shards = 0;
  /// Enables the thread-local intern memo in front of the shards.
  bool InternMemo = true;
  /// Resident-payload byte cap (0 = unlimited). Past it, new payloads
  /// fall back to per-event owned pins and are counted.
  std::uint64_t MaxBytes = 0;
};

/// Content-deduplicating intern table for event payloads. One arena per
/// EventProcessor; producers intern at admission, so by the time an
/// event fans out to its subscriber lanes every payload is a canonical
/// shared handle and the per-lane Event copies cost refcount bumps only.
///
/// Payloads are resident until the arena dies (no eviction): occupancy
/// is bounded by the distinct operator names, layer paths, stacks and
/// kernel/tensor descriptors of the workload — profiling metadata, not
/// event volume.
class EventArena {
public:
  EventArena();
  explicit EventArena(const EventArenaOptions &Opts);
  ~EventArena();
  EventArena(const EventArena &) = delete;
  EventArena &operator=(const EventArena &) = delete;

  /// The shard count an EventArenaOptions::Shards of 0 resolves to.
  static std::size_t defaultShardCount();
  std::size_t shardCount() const { return Shards.size(); }

  /// Canonicalizes every payload of \p E in place: OpName/LayerName/
  /// PythonStack become arena handles, the borrowed Kernel pointee is
  /// pinned into a shared deduplicated copy, and the borrowed Tensor
  /// pointee is pinned into a per-event owned copy (superseding
  /// Event::retainPointees on the pipeline path). Payloads already in
  /// the calling thread's memo resolve without any lock; the rest are
  /// grouped by shard so each involved shard's lock is taken exactly
  /// once per event.
  void intern(Event &E);

  /// Returns the canonical handle for \p S's content, registering it on
  /// first sight (reuses \p S's existing allocation — no copy).
  PayloadString internString(const PayloadString &S);
  /// Stack-payload equivalent of internString.
  PayloadStack internStack(const PayloadStack &S);
  /// Returns the canonical shared descriptor equal to \p K, copying it
  /// into the arena on first sight.
  std::shared_ptr<const sim::KernelDesc>
  internKernel(const sim::KernelDesc &K);
  /// Pins \p T into a shared owned copy *without* interning: tensor
  /// descriptors carry per-instance identity (id, allocator address),
  /// so a dedup table would grow with event volume, not metadata. The
  /// copy is shared by every lane and dies with the last event handle.
  static std::shared_ptr<const dl::TensorInfo>
  pinTensor(const dl::TensorInfo &T);

  EventArenaStats stats() const;

  /// Wires the PASTA_VALIDATE payload ledger: every payload made
  /// resident is registered with \p V (canary-tracked; see
  /// pasta/Validate.h). Null detaches. The processor calls this once at
  /// construction, before any interning.
  void setValidator(Validator *V) { Val = V; }

private:
  struct Shard;

  Shard &shardFor(std::uint64_t Hash) const {
    return *Shards[static_cast<std::size_t>(Hash % Shards.size())];
  }
  /// Locks \p S, counting the acquisition as contended when the lock
  /// was already held.
  std::unique_lock<std::mutex> lockShard(Shard &S);
  /// True when \p AddedBytes more resident bytes would pass MaxBytes —
  /// the caller then falls back to a per-event pin. Fires the one-time
  /// warning and counts the fallback.
  bool pastByteCap(std::uint64_t AddedBytes);

  /// The locked helpers set \p Resident to false when the byte cap
  /// forced a per-event fallback pin — such handles are NOT canonical
  /// and must never enter the thread-local memo (a memoized fallback
  /// would masquerade as dedup and hide further fallbacks from the
  /// guard-rail accounting).
  PayloadString internStringLocked(Shard &S, std::uint64_t Hash,
                                   const PayloadString &Str,
                                   bool &Resident);
  PayloadStack internStackLocked(Shard &S, std::uint64_t Hash,
                                 const PayloadStack &Stack,
                                 bool &Resident);
  std::shared_ptr<const sim::KernelDesc>
  internKernelLocked(Shard &S, std::uint64_t Hash,
                     const sim::KernelDesc &K, bool &Resident);

  const EventArenaOptions Opts;
  /// Process-unique id tagging this arena's thread-local memo entries
  /// (a recycled heap address must not revive a dead arena's memo).
  const std::uint64_t Id;
  std::vector<std::unique_ptr<Shard>> Shards;
  /// Resident payload bytes across all shards (guard-rail accounting).
  std::atomic<std::uint64_t> TotalBytes{0};
  std::atomic<std::uint64_t> MemoHits{0};
  std::atomic<std::uint64_t> Contention{0};
  std::atomic<std::uint64_t> Fallbacks{0};
  std::atomic<bool> CapWarned{false};
  /// PASTA_VALIDATE payload ledger (null when validation is off).
  /// Written once before any interning; read under the shard lock on
  /// miss paths only, so the hot (hit/memo) path never touches it.
  Validator *Val = nullptr;
};

} // namespace pasta

#endif // PASTA_PASTA_EVENTARENA_H
