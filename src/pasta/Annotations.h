//===- pasta/Annotations.h - Listing-1-style region API ---------*- C++ -*-===//
//
// Part of the PASTA reproduction, under the MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The user-facing annotation API of the paper's Listing 1. In the real
/// system `import pasta; pasta.start(); ...; pasta.stop()` is exported
/// through pybind11; here the same minimal, non-intrusive surface is a
/// pair of calls on the Profiler plus an RAII guard:
///
/// \code
///   {
///     pasta::ScopedRegion Region(Prof); // pasta.start()
///     model.transformer_layer();        // targeted region
///   }                                   // pasta.stop()
/// \endcode
///
/// Once any region is opened, analysis outside regions is suppressed
/// (kernel-scoped events and device records are dropped by the range
/// filter), enabling layer-wise or forward/backward-scoped analysis with
/// no logging infrastructure or execution-context changes.
///
//===----------------------------------------------------------------------===//

#ifndef PASTA_PASTA_ANNOTATIONS_H
#define PASTA_PASTA_ANNOTATIONS_H

#include "pasta/Profiler.h"
#include "pasta/Session.h"

namespace pasta {

/// RAII pasta.start()/pasta.stop() pair; nestable.
class ScopedRegion {
public:
  explicit ScopedRegion(Profiler &Prof) : Prof(Prof) { Prof.start(); }
  explicit ScopedRegion(Session &S) : Prof(S.profiler()) { Prof.start(); }
  ~ScopedRegion() { Prof.stop(); }

  ScopedRegion(const ScopedRegion &) = delete;
  ScopedRegion &operator=(const ScopedRegion &) = delete;

private:
  Profiler &Prof;
};

} // namespace pasta

#endif // PASTA_PASTA_ANNOTATIONS_H
