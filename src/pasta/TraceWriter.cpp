//===- pasta/TraceWriter.cpp ----------------------------------------------===//
//
// Part of the PASTA reproduction, under the MIT license.
//
//===----------------------------------------------------------------------===//

#include "pasta/TraceWriter.h"

#include "pasta/Events.h"
#include "pasta/TraceFormat.h"

#include <cerrno>
#include <cstring>

using namespace pasta;
using namespace pasta::trace;

namespace {

/// Serialized KernelDesc body (without the table id) — doubles as the
/// dedup key, so two descriptors are one table entry iff every encoded
/// field matches.
void encodeKernelBody(std::string &Out, const sim::KernelDesc &K) {
  appendString(Out, K.Name);
  appendU32(Out, K.Grid.X);
  appendU32(Out, K.Grid.Y);
  appendU32(Out, K.Grid.Z);
  appendU32(Out, K.Block.X);
  appendU32(Out, K.Block.Y);
  appendU32(Out, K.Block.Z);
  appendF64(Out, K.Flops);
  appendF64(Out, K.ComputeInstrsPerAccess);
  appendU64(Out, K.StaticInstrs);
  appendU32(Out, K.BarriersPerBlock);
  appendU64(Out, K.SharedMemPerBlock);
  appendU32(Out, static_cast<std::uint32_t>(K.Segments.size()));
  for (const sim::AccessSegment &Seg : K.Segments) {
    appendU64(Out, Seg.Base);
    appendU64(Out, Seg.Extent);
    appendU64(Out, Seg.AccessBytes);
    appendU8(Out, static_cast<std::uint8_t>(Seg.Kind));
    appendU8(Out, static_cast<std::uint8_t>(Seg.Space));
  }
}

/// Serialized stack frames (without the table id) — also the dedup key.
void encodeStackBody(std::string &Out, const PayloadStack &Stack) {
  const PayloadStack::FrameList &Frames = Stack.frames();
  appendU32(Out, static_cast<std::uint32_t>(Frames.size()));
  for (const std::string &Frame : Frames)
    appendString(Out, Frame);
}

} // namespace

TraceWriter::~TraceWriter() {
  if (Out) {
    std::fclose(Out);
    Out = nullptr;
  }
}

bool TraceWriter::open(const std::string &Path, SessionError &Err) {
  if (isOpen()) {
    Err.assign("trace writer already open on '" + FilePath + "'");
    return false;
  }
  Out = std::fopen(Path.c_str(), "wb");
  if (!Out) {
    Err.assign("cannot open trace file '" + Path +
               "' for writing: " + std::strerror(errno));
    return false;
  }
  FilePath = Path;
  WriteFailed = false;
  std::string Header;
  Header.append(Magic, sizeof(Magic));
  appendU32(Header, Version);
  appendU32(Header, HeaderFlags);
  writeBytes(Header.data(), Header.size());
  if (WriteFailed) {
    Err.assign("cannot write trace header to '" + Path + "'");
    return false;
  }
  return true;
}

bool TraceWriter::openSink(TraceOutput &Dest, std::uint32_t Flags,
                           SessionError &Err) {
  if (isOpen()) {
    Err.assign("trace writer already open on '" + FilePath + "'");
    return false;
  }
  Sink = &Dest;
  FilePath = Dest.describe();
  WriteFailed = false;
  std::string Header;
  Header.append(Magic, sizeof(Magic));
  appendU32(Header, Version);
  appendU32(Header, Flags);
  writeBytes(Header.data(), Header.size());
  if (WriteFailed) {
    Err.assign("cannot write trace header to '" + FilePath + "'");
    Sink = nullptr;
    return false;
  }
  return true;
}

void TraceWriter::writeBytes(const char *Data, std::size_t Size) {
  if ((!Out && !Sink) || WriteFailed)
    return;
  bool Ok = Out ? std::fwrite(Data, 1, Size, Out) == Size
                : Sink->write(Data, Size);
  if (!Ok) {
    WriteFailed = true;
    return;
  }
  Stats.BytesWritten += Size;
}

void TraceWriter::writeRecord(std::uint8_t Tag, const std::string &Body) {
  std::string Prefix;
  appendU8(Prefix, Tag);
  appendU32(Prefix, static_cast<std::uint32_t>(Body.size()));
  writeBytes(Prefix.data(), Prefix.size());
  writeBytes(Body.data(), Body.size());
}

std::uint32_t TraceWriter::stringId(const std::string &Content) {
  if (Content.empty())
    return 0;
  ++Stats.PayloadRefs;
  auto It = StringIds.find(Content);
  if (It != StringIds.end()) {
    ++Stats.PayloadHits;
    return It->second;
  }
  std::uint32_t Id = static_cast<std::uint32_t>(StringIds.size() + 1);
  StringIds.emplace(Content, Id);
  ++Stats.Strings;
  std::string Body;
  appendU32(Body, Id);
  Body.append(Content);
  writeRecord(static_cast<std::uint8_t>(RecordTag::StringDef), Body);
  return Id;
}

std::uint32_t TraceWriter::stackId(const Event &E) {
  if (E.PythonStack.empty())
    return 0;
  ++Stats.PayloadRefs;
  std::string Key;
  encodeStackBody(Key, E.PythonStack);
  auto It = StackIds.find(Key);
  if (It != StackIds.end()) {
    ++Stats.PayloadHits;
    return It->second;
  }
  std::uint32_t Id = static_cast<std::uint32_t>(StackIds.size() + 1);
  StackIds.emplace(Key, Id);
  ++Stats.Stacks;
  std::string Body;
  appendU32(Body, Id);
  Body.append(Key);
  writeRecord(static_cast<std::uint8_t>(RecordTag::StackDef), Body);
  return Id;
}

std::uint32_t TraceWriter::kernelId(const Event &E) {
  if (!E.Kernel)
    return 0;
  ++Stats.PayloadRefs;
  std::string Key;
  encodeKernelBody(Key, *E.Kernel);
  auto It = KernelIds.find(Key);
  if (It != KernelIds.end()) {
    ++Stats.PayloadHits;
    return It->second;
  }
  std::uint32_t Id = static_cast<std::uint32_t>(KernelIds.size() + 1);
  KernelIds.emplace(Key, Id);
  ++Stats.Kernels;
  std::string Body;
  appendU32(Body, Id);
  Body.append(Key);
  writeRecord(static_cast<std::uint8_t>(RecordTag::KernelDef), Body);
  return Id;
}

void TraceWriter::append(const Event &E) {
  if ((!Out && !Sink) || WriteFailed)
    return;
  // Definitions must precede the first referencing event record.
  std::uint32_t KernelRef = kernelId(E);
  std::uint32_t OpNameRef = stringId(E.OpName.str());
  std::uint32_t LayerNameRef = stringId(E.LayerName.str());
  std::uint32_t StackRef = stackId(E);

  Scratch.clear();
  std::string &Body = Scratch;
  appendU8(Body, static_cast<std::uint8_t>(E.Kind));
  appendU8(Body, static_cast<std::uint8_t>(E.Vendor));
  appendI32(Body, E.DeviceIndex);
  appendU32(Body, E.Stream);
  appendU64(Body, E.Timestamp);
  appendU64(Body, E.Address);
  appendU64(Body, E.Bytes);
  appendU8(Body, E.Managed ? 1 : 0);
  appendU8(Body, static_cast<std::uint8_t>(E.Direction));
  appendU64(Body, E.GridId);
  appendU32(Body, KernelRef);
  appendU64(Body, E.PoolAllocated);
  appendU64(Body, E.PoolReserved);
  appendU32(Body, OpNameRef);
  appendU32(Body, LayerNameRef);
  appendU8(Body, static_cast<std::uint8_t>(E.Phase));
  appendU32(Body, StackRef);
  if (E.Tensor) {
    appendU8(Body, 1);
    const dl::TensorInfo &T = *E.Tensor;
    appendU64(Body, T.Id);
    appendString(Body, T.Name);
    const std::vector<std::int64_t> &Dims = T.Shape.dims();
    appendU32(Body, static_cast<std::uint32_t>(Dims.size()));
    for (std::int64_t Dim : Dims)
      appendI64(Body, Dim);
    appendU8(Body, static_cast<std::uint8_t>(T.Type));
    appendU8(Body, static_cast<std::uint8_t>(T.Role));
    appendU64(Body, T.Address);
    appendI32(Body, T.DeviceIndex);
  } else {
    appendU8(Body, 0);
  }
  writeRecord(static_cast<std::uint8_t>(RecordTag::EventRecord), Body);
  ++Stats.Events;
}

bool TraceWriter::finalize(SessionError &Err) {
  if (!Out && !Sink)
    return !WriteFailed;
  std::string Body;
  appendU64(Body, Stats.Events);
  appendU32(Body, static_cast<std::uint32_t>(Stats.Strings));
  appendU32(Body, static_cast<std::uint32_t>(Stats.Stacks));
  appendU32(Body, static_cast<std::uint32_t>(Stats.Kernels));
  writeRecord(static_cast<std::uint8_t>(RecordTag::End), Body);
  bool CloseOk = true;
  if (Out) {
    CloseOk = std::fclose(Out) == 0;
    Out = nullptr;
  }
  Sink = nullptr;
  if (WriteFailed || !CloseOk) {
    WriteFailed = true;
    Err.assign("failed writing trace to '" + FilePath +
               "' (disk full or I/O error)");
    return false;
  }
  return true;
}
