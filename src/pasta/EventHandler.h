//===- pasta/EventHandler.h - Vendor/framework attachment -------*- C++ -*-===//
//
// Part of the PASTA reproduction, under the MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The PASTA event handler (paper §III-B): subscribes to the low-level
/// vendor profiling interfaces (Compute Sanitizer callbacks, NVBit events,
/// ROCprofiler records) and the high-level DL framework callbacks, and
/// normalizes every source into the unified Event model before handing it
/// to the event processor. All vendor quirks die here: AMD's negative
/// deallocation deltas become positive MemoryFree sizes, microsecond
/// ticks become nanoseconds, "dispatches" become kernel launches.
///
/// With the asynchronous pipeline enabled, the threads running these
/// callbacks are the producer side of the processor's bounded event
/// queue: EventProcessor::process() returns after admission, and the
/// dispatch thread pays the tool-analysis cost instead of the caller.
///
//===----------------------------------------------------------------------===//

#ifndef PASTA_PASTA_EVENTHANDLER_H
#define PASTA_PASTA_EVENTHANDLER_H

#include "cuda/CudaRuntime.h"
#include "dl/Callbacks.h"
#include "hip/HipRuntime.h"
#include "pasta/EventProcessor.h"

#include <cstdint>
#include <vector>

namespace pasta {

/// Which profiling library provides fine-grained device tracing — the
/// backend choice of paper §III-D (Sanitizer vs NVBit) and Fig. 8/9.
enum class TraceBackend {
  /// No device-side instrumentation; host callbacks only.
  None,
  /// Sanitizer patching + PASTA's GPU-resident analysis (CS-GPU).
  SanitizerGpu,
  /// Sanitizer patching + conventional host-side analysis (CS-CPU).
  SanitizerCpu,
  /// NVBit full-SASS instrumentation + host-side analysis (NVBIT-CPU).
  NvbitCpu,
};

const char *traceBackendName(TraceBackend Backend);

/// Fine-grained tracing configuration.
struct TraceOptions {
  TraceBackend Backend = TraceBackend::None;
  std::uint64_t DeviceBufferRecords = 1u << 20;
  /// ACCEL_PROF_ENV_SAMPLE_RATE analogue.
  double SampleRate = 1.0;
  std::uint64_t RecordGranularityBytes = 4096;
};

/// Subscribes to vendor + framework hooks and normalizes into Events.
///
/// Lifetime: attached runtimes must outlive this handler, or detach()
/// must be called while they are still alive (Profiler::finish() does).
class EventHandler {
public:
  explicit EventHandler(EventProcessor &Processor);
  ~EventHandler();

  EventHandler(const EventHandler &) = delete;
  EventHandler &operator=(const EventHandler &) = delete;

  /// Attaches to an NVIDIA runtime: Sanitizer host callbacks on all
  /// domains, plus device tracing per \p Opts on \p DeviceIndex.
  void attachCuda(cuda::CudaRuntime &Runtime, int DeviceIndex,
                  const TraceOptions &Opts = TraceOptions());

  /// Attaches to an AMD runtime via ROCprofiler. NVBit backends are
  /// rejected (NVIDIA-only, as in reality).
  void attachHip(hip::HipRuntime &Runtime, int AgentIndex,
                 const TraceOptions &Opts = TraceOptions());

  /// Attaches to a DL framework session (reportMemoryUsage +
  /// RecordFunction callbacks).
  void attachDl(dl::CallbackRegistry &Callbacks);

  /// Detaches device tracing from every attached runtime.
  void detach();

private:
  void handleSanitizer(const cuda::SanitizerCallbackData &Data);
  void handleRocprofiler(int RuntimeSlot,
                         const hip::RocprofilerRecord &Record);

  EventProcessor &Processor;
  struct CudaAttachment {
    cuda::CudaRuntime *Runtime = nullptr;
    int DeviceIndex = 0;
    cuda::SanitizerSubscriber Subscriber = 0;
    TraceBackend Backend = TraceBackend::None;
  };
  struct HipAttachment {
    hip::HipRuntime *Runtime = nullptr;
    int AgentIndex = 0;
    TraceBackend Backend = TraceBackend::None;
  };
  std::vector<CudaAttachment> CudaAttachments;
  std::vector<HipAttachment> HipAttachments;
};

} // namespace pasta

#endif // PASTA_PASTA_EVENTHANDLER_H
