//===- pasta/RangeFilter.h - Range-specific analysis ------------*- C++ -*-===//
//
// Part of the PASTA reproduction, under the MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Range-specific analysis (paper §III-F1): users either set the
/// START_GRID_ID / END_GRID_ID environment variables to select a window
/// of kernel launches, or bracket code regions with pasta.start() /
/// pasta.stop() annotations. The event processor consults this filter
/// before dispatching kernel-scoped events and trace records.
///
//===----------------------------------------------------------------------===//

#ifndef PASTA_PASTA_RANGEFILTER_H
#define PASTA_PASTA_RANGEFILTER_H

#include "support/Env.h"

#include <cstdint>
#include <limits>

namespace pasta {

/// Combines grid-id windows with annotation-driven regions.
class RangeFilter {
public:
  RangeFilter() { reloadFromEnv(); }

  /// Re-reads START_GRID_ID / END_GRID_ID (tests poke env overrides).
  void reloadFromEnv() {
    // A negative start would wrap to a huge unsigned id and silently
    // filter every kernel; clamp to "from the beginning" instead.
    std::int64_t Start = getEnvInt("START_GRID_ID", 0);
    StartGridId = Start < 0 ? 0 : static_cast<std::uint64_t>(Start);
    std::int64_t End = getEnvInt("END_GRID_ID", -1);
    EndGridId = End < 0 ? std::numeric_limits<std::uint64_t>::max()
                        : static_cast<std::uint64_t>(End);
  }

  /// pasta.start(): opens an annotated region (nestable).
  void annotationStart() {
    AnnotationsUsed = true;
    ++AnnotationDepth;
  }
  /// pasta.stop().
  void annotationStop() {
    if (AnnotationDepth > 0)
      --AnnotationDepth;
  }

  /// True when annotations gate analysis and we are inside a region, or
  /// when no annotation was ever used (whole-program analysis).
  bool regionActive() const {
    return !AnnotationsUsed || AnnotationDepth > 0;
  }

  bool gridInRange(std::uint64_t GridId) const {
    return GridId >= StartGridId && GridId <= EndGridId;
  }

  /// Full gate for kernel-scoped events.
  bool kernelActive(std::uint64_t GridId) const {
    return regionActive() && gridInRange(GridId);
  }

  std::uint64_t startGridId() const { return StartGridId; }
  std::uint64_t endGridId() const { return EndGridId; }

private:
  std::uint64_t StartGridId = 0;
  std::uint64_t EndGridId = std::numeric_limits<std::uint64_t>::max();
  bool AnnotationsUsed = false;
  int AnnotationDepth = 0;
};

} // namespace pasta

#endif // PASTA_PASTA_RANGEFILTER_H
