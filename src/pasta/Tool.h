//===- pasta/Tool.h - Analysis tool template --------------------*- C++ -*-===//
//
// Part of the PASTA reproduction, under the MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The PASTA tool collection template (paper §III-B). Custom analyses
/// derive from Tool and override only the hooks they need — the paper's
/// "create custom analyses by simply overriding functions in the tool
/// collection template". Tools that want GPU-resident analysis (Fig. 2b)
/// return a DeviceAnalysis; its processRecords runs concurrently on the
/// processor's device-analysis threads and must be thread-safe.
///
//===----------------------------------------------------------------------===//

#ifndef PASTA_PASTA_TOOL_H
#define PASTA_PASTA_TOOL_H

#include "pasta/Capabilities.h"
#include "pasta/Events.h"
#include "pasta/SessionError.h"
#include "sim/Trace.h"

#include <cstdint>
#include <cstdio>
#include <functional>
#include <map>
#include <memory>
#include <string>
#include <vector>

namespace pasta {

class EventProcessor;
class ReportSink;

/// Concurrency contract a tool declares for its coarse-event hooks. The
/// dispatch unit uses it to decide which dispatch lane(s) may invoke the
/// tool, turning the "is this tool thread-safe?" audit into an
/// attach-time property instead of a code-review question.
enum class ExecutionModel : std::uint8_t {
  /// All hooks run on one pinned dispatch lane (today's contract; the
  /// safe default for tools with unsynchronized state).
  Serial,
  /// Hooks for different devices may run concurrently on different
  /// lanes; events for one device are always delivered in order on one
  /// lane. The tool must only share state across devices under a lock.
  ShardByDevice,
  /// The tool is internally synchronized; any lane may invoke any hook
  /// at any time.
  Concurrent,
};

/// Stable lower-case name ("serial", "shard-by-device", "concurrent").
const char *executionModelName(ExecutionModel Model);

/// Value-type bitmask over EventKind — the "which discrete events do I
/// consume" half of a Subscription.
class EventKindMask {
public:
  constexpr EventKindMask() = default;
  constexpr EventKindMask(std::initializer_list<EventKind> Kinds) {
    for (EventKind Kind : Kinds)
      Bits |= bit(Kind);
  }

  static constexpr EventKindMask all() {
    EventKindMask Mask;
    Mask.Bits = (std::uint64_t(1) << NumEventKinds) - 1;
    return Mask;
  }
  static constexpr EventKindMask none() { return EventKindMask(); }

  constexpr bool has(EventKind Kind) const {
    return (Bits & bit(Kind)) != 0;
  }
  constexpr bool empty() const { return Bits == 0; }

  constexpr EventKindMask &operator|=(EventKindMask Other) {
    Bits |= Other.Bits;
    return *this;
  }
  friend constexpr EventKindMask operator|(EventKindMask A,
                                           EventKindMask B) {
    return A |= B;
  }
  friend constexpr bool operator==(EventKindMask A, EventKindMask B) {
    return A.Bits == B.Bits;
  }
  friend constexpr bool operator!=(EventKindMask A, EventKindMask B) {
    return A.Bits != B.Bits;
  }

  /// "KernelLaunch|MemoryAlloc" style rendering; "all" / "none" for the
  /// two extremes.
  std::string str() const;

private:
  static constexpr std::uint64_t bit(EventKind Kind) {
    return std::uint64_t(1) << static_cast<unsigned>(Kind);
  }
  std::uint64_t Bits = 0;
};

/// What a tool declares it consumes, and under which concurrency
/// contract — the attach-time replacement for "every tool virtually
/// receives every event". The dispatch unit builds its per-kind routing
/// tables from these, so non-subscribers never pay a virtual call (the
/// generic onEvent hook included), and capability negotiation derives
/// requirements() from the same declaration.
struct Subscription {
  /// Discrete event kinds delivered to the kind-specific hooks and the
  /// generic onEvent hook.
  EventKindMask Kinds;
  /// Fine-grained record batches (onAccessBatch / deviceAnalysis()).
  bool AccessRecords = false;
  /// Dynamic instruction mixes (onInstrMix).
  bool InstrMix = false;
  /// Per-launch instrumentation breakdowns (onKernelTraceEnd).
  bool KernelTrace = false;
  /// Unified-memory counters.
  bool UvmCounters = false;
  /// The tool captures cross-layer call stacks — it calls
  /// EventProcessor::callStacks() from a hook (or from onFinish). The
  /// dispatch unit routes Python-stack context updates only to the lanes
  /// hosting declaring tools, so lanes full of stack-indifferent tools
  /// never see context-only fan-out. A tool that captures without
  /// declaring this observes a stale (empty) context on its lane.
  bool CapturesStacks = false;
  /// Concurrency contract for the coarse-event hooks above.
  ExecutionModel Model = ExecutionModel::Serial;

  /// The capability set this subscription negotiates for. CoarseEvents
  /// is always included (every backend has the cheap callbacks, and the
  /// legacy probe always requested it), so declared subscriptions
  /// negotiate the exact same instrumentation as the probe did.
  CapabilitySet requiredCapabilities() const;
};

/// Thread-safe reducer for fine-grained device records (the tool-supplied
/// __device__ helper of the paper's GPU-resident model).
class DeviceAnalysis {
public:
  virtual ~DeviceAnalysis();

  /// Reduces one chunk of records in-situ. Called concurrently from the
  /// device-analysis thread pool.
  virtual void processRecords(const sim::LaunchInfo &Info,
                              const sim::MemAccessRecord *Records,
                              std::size_t Count) = 0;
};

/// Base class for all PASTA tools.
class Tool {
public:
  virtual ~Tool();

  virtual std::string name() const = 0;

  /// Declares what this tool consumes and under which concurrency
  /// contract. The dispatch unit routes only the declared event kinds to
  /// the tool (kind hook and generic onEvent hook alike) and uses the
  /// ExecutionModel to place the tool on its dispatch lanes.
  ///
  /// The default is the migration path for override-only tools: it
  /// subscribes to every discrete kind under the Serial contract, keeps
  /// per-launch trace breakdowns on, and derives the fine-grained
  /// interests from which hooks are overridden (the empty-payload probe
  /// that used to live in requirements()). Tools should override this
  /// with an exact declaration — it is both cheaper (no fan-out of
  /// events nobody wants) and the only way to opt into a concurrent
  /// contract.
  virtual Subscription subscription();

  /// Event classes this tool consumes; sessions enable only the matching
  /// backend instrumentation (capability negotiation). Now a derived
  /// default: subscription().requiredCapabilities(), plus AccessRecords
  /// when deviceAnalysis() is non-null. Override only when the
  /// negotiated set must differ from the declared subscription.
  virtual CapabilitySet requirements();

  /// The pre-subscription probe: derives requirements from which
  /// fine-grained hooks are overridden, exactly as the old default
  /// requirements() did. Kept public so tests can assert a declared
  /// subscription negotiates the same capabilities the probe would have.
  CapabilitySet legacyProbeRequirements();

  /// Lifecycle: called when the profiler activates / deactivates the tool.
  virtual void onStart() {}
  virtual void onFinish() {}
  /// Called when the tool joins an event processor; tools that capture
  /// cross-layer call stacks keep the pointer.
  virtual void onAttach(EventProcessor &Processor) { (void)Processor; }

  //===--------------------------------------------------------------------===
  // Coarse host-API events (CPU-preprocessed by the event processor)
  //===--------------------------------------------------------------------===
  /// Generic hook: receives every event after the specific hook.
  virtual void onEvent(const Event &E) { (void)E; }
  virtual void onKernelLaunch(const Event &E) { (void)E; }
  virtual void onKernelComplete(const Event &E) { (void)E; }
  virtual void onMemoryAlloc(const Event &E) { (void)E; }
  virtual void onMemoryFree(const Event &E) { (void)E; }
  virtual void onMemoryCopy(const Event &E) { (void)E; }
  virtual void onMemorySet(const Event &E) { (void)E; }
  virtual void onSynchronization(const Event &E) { (void)E; }
  virtual void onBatchMemoryOp(const Event &E) { (void)E; }

  //===--------------------------------------------------------------------===
  // High-level DL framework events
  //===--------------------------------------------------------------------===
  virtual void onOperatorStart(const Event &E) { (void)E; }
  virtual void onOperatorEnd(const Event &E) { (void)E; }
  virtual void onTensorAlloc(const Event &E) { (void)E; }
  virtual void onTensorReclaim(const Event &E) { (void)E; }

  //===--------------------------------------------------------------------===
  // Fine-grained device operations
  //===--------------------------------------------------------------------===
  /// Host-side path (Fig. 2a): raw record batches on one thread.
  virtual void onAccessBatch(const sim::LaunchInfo &Info,
                             const sim::MemAccessRecord *Records,
                             std::size_t Count) {
    (void)Info;
    (void)Records;
    (void)Count;
    if (ProbeSink)
      *ProbeSink |= Capability::AccessRecords;
  }
  /// Device-resident path (Fig. 2b): non-null enables in-situ analysis.
  virtual DeviceAnalysis *deviceAnalysis() { return nullptr; }
  /// Instruction mix (full-coverage NVBit backend only).
  virtual void onInstrMix(const sim::LaunchInfo &Info,
                          const sim::InstrMix &Mix) {
    (void)Info;
    (void)Mix;
    if (ProbeSink)
      *ProbeSink |= Capability::InstrMix;
  }
  /// Per-launch instrumentation cost breakdown (Fig. 10's components).
  virtual void onKernelTraceEnd(const sim::LaunchInfo &Info,
                                const sim::TraceTimeBreakdown &Breakdown) {
    (void)Info;
    (void)Breakdown;
  }

  /// Writes the tool's report (benches call this at run end).
  /// \deprecated Prefer report(ReportSink&), which also carries structured
  /// metrics; this remains the text body of the default report().
  virtual void writeReport(std::FILE *Out) { (void)Out; }

  /// Emits the tool's report into \p Sink. The default wraps the legacy
  /// writeReport text in one begin/end section; tools with structured
  /// results override this and add metric() calls.
  virtual void report(ReportSink &Sink);

protected:
  /// Renders writeReport(FILE*) into a string (for report() overrides
  /// that want the text body alongside their metrics).
  std::string renderTextReport();

private:
  /// Probes onAccessBatch/onInstrMix with empty payloads and returns the
  /// capabilities whose hooks a subclass replaced (or AccessRecords when
  /// deviceAnalysis() is non-null). Feeds the default subscription() and
  /// legacyProbeRequirements().
  CapabilitySet probeFineGrained();

  /// Where the base-class fine-grained hook defaults record that they —
  /// and not an override — were reached; only set while probeFineGrained
  /// runs.
  CapabilitySet *ProbeSink = nullptr;
};

/// Factory registry so tools can be selected by name via the PASTA_TOOL
/// environment variable or a command-line option (paper §III-C).
class ToolRegistry {
public:
  using Factory = std::function<std::unique_ptr<Tool>()>;

  /// Global registry instance.
  static ToolRegistry &instance();

  void registerTool(const std::string &Name, Factory MakeTool);
  /// Creates a registered tool; null when unknown.
  std::unique_ptr<Tool> create(const std::string &Name) const;
  /// Diagnostic variant: on unknown \p Name, fills \p Err with the sorted
  /// list of registered names instead of failing silently.
  std::unique_ptr<Tool> create(const std::string &Name,
                               SessionError &Err) const;
  /// Names in sorted order.
  std::vector<std::string> registeredNames() const;

private:
  std::map<std::string, Factory> Factories;
};

} // namespace pasta

#endif // PASTA_PASTA_TOOL_H
