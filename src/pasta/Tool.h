//===- pasta/Tool.h - Analysis tool template --------------------*- C++ -*-===//
//
// Part of the PASTA reproduction, under the MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The PASTA tool collection template (paper §III-B). Custom analyses
/// derive from Tool and override only the hooks they need — the paper's
/// "create custom analyses by simply overriding functions in the tool
/// collection template". Tools that want GPU-resident analysis (Fig. 2b)
/// return a DeviceAnalysis; its processRecords runs concurrently on the
/// processor's device-analysis threads and must be thread-safe.
///
//===----------------------------------------------------------------------===//

#ifndef PASTA_PASTA_TOOL_H
#define PASTA_PASTA_TOOL_H

#include "pasta/Capabilities.h"
#include "pasta/Events.h"
#include "pasta/SessionError.h"
#include "sim/Trace.h"

#include <cstdio>
#include <functional>
#include <map>
#include <memory>
#include <string>
#include <vector>

namespace pasta {

class EventProcessor;
class ReportSink;

/// Thread-safe reducer for fine-grained device records (the tool-supplied
/// __device__ helper of the paper's GPU-resident model).
class DeviceAnalysis {
public:
  virtual ~DeviceAnalysis();

  /// Reduces one chunk of records in-situ. Called concurrently from the
  /// device-analysis thread pool.
  virtual void processRecords(const sim::LaunchInfo &Info,
                              const sim::MemAccessRecord *Records,
                              std::size_t Count) = 0;
};

/// Base class for all PASTA tools.
class Tool {
public:
  virtual ~Tool();

  virtual std::string name() const = 0;

  /// Event classes this tool consumes; sessions enable only the matching
  /// backend instrumentation (capability negotiation). The default derives
  /// the answer from which fine-grained hooks are overridden: it probes
  /// onAccessBatch/onInstrMix with empty payloads — a final overrider that
  /// is still the Tool default marks the probe, so the capability is only
  /// requested when a subclass replaced the hook (or deviceAnalysis() is
  /// non-null). Tools whose fine-grained consumption the probe cannot see
  /// (e.g. only onKernelTraceEnd) should override this explicitly.
  virtual CapabilitySet requirements();

  /// Lifecycle: called when the profiler activates / deactivates the tool.
  virtual void onStart() {}
  virtual void onFinish() {}
  /// Called when the tool joins an event processor; tools that capture
  /// cross-layer call stacks keep the pointer.
  virtual void onAttach(EventProcessor &Processor) { (void)Processor; }

  //===--------------------------------------------------------------------===
  // Coarse host-API events (CPU-preprocessed by the event processor)
  //===--------------------------------------------------------------------===
  /// Generic hook: receives every event after the specific hook.
  virtual void onEvent(const Event &E) { (void)E; }
  virtual void onKernelLaunch(const Event &E) { (void)E; }
  virtual void onKernelComplete(const Event &E) { (void)E; }
  virtual void onMemoryAlloc(const Event &E) { (void)E; }
  virtual void onMemoryFree(const Event &E) { (void)E; }
  virtual void onMemoryCopy(const Event &E) { (void)E; }
  virtual void onMemorySet(const Event &E) { (void)E; }
  virtual void onSynchronization(const Event &E) { (void)E; }
  virtual void onBatchMemoryOp(const Event &E) { (void)E; }

  //===--------------------------------------------------------------------===
  // High-level DL framework events
  //===--------------------------------------------------------------------===
  virtual void onOperatorStart(const Event &E) { (void)E; }
  virtual void onOperatorEnd(const Event &E) { (void)E; }
  virtual void onTensorAlloc(const Event &E) { (void)E; }
  virtual void onTensorReclaim(const Event &E) { (void)E; }

  //===--------------------------------------------------------------------===
  // Fine-grained device operations
  //===--------------------------------------------------------------------===
  /// Host-side path (Fig. 2a): raw record batches on one thread.
  virtual void onAccessBatch(const sim::LaunchInfo &Info,
                             const sim::MemAccessRecord *Records,
                             std::size_t Count) {
    (void)Info;
    (void)Records;
    (void)Count;
    if (ProbeSink)
      *ProbeSink |= Capability::AccessRecords;
  }
  /// Device-resident path (Fig. 2b): non-null enables in-situ analysis.
  virtual DeviceAnalysis *deviceAnalysis() { return nullptr; }
  /// Instruction mix (full-coverage NVBit backend only).
  virtual void onInstrMix(const sim::LaunchInfo &Info,
                          const sim::InstrMix &Mix) {
    (void)Info;
    (void)Mix;
    if (ProbeSink)
      *ProbeSink |= Capability::InstrMix;
  }
  /// Per-launch instrumentation cost breakdown (Fig. 10's components).
  virtual void onKernelTraceEnd(const sim::LaunchInfo &Info,
                                const sim::TraceTimeBreakdown &Breakdown) {
    (void)Info;
    (void)Breakdown;
  }

  /// Writes the tool's report (benches call this at run end).
  /// \deprecated Prefer report(ReportSink&), which also carries structured
  /// metrics; this remains the text body of the default report().
  virtual void writeReport(std::FILE *Out) { (void)Out; }

  /// Emits the tool's report into \p Sink. The default wraps the legacy
  /// writeReport text in one begin/end section; tools with structured
  /// results override this and add metric() calls.
  virtual void report(ReportSink &Sink);

protected:
  /// Renders writeReport(FILE*) into a string (for report() overrides
  /// that want the text body alongside their metrics).
  std::string renderTextReport();

private:
  /// Where the base-class fine-grained hook defaults record that they —
  /// and not an override — were reached; only set while the default
  /// requirements() probe runs.
  CapabilitySet *ProbeSink = nullptr;
};

/// Factory registry so tools can be selected by name via the PASTA_TOOL
/// environment variable or a command-line option (paper §III-C).
class ToolRegistry {
public:
  using Factory = std::function<std::unique_ptr<Tool>()>;

  /// Global registry instance.
  static ToolRegistry &instance();

  void registerTool(const std::string &Name, Factory MakeTool);
  /// Creates a registered tool; null when unknown.
  std::unique_ptr<Tool> create(const std::string &Name) const;
  /// Diagnostic variant: on unknown \p Name, fills \p Err with the sorted
  /// list of registered names instead of failing silently.
  std::unique_ptr<Tool> create(const std::string &Name,
                               SessionError &Err) const;
  /// Names in sorted order.
  std::vector<std::string> registeredNames() const;

private:
  std::map<std::string, Factory> Factories;
};

} // namespace pasta

#endif // PASTA_PASTA_TOOL_H
