//===- pasta/Tool.h - Analysis tool template --------------------*- C++ -*-===//
//
// Part of the PASTA reproduction, under the MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The PASTA tool collection template (paper §III-B). Custom analyses
/// derive from Tool and override only the hooks they need — the paper's
/// "create custom analyses by simply overriding functions in the tool
/// collection template". Tools that want GPU-resident analysis (Fig. 2b)
/// return a DeviceAnalysis; its processRecords runs concurrently on the
/// processor's device-analysis threads and must be thread-safe.
///
//===----------------------------------------------------------------------===//

#ifndef PASTA_PASTA_TOOL_H
#define PASTA_PASTA_TOOL_H

#include "pasta/Events.h"
#include "sim/Trace.h"

#include <cstdio>
#include <functional>
#include <map>
#include <memory>
#include <string>
#include <vector>

namespace pasta {

class EventProcessor;

/// Thread-safe reducer for fine-grained device records (the tool-supplied
/// __device__ helper of the paper's GPU-resident model).
class DeviceAnalysis {
public:
  virtual ~DeviceAnalysis();

  /// Reduces one chunk of records in-situ. Called concurrently from the
  /// device-analysis thread pool.
  virtual void processRecords(const sim::LaunchInfo &Info,
                              const sim::MemAccessRecord *Records,
                              std::size_t Count) = 0;
};

/// Base class for all PASTA tools.
class Tool {
public:
  virtual ~Tool();

  virtual std::string name() const = 0;

  /// Lifecycle: called when the profiler activates / deactivates the tool.
  virtual void onStart() {}
  virtual void onFinish() {}
  /// Called when the tool joins an event processor; tools that capture
  /// cross-layer call stacks keep the pointer.
  virtual void onAttach(EventProcessor &Processor) { (void)Processor; }

  //===--------------------------------------------------------------------===
  // Coarse host-API events (CPU-preprocessed by the event processor)
  //===--------------------------------------------------------------------===
  /// Generic hook: receives every event after the specific hook.
  virtual void onEvent(const Event &E) { (void)E; }
  virtual void onKernelLaunch(const Event &E) { (void)E; }
  virtual void onKernelComplete(const Event &E) { (void)E; }
  virtual void onMemoryAlloc(const Event &E) { (void)E; }
  virtual void onMemoryFree(const Event &E) { (void)E; }
  virtual void onMemoryCopy(const Event &E) { (void)E; }
  virtual void onMemorySet(const Event &E) { (void)E; }
  virtual void onSynchronization(const Event &E) { (void)E; }
  virtual void onBatchMemoryOp(const Event &E) { (void)E; }

  //===--------------------------------------------------------------------===
  // High-level DL framework events
  //===--------------------------------------------------------------------===
  virtual void onOperatorStart(const Event &E) { (void)E; }
  virtual void onOperatorEnd(const Event &E) { (void)E; }
  virtual void onTensorAlloc(const Event &E) { (void)E; }
  virtual void onTensorReclaim(const Event &E) { (void)E; }

  //===--------------------------------------------------------------------===
  // Fine-grained device operations
  //===--------------------------------------------------------------------===
  /// Host-side path (Fig. 2a): raw record batches on one thread.
  virtual void onAccessBatch(const sim::LaunchInfo &Info,
                             const sim::MemAccessRecord *Records,
                             std::size_t Count) {
    (void)Info;
    (void)Records;
    (void)Count;
  }
  /// Device-resident path (Fig. 2b): non-null enables in-situ analysis.
  virtual DeviceAnalysis *deviceAnalysis() { return nullptr; }
  /// Instruction mix (full-coverage NVBit backend only).
  virtual void onInstrMix(const sim::LaunchInfo &Info,
                          const sim::InstrMix &Mix) {
    (void)Info;
    (void)Mix;
  }
  /// Per-launch instrumentation cost breakdown (Fig. 10's components).
  virtual void onKernelTraceEnd(const sim::LaunchInfo &Info,
                                const sim::TraceTimeBreakdown &Breakdown) {
    (void)Info;
    (void)Breakdown;
  }

  /// Writes the tool's report (benches call this at run end).
  virtual void writeReport(std::FILE *Out) { (void)Out; }
};

/// Factory registry so tools can be selected by name via the PASTA_TOOL
/// environment variable or a command-line option (paper §III-C).
class ToolRegistry {
public:
  using Factory = std::function<std::unique_ptr<Tool>()>;

  /// Global registry instance.
  static ToolRegistry &instance();

  void registerTool(const std::string &Name, Factory MakeTool);
  /// Creates a registered tool; null when unknown.
  std::unique_ptr<Tool> create(const std::string &Name) const;
  std::vector<std::string> registeredNames() const;

private:
  std::map<std::string, Factory> Factories;
};

} // namespace pasta

#endif // PASTA_PASTA_TOOL_H
