//===- pasta/SessionError.h - Session diagnostics ---------------*- C++ -*-===//
//
// Part of the PASTA reproduction, under the MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The error type carried by the Session API: a success/failure flag plus
/// a human-readable message. Registries and the SessionBuilder fill it
/// instead of silently returning null, so drivers can print actionable
/// diagnostics ("unknown tool 'x'; registered tools: a, b, c").
///
//===----------------------------------------------------------------------===//

#ifndef PASTA_PASTA_SESSIONERROR_H
#define PASTA_PASTA_SESSIONERROR_H

#include <string>
#include <utility>

namespace pasta {

/// Diagnostic outcome of a Session-API operation. Default-constructed
/// state is success; ok() is false once a message is attached.
class SessionError {
public:
  SessionError() = default;

  static SessionError failure(std::string Message) {
    SessionError Err;
    Err.Failed = true;
    Err.Text = std::move(Message);
    return Err;
  }

  bool ok() const { return !Failed; }
  explicit operator bool() const { return Failed; }
  const std::string &message() const { return Text; }

  /// Overwrites this error in place (builder-style accumulation keeps the
  /// first failure).
  void assign(std::string Message) {
    if (Failed)
      return;
    Failed = true;
    Text = std::move(Message);
  }
  void clear() {
    Failed = false;
    Text.clear();
  }

private:
  bool Failed = false;
  std::string Text;
};

} // namespace pasta

#endif // PASTA_PASTA_SESSIONERROR_H
