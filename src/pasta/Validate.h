//===- pasta/Validate.h - Runtime contract validation -----------*- C++ -*-===//
//
// Part of the PASTA reproduction, under the MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// PASTA_VALIDATE — the runtime half of the contract-enforcement layer
/// (pasta-lint is the static half; docs/VALIDATION.md is the narrative
/// spec). The dispatch pipeline declares contracts the type system
/// cannot enforce: a Serial tool's hooks never overlap and stay on
/// their pinned lane, events reach a tool only inside its declared
/// EventKindMask, arena payload handles are never used after release,
/// flush barriers actually drain. TSan cannot see most of these — a
/// Serial tool migrated between threads *with* happens-before is not a
/// data race, but it is a broken contract — so a Validator checks them
/// dynamically.
///
/// Cost model: validation is a per-processor opt-in (ProcessorOptions::
/// Validate / SessionBuilder::validate() / PASTA_VALIDATE env /
/// -DPASTA_VALIDATE=ON build default). When off, the pipeline carries
/// exactly one null-pointer test per dispatch and nothing else — the
/// Validator object does not exist. When on, every delivery takes a
/// short mutex-protected ledger/state path; this is a debugging build
/// mode, not a production default.
///
/// Violations route through a handler: the default prints the
/// diagnostic and aborts (a broken contract means tool state is already
/// corrupt); tests install a collecting handler instead.
///
//===----------------------------------------------------------------------===//

#ifndef PASTA_PASTA_VALIDATE_H
#define PASTA_PASTA_VALIDATE_H

#include "pasta/Events.h"
#include "pasta/Tool.h"

#include <atomic>
#include <cstdint>
#include <functional>
#include <memory>
#include <mutex>
#include <string>
#include <unordered_map>

namespace pasta {

/// One detected contract violation.
struct ValidationViolation {
  enum class Kind : std::uint8_t {
    /// Two hook invocations of a Serial tool overlapped in time
    /// (reentrancy or unserialized concurrent producers).
    SerialOverlap,
    /// A Serial tool was delivered an event on a lane other than the
    /// one it was pinned to at attach — a routing-table bug.
    SerialLaneMigration,
    /// An event outside the tool's declared EventKindMask reached it —
    /// a routing-table compilation bug.
    SubscriptionMask,
    /// subscription() no longer returns what was compiled at attach:
    /// the routing tables and the tool disagree about the contract.
    SubscriptionDrift,
    /// A tool was delivered an event without ever being registered —
    /// the routing tables reference a tool the validator never saw.
    UnregisteredTool,
    /// releasePayload() on a handle already released (refcount would
    /// go below zero).
    PayloadDoubleRelease,
    /// releasePayload() on a pointer the ledger never saw (underflow
    /// of an untracked count, or a stray pointer).
    PayloadUnknownRelease,
    /// A delivered event still references a payload whose ledger entry
    /// was released (the handle outlived its registration).
    PayloadUseAfterRelease,
    /// A ledger entry's canary word was overwritten — memory corruption
    /// in or around the payload bookkeeping.
    PayloadCanaryStomp,
    /// flush() entered from a dispatch-lane thread: a lane cannot wait
    /// for itself to drain (deadlock; validation skips the wait).
    FlushFromLane,
    /// After a flush barrier, a lane had consumed fewer tickets than
    /// were admitted when the barrier began — waitDrained() returned
    /// without the drain it promises.
    FlushNotDrained,
  };

  Kind What = Kind::SerialOverlap;
  std::string Message;
};

/// Stable name for a violation kind ("serial-overlap", ...).
const char *validationViolationName(ValidationViolation::Kind K);

/// Validator activity counters (tests assert the checks actually ran).
struct ValidatorStats {
  std::uint64_t DeliveriesChecked = 0;
  std::uint64_t PayloadsTracked = 0;
  std::uint64_t Violations = 0;
  /// Serial tools whose pinned lane legitimately changed across an
  /// epoch swap (beginReconfiguration/endReconfiguration bracket). Not
  /// violations: migrations at an epoch boundary are the sanctioned way
  /// lane auto-scaling rebalances Serial tools.
  std::uint64_t SanctionedMigrations = 0;
};

/// The runtime contract checker. One Validator per EventProcessor,
/// created only when validation is enabled; every hook below is invoked
/// behind a null check, so a validation-off pipeline never pays more
/// than that test. All methods are thread-safe (deliveries arrive from
/// any lane, payload registration from any producer).
class Validator {
public:
  using Handler = std::function<void(const ValidationViolation &)>;

  Validator();
  ~Validator();

  /// Installs \p H as the violation handler (replacing print-and-abort).
  /// The handler may be invoked concurrently from any pipeline thread.
  void setHandler(Handler H);

  /// Emits one violation through the handler.
  void report(ValidationViolation::Kind What, std::string Message);

  /// The lane value for deliveries outside any dispatch lane
  /// (synchronous inline dispatch); lane-affinity checks don't apply.
  static constexpr std::size_t InlineDelivery = ~std::size_t(0);

  //===--------------------------------------------------------------------===
  // Tool contracts
  //===--------------------------------------------------------------------===

  /// (Re)registers \p T with the subscription the routing tables were
  /// compiled from and its pinned lane. Also re-queries
  /// T.subscription() and reports SubscriptionDrift when the answer no
  /// longer matches \p Compiled — the caller must hold its attach lock
  /// (single-threaded, like the compile itself). Inside a
  /// beginReconfiguration/endReconfiguration bracket, re-registering a
  /// known Serial tool with a different pinned lane counts a sanctioned
  /// migration instead of arming the lane-affinity check against the
  /// stale lane.
  void registerTool(Tool &T, const Subscription &Compiled,
                    std::size_t PinnedLane);
  /// Forgets every registered tool (clearTools on the processor).
  void unregisterTools();

  /// Brackets an epoch swap. beginReconfiguration() marks every
  /// registered tool stale; the registerTool() calls that follow
  /// re-adopt survivors in place (their in-flight Active counters are
  /// preserved — the pipeline is quiesced, but a collecting-handler
  /// test may hold state across the swap); endReconfiguration()
  /// retires tools the new table no longer routes to. The caller holds
  /// the processor's attach lock for the whole bracket.
  void beginReconfiguration();
  void endReconfiguration();

  /// Delivery-time checks, wrapped around the hook invocation:
  /// subscription-mask watchdog, Serial overlap/lane-affinity, payload
  /// liveness of the event's arena handles. \p Lane is the dispatching
  /// lane index or InlineDelivery.
  void beforeDelivery(Tool &T, const Event &E, std::size_t Lane);
  void afterDelivery(Tool &T);

  //===--------------------------------------------------------------------===
  // Payload ledger (arena refcount canaries)
  //===--------------------------------------------------------------------===

  /// Tracks a payload the arena just made resident. \p What is a static
  /// string ("string", "stack", "kernel") used in diagnostics. Each
  /// entry carries a canary derived from the pointer; a stomped canary
  /// is reported as corruption.
  void registerPayload(const void *Payload, const char *What);
  /// Releases a tracked payload: the entry is poisoned, further
  /// releases report PayloadDoubleRelease, and deliveries of events
  /// still holding the handle report PayloadUseAfterRelease. Releasing
  /// an untracked pointer reports PayloadUnknownRelease. This is the
  /// hook the planned arena eviction path retires payloads through;
  /// today nothing in the pipeline releases (payloads are resident for
  /// the arena's lifetime), so any release traffic comes from code
  /// under test.
  void releasePayload(const void *Payload);
  /// True when \p Payload is tracked and not released (test helper).
  bool payloadLive(const void *Payload);

  //===--------------------------------------------------------------------===
  // Flush barriers
  //===--------------------------------------------------------------------===

  /// flush() was entered from a dispatch-lane thread (the processor
  /// skips the wait after reporting — waiting would deadlock).
  void onFlushFromLane();
  /// After waitDrained on lane \p Lane: \p ConsumedTickets must have
  /// reached \p AdmittedTickets (the lane's tail when the barrier
  /// began). Head monotonicity makes this check race-free under
  /// concurrent producers.
  void onFlushBarrier(std::size_t Lane, std::uint64_t AdmittedTickets,
                      std::uint64_t ConsumedTickets);

  ValidatorStats stats() const;

private:
  /// Per-tool contract state. Stable address (held by unique_ptr) so
  /// delivery checks can operate on the atomics outside the map lock.
  struct ToolState {
    Tool *T = nullptr;
    std::string Name;
    EventKindMask Kinds;
    ExecutionModel Model = ExecutionModel::Serial;
    std::size_t PinnedLane = 0;
    /// Hook invocations currently in flight (Serial contract: must
    /// never exceed 1).
    std::atomic<int> Active{0};
    /// Hash of the thread id currently inside a hook (diagnostics).
    std::atomic<std::uint64_t> ActiveThread{0};
    /// Set by beginReconfiguration(), cleared when registerTool()
    /// re-adopts the tool; still-stale entries are retired by
    /// endReconfiguration().
    bool Stale = false;
  };

  struct PayloadEntry {
    std::uint64_t Canary = 0;
    const char *What = "payload";
    bool Released = false;
  };

  static std::uint64_t canaryFor(const void *Payload);
  static std::uint64_t poisonFor(const void *Payload);

  /// Checks the canary of \p It's entry; reports and returns false on a
  /// stomp. Caller holds LedgerMutex.
  bool checkCanary(const void *Payload, const PayloadEntry &Entry);

  /// Reports PayloadUseAfterRelease for every arena handle of \p E
  /// whose ledger entry was released.
  void checkEventPayloads(const Event &E, const ToolState &State);
  void checkPayloadHandle(const void *Payload, const char *What,
                          const ToolState &State);

  ToolState *stateOf(Tool &T);

  mutable std::mutex StateMutex;
  std::unordered_map<const Tool *, std::unique_ptr<ToolState>> Tools;

  mutable std::mutex LedgerMutex;
  std::unordered_map<const void *, PayloadEntry> Ledger;

  std::mutex HandlerMutex;
  Handler OnViolation;

  std::atomic<std::uint64_t> DeliveriesChecked{0};
  std::atomic<std::uint64_t> PayloadsTracked{0};
  std::atomic<std::uint64_t> Violations{0};
  std::atomic<std::uint64_t> SanctionedMigrations{0};

  /// True between beginReconfiguration() and endReconfiguration()
  /// (guarded by StateMutex alongside the Stale flags it governs).
  bool Reconfiguring = false;
};

} // namespace pasta

#endif // PASTA_PASTA_VALIDATE_H
