//===- pasta/Session.h - Unified profiling session --------------*- C++ -*-===//
//
// Part of the PASTA reproduction, under the MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The front door of PASTA: a Session owns the whole profiling stack —
/// simulated system, platform backend, event pipeline, tools and workload
/// wiring — and is assembled by a fluent SessionBuilder:
///
/// \code
///   pasta::SessionError Err;
///   auto S = pasta::SessionBuilder()
///                .tool("working_set")
///                .backend("cs-gpu")
///                .gpu("A100")
///                .model("bert")
///                .build(Err);
///   if (!S)
///     die(Err.message());
///   pasta::SessionResult Result = S->run();
///   pasta::JsonReportSink Sink(stdout);
///   S->writeReports(Sink);
/// \endcode
///
/// Construction performs *capability negotiation*: the union of every
/// attached tool's requirements() is intersected with the backend's
/// capabilities(), and only the surviving event classes are instrumented
/// — a tool consuming only coarse events never pays for access-record
/// tracing (paper §III-D's selective instrumentation, as API behavior).
///
//===----------------------------------------------------------------------===//

#ifndef PASTA_PASTA_SESSION_H
#define PASTA_PASTA_SESSION_H

#include "dl/Callbacks.h"
#include "pasta/Backend.h"
#include "pasta/Profiler.h"
#include "tools/UvmPrefetcher.h"

#include <cstdint>
#include <functional>
#include <memory>
#include <string>
#include <utility>
#include <vector>

namespace pasta {
namespace dl {
class Executor;
class Program;
} // namespace dl

/// Outcome of one Session::run().
struct SessionResult {
  dl::RunStats Stats;
  /// UVM counters snapshot (device 0) at run end.
  sim::UvmCounters Uvm;
  std::uint64_t ProgramKernels = 0;
};

/// Everything a session needs to know; filled by the SessionBuilder.
struct SessionOptions {
  std::vector<std::string> ToolNames;
  std::string Backend = "none";
  std::string Gpu = "A100";
  /// Identical devices in the simulated machine.
  int DeviceCount = 1;
  std::string Model = "resnet18";
  bool Training = false;
  /// 0 = model default for the mode.
  int Iterations = 0;
  /// Pool segments from managed (UVM) memory.
  bool Managed = false;
  /// Artificial device-memory cap in bytes on device 0 (0 = none).
  std::uint64_t MemoryLimitBytes = 0;
  tools::PrefetchLevel Prefetch = tools::PrefetchLevel::None;
  double SampleRate = 1.0;
  std::uint64_t RecordGranularityBytes = 4096;
  std::uint64_t DeviceBufferRecords = 1u << 20;
  /// Device-analysis thread-pool width (0 = hardware concurrency).
  std::size_t AnalysisThreads = 0;
  /// Decouple event collection from tool analysis: events are admitted
  /// into a bounded queue and dispatched on a dedicated thread.
  /// (Defaults mirror ProcessorOptions, the single source of truth.)
  bool AsyncEvents = ProcessorOptions().AsyncEvents;
  /// Capacity of the async event queue.
  std::size_t QueueDepth = ProcessorOptions().QueueDepth;
  /// What happens to events arriving while the async queue is full.
  OverflowPolicy Overflow = ProcessorOptions().Overflow;
  /// The Sample overflow policy's N (1/N of overflowing events kept).
  std::uint64_t SampleEveryN = ProcessorOptions().SampleEveryN;
  /// Dispatch lanes when AsyncEvents is on: Serial-contract tools are
  /// pinned round-robin, ShardByDevice/Concurrent tools run on each
  /// event's home lane.
  std::size_t DispatchThreads = ProcessorOptions().DispatchThreads;
  /// Content-hash shards for the payload arena's intern tables (0 =
  /// hardware-concurrency-derived default, clamped to [1, 64]).
  std::size_t ArenaShards = ProcessorOptions().ArenaShards;
  /// Thread-local intern memo in front of the arena shards.
  bool ArenaMemo = ProcessorOptions().ArenaMemo;
  /// Resident arena payload byte cap (0 = unlimited); past it, new
  /// payloads fall back to per-event owned pins and are counted.
  std::uint64_t ArenaMaxBytes = ProcessorOptions().ArenaMaxBytes;
  /// Lane auto-scaling: a controller samples queue back-pressure
  /// (parks/enqueue deltas) and grows or shrinks the active lane set
  /// within [MinLanes, MaxLanes] at epoch boundaries.
  bool LanesAuto = ProcessorOptions().LanesAuto;
  /// Auto-scaling floor (0 = 1). Only meaningful with LanesAuto.
  std::size_t MinLanes = ProcessorOptions().MinLanes;
  /// Auto-scaling ceiling (0 = max(DispatchThreads, 4), capped at 64).
  std::size_t MaxLanes = ProcessorOptions().MaxLanes;
  /// Runtime contract validation (pasta/Validate.h): Serial overlap and
  /// lane-affinity watchdogs, subscription checks, payload canaries,
  /// flush-barrier assertions.
  bool Validate = ProcessorOptions().Validate;
  /// When false, the backend enables everything it supports regardless of
  /// tool requirements (legacy Profiler behavior).
  bool Negotiate = true;
  /// Non-empty: capture the admitted event stream into this binary trace
  /// file (a trace_capture tool is attached automatically; see
  /// docs/TRACE_FORMAT.md).
  std::string CapturePath;
  /// Trace file the "replay" backend re-admits (required with it,
  /// rejected with any other backend).
  std::string TracePath;
  /// Replay pacing: 0 = full speed (default), 1.0 = captured wall-clock
  /// spacing, 2.0 = twice as fast.
  double ReplaySpeed = 0.0;
  /// Non-empty: forward the admitted event stream to the `accelprof
  /// --serve` aggregator listening on this Unix-domain socket (a
  /// stream_forward tool is attached automatically; see docs/SERVE.md).
  std::string ConnectPath;
  /// Tenant name the aggregator merges this session's stream under
  /// (only with ConnectPath; empty = "default").
  std::string TenantName;
  /// Stream transport fault-tolerance knobs (only with ConnectPath or a
  /// registry-created stream_forward tool). Sentinels (-1) defer to the
  /// PASTA_CONNECT_TIMEOUT / PASTA_CONNECT_RETRIES / PASTA_RECONNECT /
  /// PASTA_RECONNECT_MAX / PASTA_SPILL_MAX_BYTES environment, which in
  /// turn defaults to serve::StreamClientOptions.
  double ConnectTimeoutSeconds = -1.0;
  int ConnectRetries = -1;
  /// -1 = env, 0 = fail-fast on disconnect, 1 = reconnect + replay.
  int ReconnectMode = -1;
  int ReconnectMax = -1;
  /// Spill-buffer cap (bytes) for unacked frames under ReconnectMode=1.
  long long SpillMaxBytes = -1;
};

/// One profiling session: system + backend + pipeline + tools + workload.
class Session {
public:
  ~Session();
  Session(const Session &) = delete;
  Session &operator=(const Session &) = delete;

  //===--------------------------------------------------------------------===
  // Annotation API (pasta.start / pasta.stop; paper Listing 1)
  //===--------------------------------------------------------------------===
  void start() { Prof.start(); }
  void stop() { Prof.stop(); }

  //===--------------------------------------------------------------------===
  // Running work
  //===--------------------------------------------------------------------===
  /// Runs the configured model workload end-to-end and finishes the
  /// session (detach + tool onFinish), leaving reports ready to write.
  /// \p Customize, when set, sees the executor before the run.
  SessionResult
  run(const std::function<void(dl::Executor &)> &Customize = {});

  /// Runs one explicit program on device \p Rank's runtime. Does NOT
  /// finish the session — callers composing multi-program runs (e.g.
  /// Megatron ranks) call finish() themselves.
  dl::RunStats
  runProgram(const dl::Program &Program, int Rank = 0,
             const std::function<void(dl::Executor &)> &Customize = {});

  //===--------------------------------------------------------------------===
  // Lifecycle / reporting
  //===--------------------------------------------------------------------===
  /// Detaches instrumentation and runs every tool's onFinish. Safe to
  /// call any number of times; only the first invocation acts.
  void finish();
  /// Emits every tool's report into \p Sink (and closes it).
  void writeReports(ReportSink &Sink);
  /// Same, but leaves the sink open when \p Close is false so callers
  /// can append further report sections before closing once.
  void writeReports(ReportSink &Sink, bool Close);
  /// Convenience: text sink over \p Out.
  void writeReports(std::FILE *Out);
  /// Emits the dispatch-unit counters (EventsDropped, MaxQueueDepth,
  /// FlushCount, ...) as one "event_pipeline" report section. Kept out
  /// of writeReports so tool reports stay identical across sync/async
  /// pipelines; does not close \p Sink.
  void writePipelineReport(ReportSink &Sink);

  //===--------------------------------------------------------------------===
  // Introspection
  //===--------------------------------------------------------------------===
  const SessionOptions &options() const { return Opts; }
  PlatformBackend &backend() { return *Backend; }
  /// Union of the attached tools' requirements.
  const CapabilitySet &required() const { return Required; }
  /// Event classes actually instrumented (required ∩ backend caps, or
  /// the full backend capability set when negotiation is off).
  const CapabilitySet &negotiated() const { return Negotiated; }
  /// Requirements the backend could not satisfy (empty when all good).
  CapabilitySet unsatisfied() const {
    return Required.minus(Backend->capabilities());
  }

  Profiler &profiler() { return Prof; }
  EventProcessor &processor() { return Prof.processor(); }
  sim::System &system() { return *System; }
  dl::CallbackRegistry &callbacks() { return Callbacks; }
  /// First tool with \p Name, null when absent. The typed variant is a
  /// checked cast: null when the name is absent *or* the named tool is
  /// not a ToolT (two registered tools may share a report name without
  /// sharing a type, so an unchecked cast would be a foot-gun).
  Tool *tool(const std::string &Name) const;
  template <typename ToolT> ToolT *toolAs(const std::string &Name) const {
    return dynamic_cast<ToolT *>(tool(Name));
  }
  const std::vector<std::unique_ptr<Tool>> &tools() const {
    return Prof.tools();
  }

  //===--------------------------------------------------------------------===
  // Live reconfiguration
  //===--------------------------------------------------------------------===
  /// Attaches \p T to the *running* session: the pipeline publishes a
  /// new routing epoch behind a flush barrier and the tool sees every
  /// event admitted afterwards. Returns the raw pointer, or null when
  /// called from inside a dispatch context (a tool hook cannot
  /// reconfigure the pipeline that is delivering to it).
  Tool *addTool(std::unique_ptr<Tool> T) { return Prof.addTool(std::move(T)); }
  /// Registry-name variant of the live addTool.
  Tool *addToolByName(const std::string &Name);
  /// Detaches the named tool from the running session: pre-detach
  /// admissions drain into it, its onFinish runs, and its report
  /// freezes — it still appears in writeReports(). Returns false when
  /// no attached tool has that name.
  bool detachTool(const std::string &Name) {
    return Prof.detachToolByName(Name);
  }

private:
  friend class SessionBuilder;
  explicit Session(const SessionOptions &Opts);

  /// Builder-called: registry lookups, negotiation, attach. Returns false
  /// with \p Err set on failure.
  bool initialize(std::vector<std::unique_ptr<Tool>> ExtraTools,
                  SessionError &Err);

  SessionOptions Opts;
  std::unique_ptr<sim::System> System;
  std::unique_ptr<PlatformBackend> Backend;
  Profiler Prof;
  dl::CallbackRegistry Callbacks;
  std::vector<std::unique_ptr<dl::DeviceApi>> DeviceApis;
  CapabilitySet Required;
  CapabilitySet Negotiated;
  bool Finished = false;
};

/// Fluent assembler for Session.
class SessionBuilder {
public:
  SessionBuilder() = default;
  /// Starts from an existing configuration (e.g. to derive a probe run
  /// from a fully-configured builder). Owned tools are not carried over.
  explicit SessionBuilder(SessionOptions InitialOpts)
      : Opts(std::move(InitialOpts)) {}

  const SessionOptions &options() const { return Opts; }

  SessionBuilder &tool(const std::string &Name) {
    Opts.ToolNames.push_back(Name);
    return *this;
  }
  /// Adds an already-constructed tool (the session takes ownership).
  SessionBuilder &addTool(std::unique_ptr<Tool> T) {
    OwnedTools.push_back(std::move(T));
    return *this;
  }
  SessionBuilder &backend(const std::string &Name) {
    Opts.Backend = Name;
    return *this;
  }
  SessionBuilder &gpu(const std::string &Name) {
    Opts.Gpu = Name;
    return *this;
  }
  SessionBuilder &deviceCount(int Count) {
    Opts.DeviceCount = Count;
    return *this;
  }
  SessionBuilder &model(const std::string &Name) {
    Opts.Model = Name;
    return *this;
  }
  SessionBuilder &training(bool Enabled = true) {
    Opts.Training = Enabled;
    return *this;
  }
  SessionBuilder &iterations(int Count) {
    Opts.Iterations = Count;
    return *this;
  }
  SessionBuilder &managed(bool Enabled = true) {
    Opts.Managed = Enabled;
    return *this;
  }
  SessionBuilder &memoryLimit(std::uint64_t Bytes) {
    Opts.MemoryLimitBytes = Bytes;
    return *this;
  }
  SessionBuilder &prefetch(tools::PrefetchLevel Level) {
    Opts.Prefetch = Level;
    return *this;
  }
  SessionBuilder &sampleRate(double Rate) {
    Opts.SampleRate = Rate;
    return *this;
  }
  SessionBuilder &recordGranularity(std::uint64_t Bytes) {
    Opts.RecordGranularityBytes = Bytes;
    return *this;
  }
  SessionBuilder &deviceBufferRecords(std::uint64_t Records) {
    Opts.DeviceBufferRecords = Records;
    return *this;
  }
  SessionBuilder &analysisThreads(std::size_t Threads) {
    Opts.AnalysisThreads = Threads;
    return *this;
  }
  /// Runs event dispatch on a dedicated thread behind a bounded queue
  /// (paper §III-B's decoupled dispatch unit).
  SessionBuilder &asyncEvents(bool Enabled = true) {
    Opts.AsyncEvents = Enabled;
    return *this;
  }
  SessionBuilder &queueDepth(std::size_t Depth) {
    Opts.QueueDepth = Depth;
    return *this;
  }
  SessionBuilder &overflowPolicy(OverflowPolicy Policy) {
    Opts.Overflow = Policy;
    return *this;
  }
  /// The Sample overflow policy's N (1/N of overflowing events kept).
  SessionBuilder &sampleEveryN(std::uint64_t N) {
    Opts.SampleEveryN = N;
    return *this;
  }
  /// Number of dispatch lanes for the asynchronous pipeline. Tools with
  /// ShardByDevice/Concurrent contracts spread across lanes; Serial
  /// tools stay pinned to one.
  SessionBuilder &dispatchThreads(std::size_t Threads) {
    Opts.DispatchThreads = Threads;
    return *this;
  }
  /// Content-hash shards for the payload arena (0 = hardware-derived
  /// default). More shards cut admission contention when many producer
  /// threads intern string-bearing events concurrently.
  SessionBuilder &arenaShards(std::size_t Shards) {
    Opts.ArenaShards = Shards;
    return *this;
  }
  /// Toggles the thread-local intern memo in front of the arena shards
  /// (on by default; repeated payloads resolve with zero locks).
  SessionBuilder &arenaMemo(bool Enabled = true) {
    Opts.ArenaMemo = Enabled;
    return *this;
  }
  /// Caps resident arena payload bytes (0 = unlimited). Past the cap,
  /// new payloads are admitted as per-event owned pins and counted as
  /// arena.evicted_fallbacks.
  SessionBuilder &arenaMaxBytes(std::uint64_t Bytes) {
    Opts.ArenaMaxBytes = Bytes;
    return *this;
  }
  /// Lets the pipeline grow/shrink its dispatch-lane set from observed
  /// queue back-pressure, within [minLanes, maxLanes]. Serial tools
  /// migrate between lanes only at epoch boundaries, so their reports
  /// stay byte-identical at any lane count. Implies nothing about
  /// asyncEvents — auto-scaling without the async pipeline is inert.
  SessionBuilder &lanesAuto(bool Enabled = true) {
    Opts.LanesAuto = Enabled;
    return *this;
  }
  /// Auto-scaling floor (0 = 1 lane).
  SessionBuilder &minLanes(std::size_t Count) {
    Opts.MinLanes = Count;
    return *this;
  }
  /// Auto-scaling ceiling (0 = max(dispatchThreads, 4), capped at 64).
  SessionBuilder &maxLanes(std::size_t Count) {
    Opts.MaxLanes = Count;
    return *this;
  }
  /// Turns on the runtime contract validator (docs/VALIDATION.md): the
  /// pipeline checks Serial reentrancy/lane affinity, subscription
  /// masks and drift, arena payload liveness, and flush barriers, and
  /// aborts on the first violation (override with
  /// Validator::setHandler).
  SessionBuilder &validate(bool Enabled = true) {
    Opts.Validate = Enabled;
    return *this;
  }
  SessionBuilder &negotiate(bool Enabled) {
    Opts.Negotiate = Enabled;
    return *this;
  }
  /// Captures the admitted event stream into \p Path (binary trace; a
  /// trace_capture tool is attached automatically).
  SessionBuilder &capture(const std::string &Path) {
    Opts.CapturePath = Path;
    return *this;
  }
  /// The trace file the "replay" backend re-admits.
  SessionBuilder &trace(const std::string &Path) {
    Opts.TracePath = Path;
    return *this;
  }
  /// Forwards the admitted event stream to the aggregator socket at
  /// \p SocketPath (a stream_forward tool is attached automatically).
  SessionBuilder &connect(const std::string &SocketPath) {
    Opts.ConnectPath = SocketPath;
    return *this;
  }
  /// Tenant name the aggregator merges this session's stream under.
  SessionBuilder &tenant(const std::string &Name) {
    Opts.TenantName = Name;
    return *this;
  }
  /// Seconds each aggregator connect attempt may take before it fails
  /// (handshake included). Overrides PASTA_CONNECT_TIMEOUT.
  SessionBuilder &connectTimeout(double Seconds) {
    Opts.ConnectTimeoutSeconds = Seconds;
    return *this;
  }
  /// Extra connect attempts (with backoff) before the initial connect
  /// gives up. Overrides PASTA_CONNECT_RETRIES.
  SessionBuilder &connectRetries(int Retries) {
    Opts.ConnectRetries = Retries;
    return *this;
  }
  /// Survive aggregator disconnects: buffer unacked frames and replay
  /// them over a resumed connection. Overrides PASTA_RECONNECT.
  SessionBuilder &reconnect(bool Enabled = true) {
    Opts.ReconnectMode = Enabled ? 1 : 0;
    return *this;
  }
  /// Consecutive failed reconnect attempts before the stream is
  /// abandoned. Overrides PASTA_RECONNECT_MAX.
  SessionBuilder &reconnectMax(int Attempts) {
    Opts.ReconnectMax = Attempts;
    return *this;
  }
  /// Spill-buffer cap (bytes) for unacked frames while reconnecting.
  /// Overrides PASTA_SPILL_MAX_BYTES.
  SessionBuilder &spillMaxBytes(long long Bytes) {
    Opts.SpillMaxBytes = Bytes;
    return *this;
  }
  /// Replay pacing: 0 = full speed, 1.0 = captured spacing, 2.0 = twice
  /// as fast.
  SessionBuilder &replaySpeed(double Speed) {
    Opts.ReplaySpeed = Speed;
    return *this;
  }

  /// Validates the configuration and assembles the session; null with
  /// \p Err describing the first problem on failure.
  std::unique_ptr<Session> build(SessionError &Err);

private:
  SessionOptions Opts;
  std::vector<std::unique_ptr<Tool>> OwnedTools;
};

} // namespace pasta

#endif // PASTA_PASTA_SESSION_H
