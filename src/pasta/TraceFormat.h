//===- pasta/TraceFormat.h - Binary event-trace format ----------*- C++ -*-===//
//
// Part of the PASTA reproduction, under the MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The on-disk layout shared by TraceWriter and TraceReader — PASTA's
/// capture-once, analyze-anywhere format (docs/TRACE_FORMAT.md is the
/// narrative spec). A trace is a 16-byte header (8-byte magic
/// "PASTATRC", u32 version, u32 flags) followed by length-prefixed
/// records: one byte of tag, a u32 body length, then the body. Payload
/// definitions (strings, Python stacks, kernel descriptors) appear once
/// each, before the first event referencing them, and events reference
/// them by u32 id — the on-disk mirror of the EventArena's content
/// deduplication. A trailing End record carries the event and table
/// counts; a trace without one is truncated by definition, which is what
/// rules out silent partial replay.
///
/// All integers are little-endian and fixed-width. Forward compatibility
/// rule: within one version, readers must skip records with unknown tags
/// (the length prefix makes that possible); across versions there is no
/// compatibility promise — a version mismatch is an error, not a guess.
///
//===----------------------------------------------------------------------===//

#ifndef PASTA_PASTA_TRACEFORMAT_H
#define PASTA_PASTA_TRACEFORMAT_H

#include <cstddef>
#include <cstdint>
#include <cstring>
#include <string>

namespace pasta {
namespace trace {

/// First eight bytes of every PASTA trace file.
inline constexpr char Magic[8] = {'P', 'A', 'S', 'T', 'A', 'T', 'R', 'C'};

/// Format version this build writes and reads. Bumped on any layout
/// change; readers reject other versions outright. Version 2 defined
/// the header-flags bits (kFlagStreamed); record layouts are unchanged
/// from version 1.
inline constexpr std::uint32_t Version = 2;

/// Header flags word written into capture *files* — no bits set.
/// Readers reject any flag bit outside KnownHeaderFlags (a flipped
/// reserved bit must not be silently honored).
inline constexpr std::uint32_t HeaderFlags = 0;

/// The byte stream is a live socket stream (TraceStreamSink framing,
/// docs/SERVE.md) rather than a capture file. Set by the stream_forward
/// tool's writer; required by TraceStreamDecoder; rejected by the file
/// reader, which must not silently treat a transport stream dump as a
/// capture.
inline constexpr std::uint32_t kFlagStreamed = 1u << 0;

/// Every flag bit this build understands. Readers reject headers with
/// bits outside this mask with an offset-named diagnostic.
inline constexpr std::uint32_t KnownHeaderFlags = kFlagStreamed;

/// Magic + version + flags.
inline constexpr std::size_t HeaderSize = 16;

/// Tag byte + u32 body length.
inline constexpr std::size_t RecordPrefixSize = 5;

/// Record tags. Values are part of the on-disk format; never renumber.
enum class RecordTag : std::uint8_t {
  /// u32 id, then the string bytes (length = body length - 4).
  StringDef = 0x01,
  /// u32 id, u32 frame count, then per frame a u32 length + bytes
  /// (frames innermost-first, as PayloadStack stores them).
  StackDef = 0x02,
  /// u32 id, then a serialized sim::KernelDesc (see TraceWriter.cpp).
  KernelDef = 0x03,
  /// One normalized Event; payloads referenced by table id (0 = unset).
  EventRecord = 0x04,
  /// u64 event count, u32 string/stack/kernel table sizes. Required:
  /// a trace without it is truncated.
  End = 0x05,
};

//===----------------------------------------------------------------------===//
// Little-endian append helpers (writer side)
//===----------------------------------------------------------------------===//

inline void appendU8(std::string &Out, std::uint8_t Value) {
  Out.push_back(static_cast<char>(Value));
}

inline void appendU32(std::string &Out, std::uint32_t Value) {
  for (int Shift = 0; Shift < 32; Shift += 8)
    Out.push_back(static_cast<char>((Value >> Shift) & 0xff));
}

inline void appendU64(std::string &Out, std::uint64_t Value) {
  for (int Shift = 0; Shift < 64; Shift += 8)
    Out.push_back(static_cast<char>((Value >> Shift) & 0xff));
}

/// Signed values travel as their two's-complement bit pattern.
inline void appendI32(std::string &Out, std::int32_t Value) {
  appendU32(Out, static_cast<std::uint32_t>(Value));
}

inline void appendI64(std::string &Out, std::int64_t Value) {
  appendU64(Out, static_cast<std::uint64_t>(Value));
}

/// Doubles travel as their IEEE-754 bit pattern.
inline void appendF64(std::string &Out, double Value) {
  std::uint64_t Bits = 0;
  static_assert(sizeof(Bits) == sizeof(Value), "IEEE-754 double expected");
  std::memcpy(&Bits, &Value, sizeof(Bits));
  appendU64(Out, Bits);
}

/// u32 length prefix + raw bytes.
inline void appendString(std::string &Out, const std::string &Value) {
  appendU32(Out, static_cast<std::uint32_t>(Value.size()));
  Out.append(Value);
}

//===----------------------------------------------------------------------===//
// Bounds-checked cursor (reader side)
//===----------------------------------------------------------------------===//

/// Little-endian decoder over a byte range. Every read reports success;
/// a failed read leaves the cursor untouched so the caller can name the
/// exact offset in its diagnostic.
class ByteReader {
public:
  ByteReader(const unsigned char *Data, std::size_t Size)
      : Data(Data), Size(Size) {}

  std::size_t pos() const { return Pos; }
  std::size_t remaining() const { return Size - Pos; }
  bool atEnd() const { return Pos == Size; }

  bool readU8(std::uint8_t &Value) {
    if (remaining() < 1)
      return false;
    Value = Data[Pos++];
    return true;
  }

  bool readU32(std::uint32_t &Value) {
    if (remaining() < 4)
      return false;
    Value = 0;
    for (int Shift = 0; Shift < 32; Shift += 8)
      Value |= static_cast<std::uint32_t>(Data[Pos++]) << Shift;
    return true;
  }

  bool readU64(std::uint64_t &Value) {
    if (remaining() < 8)
      return false;
    Value = 0;
    for (int Shift = 0; Shift < 64; Shift += 8)
      Value |= static_cast<std::uint64_t>(Data[Pos++]) << Shift;
    return true;
  }

  bool readI32(std::int32_t &Value) {
    std::uint32_t Raw = 0;
    if (!readU32(Raw))
      return false;
    Value = static_cast<std::int32_t>(Raw);
    return true;
  }

  bool readI64(std::int64_t &Value) {
    std::uint64_t Raw = 0;
    if (!readU64(Raw))
      return false;
    Value = static_cast<std::int64_t>(Raw);
    return true;
  }

  bool readF64(double &Value) {
    std::uint64_t Bits = 0;
    if (!readU64(Bits))
      return false;
    std::memcpy(&Value, &Bits, sizeof(Value));
    return true;
  }

  /// u32 length prefix + raw bytes.
  bool readString(std::string &Value) {
    std::uint32_t Length = 0;
    std::size_t Mark = Pos;
    if (!readU32(Length) || remaining() < Length) {
      Pos = Mark;
      return false;
    }
    Value.assign(reinterpret_cast<const char *>(Data + Pos), Length);
    Pos += Length;
    return true;
  }

  void skip(std::size_t Count) { Pos += Count > remaining() ? remaining() : Count; }

private:
  const unsigned char *Data;
  std::size_t Size;
  std::size_t Pos = 0;
};

} // namespace trace
} // namespace pasta

#endif // PASTA_PASTA_TRACEFORMAT_H
