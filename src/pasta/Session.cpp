//===- pasta/Session.cpp --------------------------------------------------===//
//
// Part of the PASTA reproduction, under the MIT license.
//
//===----------------------------------------------------------------------===//

#include "pasta/Session.h"

#include "dl/Backend.h"
#include "dl/Executor.h"
#include "dl/Models.h"
#include "pasta/ReplayBackend.h"
#include "pasta/StreamEnvelope.h"
#include "sim/System.h"
#include "support/Format.h"
#include "support/Logging.h"
#include "support/ReportSink.h"
#include "tools/RegisterTools.h"
#include "tools/StreamForwardTool.h"
#include "tools/TraceCaptureTool.h"

#include <algorithm>

using namespace pasta;

namespace {

ProfilerOptions profilerOptions(const SessionOptions &Opts) {
  ProfilerOptions ProfOpts;
  // The backend flavor is decided by PlatformBackend::attach; the
  // profiler-side trace options only carry the tuning knobs.
  ProfOpts.Trace.SampleRate = Opts.SampleRate;
  ProfOpts.Trace.RecordGranularityBytes = Opts.RecordGranularityBytes;
  ProfOpts.Trace.DeviceBufferRecords = Opts.DeviceBufferRecords;
  ProfOpts.Processor.AnalysisThreads = Opts.AnalysisThreads;
  ProfOpts.Processor.AsyncEvents = Opts.AsyncEvents;
  ProfOpts.Processor.QueueDepth = Opts.QueueDepth;
  ProfOpts.Processor.Overflow = Opts.Overflow;
  ProfOpts.Processor.SampleEveryN = Opts.SampleEveryN;
  ProfOpts.Processor.DispatchThreads = Opts.DispatchThreads;
  ProfOpts.Processor.ArenaShards = Opts.ArenaShards;
  ProfOpts.Processor.ArenaMemo = Opts.ArenaMemo;
  ProfOpts.Processor.ArenaMaxBytes = Opts.ArenaMaxBytes;
  ProfOpts.Processor.LanesAuto = Opts.LanesAuto;
  ProfOpts.Processor.MinLanes = Opts.MinLanes;
  ProfOpts.Processor.MaxLanes = Opts.MaxLanes;
  ProfOpts.Processor.Validate = Opts.Validate;
  return ProfOpts;
}

} // namespace

Session::Session(const SessionOptions &Opts)
    : Opts(Opts), Prof(profilerOptions(Opts)) {}

Session::~Session() {
  if (!Finished)
    finish();
}

bool Session::initialize(std::vector<std::unique_ptr<Tool>> ExtraTools,
                         SessionError &Err) {
  // Simulated machine: DeviceCount identical GPUs of the chosen preset.
  sim::GpuSpec Spec = sim::gpuSpecByName(Opts.Gpu);
  std::vector<sim::GpuSpec> Specs(static_cast<std::size_t>(Opts.DeviceCount),
                                  Spec);
  System = std::make_unique<sim::System>(Specs);
  if (Opts.MemoryLimitBytes > 0)
    System->device(0).setMemoryLimit(Opts.MemoryLimitBytes);

  Backend = BackendRegistry::instance().create(Opts.Backend, Spec.Vendor, Err);
  if (!Backend)
    return false;

  // Replay sessions validate their trace now, so a truncated or corrupt
  // file fails at build() time — before any tool has run.
  if (auto *Replay = dynamic_cast<ReplayBackend *>(Backend.get())) {
    Replay->configure(Opts.TracePath, Opts.ReplaySpeed);
    if (!Replay->prepare(Err))
      return false;
  }

  // Tools join the pipeline before negotiation so requirements() sees the
  // final set.
  for (const std::string &Name : Opts.ToolNames) {
    std::unique_ptr<Tool> T = ToolRegistry::instance().create(Name, Err);
    if (!T)
      return false;
    Prof.addTool(std::move(T));
  }
  for (std::unique_ptr<Tool> &T : ExtraTools)
    Prof.addTool(std::move(T));
  if (!Opts.CapturePath.empty()) {
    auto Capture = std::make_unique<tools::TraceCaptureTool>(Opts.CapturePath);
    if (!Capture->openNow(Err))
      return false;
    Prof.addTool(std::move(Capture));
  }
  // Transport knobs: env-resolved defaults, overridden by any builder
  // knob the caller actually set (sentinels mean "inherit").
  serve::StreamClientOptions ClientOpts = serve::StreamClientOptions::fromEnv();
  if (Opts.ConnectTimeoutSeconds >= 0.0)
    ClientOpts.ConnectTimeoutSeconds = Opts.ConnectTimeoutSeconds;
  if (Opts.ConnectRetries >= 0)
    ClientOpts.ConnectRetries = Opts.ConnectRetries;
  if (Opts.ReconnectMode >= 0)
    ClientOpts.Reconnect = Opts.ReconnectMode != 0;
  if (Opts.ReconnectMax >= 0)
    ClientOpts.ReconnectMax = Opts.ReconnectMax;
  if (Opts.SpillMaxBytes >= 0)
    ClientOpts.SpillMaxBytes = static_cast<std::uint64_t>(Opts.SpillMaxBytes);
  // Like capture, the forwarder connects now so a dead aggregator or a
  // rejected tenant fails at build() time, not mid-workload.
  if (!Opts.ConnectPath.empty()) {
    auto Forward = std::make_unique<tools::StreamForwardTool>(
        Opts.ConnectPath,
        Opts.TenantName.empty() ? "default" : Opts.TenantName);
    Forward->setClientOptions(ClientOpts);
    if (!Forward->openNow(Err))
      return false;
    Prof.addTool(std::move(Forward));
  }
  // Every forwarder — --connect's and registry-created ("--tool
  // stream_forward") alike — gets the resolved transport knobs and the
  // pipeline-counter source for its finish-time meta frame.
  for (const std::unique_ptr<Tool> &T : Prof.tools()) {
    if (auto *Forward = dynamic_cast<tools::StreamForwardTool *>(T.get())) {
      Forward->setClientOptions(ClientOpts);
      Forward->setPipelineStatsProvider(
          [this] { return Prof.processor().stats(); });
    }
  }

  // Capability negotiation: enable only the instrumentation some tool
  // actually consumes.
  for (const std::unique_ptr<Tool> &T : Prof.tools())
    Required |= T->requirements();
  Negotiated =
      Opts.Negotiate ? Required & Backend->capabilities() : Backend->capabilities();
  CapabilitySet Missing = unsatisfied();
  if (Opts.Negotiate && !Missing.empty())
    logWarning("backend '" + Opts.Backend + "' cannot satisfy tool "
               "requirements: " + Missing.str());

  // One source of truth for the tuning knobs: profilerOptions() already
  // translated SessionOptions into TraceOptions.
  const TraceOptions &Trace = Prof.options().Trace;
  for (int Rank = 0; Rank < Opts.DeviceCount; ++Rank) {
    DeviceApis.push_back(Backend->createRuntime(*System, Rank));
    Backend->attach(Prof.handler(), Rank, Negotiated, Trace);
  }
  Prof.attachDl(Callbacks);
  return true;
}

SessionResult
Session::run(const std::function<void(dl::Executor &)> &Customize) {
  // Replay sessions source their events from the captured trace, not
  // from a model run: pump the trace through the normal admission path
  // and synthesize RunStats from the trace's time window.
  if (auto *Replay = dynamic_cast<ReplayBackend *>(Backend.get())) {
    (void)Customize;
    SessionResult Result;
    ReplayStats Stats;
    SessionError Err;
    if (!Replay->replayInto(Prof.processor(), Stats, Err))
      logWarning("replay failed: " + Err.message());
    Result.Stats.StartTime = Stats.FirstTimestamp;
    Result.Stats.EndTime = Stats.LastTimestamp;
    Result.Stats.KernelsLaunched = Stats.KernelLaunches;
    Result.ProgramKernels = Stats.KernelLaunches;
    Result.Uvm = System->device(0).uvm().counters();
    finish();
    return Result;
  }

  dl::ScheduleBuilder::Options BuildOpts;
  BuildOpts.Flavor = DeviceApis.front()->kernelFlavor();
  BuildOpts.Training = Opts.Training;
  BuildOpts.Iterations = Opts.Iterations;
  dl::Program Program = dl::buildModelProgram(Opts.Model, BuildOpts);

  SessionResult Result;
  Result.ProgramKernels = Program.numKernels();
  Result.Stats = runProgram(Program, /*Rank=*/0, Customize);
  Result.Uvm = System->device(0).uvm().counters();

  // One-shot entry point: the session is report-ready when run returns.
  finish();
  return Result;
}

dl::RunStats
Session::runProgram(const dl::Program &Program, int Rank,
                    const std::function<void(dl::Executor &)> &Customize) {
  dl::ExecutorOptions ExecOpts;
  ExecOpts.Managed = Opts.Managed;
  dl::Executor Executor(*DeviceApis[static_cast<std::size_t>(Rank)],
                        Callbacks, ExecOpts);

  tools::UvmPrefetcher Prefetcher(Opts.Prefetch);
  Prefetcher.install(Executor);
  if (Customize)
    Customize(Executor);
  return Executor.run(Program);
}

void Session::finish() {
  if (Finished)
    return;
  Finished = true;
  Prof.finish();
}

void Session::writeReports(ReportSink &Sink) { Prof.writeReports(Sink); }

void Session::writeReports(ReportSink &Sink, bool Close) {
  Prof.writeReports(Sink, Close);
}

void Session::writeReports(std::FILE *Out) {
  TextReportSink Sink(Out);
  writeReports(Sink);
}

void Session::writePipelineReport(ReportSink &Sink) {
  Prof.processor().reportPipeline(Sink);
}

Tool *Session::tool(const std::string &Name) const {
  // Detached tools stay in tools() (their frozen reports remain in the
  // output) but are no longer part of the live tool set this accessor
  // answers for — so detach-then-reattach round-trips work.
  for (const std::unique_ptr<Tool> &T : Prof.tools())
    if (T->name() == Name && !Prof.isDetached(T.get()))
      return T.get();
  return nullptr;
}

Tool *Session::addToolByName(const std::string &Name) {
  tools::registerBuiltinTools();
  return Prof.addToolByName(Name);
}

std::unique_ptr<Session> SessionBuilder::build(SessionError &Err) {
  // Friendly default: make the built-in names resolvable without an
  // explicit registration call in every client.
  tools::registerBuiltinTools();
  registerBuiltinBackends();

  if (Opts.DeviceCount < 1) {
    Err.assign("device count must be >= 1");
    return nullptr;
  }
  const std::vector<std::string> &Gpus = sim::knownGpuNames();
  if (std::find(Gpus.begin(), Gpus.end(), Opts.Gpu) == Gpus.end()) {
    Err.assign("unknown GPU '" + Opts.Gpu + "'; known GPUs: " +
               join(Gpus, ", "));
    return nullptr;
  }
  bool ModelKnown = false;
  std::vector<std::string> ZooNames;
  for (const dl::ModelConfig &Config : dl::modelZoo()) {
    ModelKnown |= Config.Name == Opts.Model || Config.Abbrev == Opts.Model;
    ZooNames.push_back(Config.Name);
  }
  if (!ModelKnown) {
    Err.assign("unknown model '" + Opts.Model + "'; model zoo: " +
               join(ZooNames, ", "));
    return nullptr;
  }
  if (!(Opts.SampleRate > 0.0) || Opts.SampleRate > 1.0) {
    Err.assign("sample rate must be in (0, 1]");
    return nullptr;
  }
  if (Opts.RecordGranularityBytes == 0) {
    Err.assign("record granularity must be positive");
    return nullptr;
  }
  if (Opts.DeviceBufferRecords == 0) {
    Err.assign("device buffer capacity must be positive");
    return nullptr;
  }
  if (Opts.Iterations < 0) {
    Err.assign("iteration count must be >= 0 (0 = model default)");
    return nullptr;
  }
  if (Opts.QueueDepth == 0) {
    Err.assign("event queue depth must be positive");
    return nullptr;
  }
  if (Opts.SampleEveryN == 0) {
    Err.assign("overflow sample modulus must be positive");
    return nullptr;
  }
  if (Opts.DispatchThreads == 0 || Opts.DispatchThreads > 64) {
    Err.assign("dispatch thread count must be in [1, 64]");
    return nullptr;
  }
  if (Opts.ArenaShards > 64) {
    Err.assign("arena shard count must be in [1, 64] (0 = auto)");
    return nullptr;
  }
  if (Opts.MaxLanes > 64) {
    Err.assign("max lane count must be in [1, 64] (0 = auto)");
    return nullptr;
  }
  if (Opts.MinLanes > 64) {
    Err.assign("min lane count must be in [1, 64] (0 = auto)");
    return nullptr;
  }
  if (Opts.MinLanes != 0 && Opts.MaxLanes != 0 &&
      Opts.MinLanes > Opts.MaxLanes) {
    Err.assign("min lane count must not exceed max lane count");
    return nullptr;
  }
  if (Opts.ReplaySpeed < 0.0) {
    Err.assign("replay speed must be >= 0 (0 = full speed)");
    return nullptr;
  }
  if (Opts.Backend == "replay" && Opts.TracePath.empty()) {
    Err.assign("backend 'replay' needs a trace file; pass --trace <file> "
               "(SessionBuilder::trace)");
    return nullptr;
  }
  if (!Opts.TracePath.empty() && Opts.Backend != "replay") {
    Err.assign("a trace file only makes sense with --backend replay "
               "(got backend '" + Opts.Backend + "')");
    return nullptr;
  }
  if (!Opts.TenantName.empty() && Opts.ConnectPath.empty()) {
    Err.assign("a tenant name only makes sense with --connect <socket> "
               "(SessionBuilder::connect)");
    return nullptr;
  }
  if (!Opts.TenantName.empty() &&
      !trace::isValidTenantName(Opts.TenantName)) {
    Err.assign("invalid tenant name '" + Opts.TenantName +
               "': 1-64 characters of [A-Za-z0-9._-], not starting with "
               "a dot");
    return nullptr;
  }

  std::unique_ptr<Session> S(new Session(Opts));
  if (!S->initialize(std::move(OwnedTools), Err))
    return nullptr;
  return S;
}
