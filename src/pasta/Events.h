//===- pasta/Events.h - Unified event taxonomy ------------------*- C++ -*-===//
//
// Part of the PASTA reproduction, under the MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// PASTA's normalized event model — the paper's Table II. Three levels:
///
///  * coarse-grained host-called API events (driver/runtime functions,
///    kernel launches, memory copies/sets, synchronization, resource and
///    batch-memory operations),
///  * fine-grained device-side operations (thread-block entry/exit,
///    global/shared memory accesses, barriers, device malloc/free, ...),
///    which arrive as high-volume record batches rather than individual
///    Events, and
///  * high-level DL framework events (operator start/end, tensor
///    allocation/reclamation, layer and forward/backward boundaries,
///    custom annotated regions).
///
/// Whatever the vendor source (Sanitizer, NVBit, ROCprofiler) or the
/// framework, events are normalized into this one shape: positive sizes,
/// nanosecond timestamps, uniform naming.
///
//===----------------------------------------------------------------------===//

#ifndef PASTA_PASTA_EVENTS_H
#define PASTA_PASTA_EVENTS_H

#include "dl/Callbacks.h"
#include "pasta/EventArena.h"
#include "sim/GpuSpec.h"
#include "sim/Kernel.h"

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

namespace pasta {

/// Table II, first column.
enum class EventLevel : std::uint8_t {
  HostApi,     ///< Coarse-grained host-called API events.
  DeviceOp,    ///< Fine-grained device-side operations.
  DlFramework, ///< High-level DL framework events.
};

/// Table II, second column (the subset that arrives as discrete Events;
/// per-instruction device operations flow through record batches).
enum class EventKind : std::uint8_t {
  // Host API events.
  DriverFunction,
  RuntimeFunction,
  Synchronization,
  KernelLaunch,
  KernelComplete,
  MemoryCopy,
  MemorySet,
  MemoryAlloc,   ///< resource operation: allocation
  MemoryFree,    ///< resource operation: release
  StreamCreate,  ///< resource operation: stream
  StreamDestroy,
  BatchMemoryOp, ///< cudaMemPrefetchAsync / cudaMemAdvise style
  // Device-side operations surfaced as discrete events.
  ThreadBlockEntry,
  ThreadBlockExit,
  BarrierInstruction,
  DeviceMalloc,
  DeviceFree,
  // DL framework events.
  OperatorStart,
  OperatorEnd,
  TensorAlloc,
  TensorReclaim,
  LayerBoundary,
  FwdBwdBoundary,
  CustomRegion,
};

/// Number of EventKind enumerators (dispatch tables and subscription
/// masks are sized by this; must track the enum above).
inline constexpr std::size_t NumEventKinds =
    static_cast<std::size_t>(EventKind::CustomRegion) + 1;
static_assert(NumEventKinds < 64,
              "EventKindMask packs kinds into a 64-bit word and "
              "EventKindMask::all() shifts by NumEventKinds");

/// Human-readable kind name ("KernelLaunch", ...).
const char *eventKindName(EventKind Kind);

/// The taxonomy level a kind belongs to.
EventLevel eventLevel(EventKind Kind);

/// Loss tolerance of a kind under queue overflow. Resource events build
/// the allocation/tensor view every other analysis keys off; dropping or
/// sampling one desynchronizes tool state for the rest of the run, so
/// the pipeline always admits them (they wait for space like Block).
/// Barrier events additionally flush the pipeline.
enum class AdmissionClass : std::uint8_t {
  Standard, ///< subject to the configured overflow policy
  Resource, ///< never dropped or sampled out (alloc/free/tensor/stream)
  Barrier,  ///< never lost and a hard flush barrier (Synchronization)
};

/// The admission class a kind belongs to.
AdmissionClass eventAdmissionClass(EventKind Kind);

/// Copy directions normalized across vendors.
enum class CopyDirection : std::uint8_t {
  HostToDevice,
  DeviceToHost,
  DeviceToDevice,
};

/// One normalized runtime event.
struct Event {
  EventKind Kind = EventKind::RuntimeFunction;
  sim::VendorKind Vendor = sim::VendorKind::NVIDIA;
  int DeviceIndex = 0;
  std::uint32_t Stream = 0;
  /// Nanoseconds (AMD microsecond ticks are converted by the handler).
  SimTime Timestamp = 0;

  /// Memory events: always positive sizes (the handler folds AMD's
  /// negative-delta frees into MemoryFree/TensorReclaim).
  sim::DeviceAddr Address = 0;
  std::uint64_t Bytes = 0;
  bool Managed = false;
  CopyDirection Direction = CopyDirection::HostToDevice;

  /// Kernel events.
  const sim::KernelDesc *Kernel = nullptr;
  std::uint64_t GridId = 0;

  /// DL framework events. The string payloads are shared immutable
  /// handles (see EventArena.h): copying an Event bumps reference counts
  /// instead of duplicating bytes, which is what makes multi-lane
  /// fan-out zero-copy.
  const dl::TensorInfo *Tensor = nullptr;
  std::uint64_t PoolAllocated = 0;
  std::uint64_t PoolReserved = 0;
  PayloadString OpName;
  PayloadString LayerName;
  dl::ExecPhase Phase = dl::ExecPhase::Forward;
  PayloadStack PythonStack;

  /// Replaces the borrowed Kernel/Tensor pointers with owning copies.
  ///
  /// \deprecated Superseded by EventArena::intern, which the processor
  /// applies at admission (pinning the pointees into shared,
  /// content-deduplicated copies). Kept as a thin compatibility shim for
  /// code holding an Event beyond the producing callback without a
  /// processor in play. Idempotent: a no-op when the pointees are
  /// already owned.
  void retainPointees();

  /// Pins \p K as this event's kernel descriptor: the borrowed pointer
  /// is redirected to the shared copy. Used by EventArena::intern.
  void adoptKernel(std::shared_ptr<const sim::KernelDesc> K) {
    OwnedKernel = std::move(K);
    Kernel = OwnedKernel.get();
  }
  /// Tensor-descriptor equivalent of adoptKernel.
  void adoptTensor(std::shared_ptr<const dl::TensorInfo> T) {
    OwnedTensor = std::move(T);
    Tensor = OwnedTensor.get();
  }
  /// Non-null when the kernel pointee is owned (pinned or interned);
  /// lanes sharing one admitted event share this very handle.
  const std::shared_ptr<const sim::KernelDesc> &ownedKernel() const {
    return OwnedKernel;
  }
  /// Tensor-descriptor equivalent of ownedKernel.
  const std::shared_ptr<const dl::TensorInfo> &ownedTensor() const {
    return OwnedTensor;
  }

private:
  std::shared_ptr<const sim::KernelDesc> OwnedKernel;
  std::shared_ptr<const dl::TensorInfo> OwnedTensor;
};

} // namespace pasta

#endif // PASTA_PASTA_EVENTS_H
