//===- pasta/TraceReader.cpp ----------------------------------------------===//
//
// Part of the PASTA reproduction, under the MIT license.
//
//===----------------------------------------------------------------------===//

#include "pasta/TraceReader.h"

#include "pasta/Events.h"
#include "pasta/TraceFormat.h"

#include <cerrno>
#include <cstdio>
#include <cstring>

using namespace pasta;
using namespace pasta::trace;

namespace {

std::string hex32(std::uint32_t Value) {
  char Buf[16];
  std::snprintf(Buf, sizeof(Buf), "0x%x", Value);
  return Buf;
}

/// Decoded event-record fields before payload resolution. Ids are table
/// references (0 = absent); validity against the tables is checked by
/// the caller, which knows the current table sizes.
struct RawEvent {
  std::uint8_t Kind = 0;
  std::uint8_t Vendor = 0;
  std::int32_t DeviceIndex = 0;
  std::uint32_t Stream = 0;
  std::uint64_t Timestamp = 0;
  std::uint64_t Address = 0;
  std::uint64_t Bytes = 0;
  std::uint8_t Managed = 0;
  std::uint8_t Direction = 0;
  std::uint64_t GridId = 0;
  std::uint32_t KernelId = 0;
  std::uint64_t PoolAllocated = 0;
  std::uint64_t PoolReserved = 0;
  std::uint32_t OpNameId = 0;
  std::uint32_t LayerNameId = 0;
  std::uint8_t Phase = 0;
  std::uint32_t StackId = 0;
  bool HasTensor = false;
  dl::TensorInfo Tensor;
};

/// Parses one event-record body. Returns false (with \p Problem set) on
/// any structural or range violation; the caller prefixes file/offset.
bool parseEventBody(ByteReader &Cursor, RawEvent &Raw, std::string &Problem) {
  std::uint8_t HasTensor = 0;
  if (!Cursor.readU8(Raw.Kind) || !Cursor.readU8(Raw.Vendor) ||
      !Cursor.readI32(Raw.DeviceIndex) || !Cursor.readU32(Raw.Stream) ||
      !Cursor.readU64(Raw.Timestamp) || !Cursor.readU64(Raw.Address) ||
      !Cursor.readU64(Raw.Bytes) || !Cursor.readU8(Raw.Managed) ||
      !Cursor.readU8(Raw.Direction) || !Cursor.readU64(Raw.GridId) ||
      !Cursor.readU32(Raw.KernelId) || !Cursor.readU64(Raw.PoolAllocated) ||
      !Cursor.readU64(Raw.PoolReserved) || !Cursor.readU32(Raw.OpNameId) ||
      !Cursor.readU32(Raw.LayerNameId) || !Cursor.readU8(Raw.Phase) ||
      !Cursor.readU32(Raw.StackId) || !Cursor.readU8(HasTensor)) {
    Problem = "event record body shorter than its fixed fields";
    return false;
  }
  if (Raw.Kind >= NumEventKinds) {
    Problem = "invalid event kind " + std::to_string(Raw.Kind);
    return false;
  }
  if (Raw.Vendor > 1) {
    Problem = "invalid vendor " + std::to_string(Raw.Vendor);
    return false;
  }
  if (Raw.Managed > 1) {
    Problem = "invalid managed flag " + std::to_string(Raw.Managed);
    return false;
  }
  if (Raw.Direction > 2) {
    Problem = "invalid copy direction " + std::to_string(Raw.Direction);
    return false;
  }
  if (Raw.Phase > 2) {
    Problem = "invalid exec phase " + std::to_string(Raw.Phase);
    return false;
  }
  if (HasTensor > 1) {
    Problem = "invalid tensor flag " + std::to_string(HasTensor);
    return false;
  }
  Raw.HasTensor = HasTensor == 1;
  if (Raw.HasTensor) {
    std::uint64_t Id = 0;
    std::string Name;
    std::uint32_t Rank = 0;
    if (!Cursor.readU64(Id) || !Cursor.readString(Name) ||
        !Cursor.readU32(Rank)) {
      Problem = "truncated tensor descriptor";
      return false;
    }
    std::vector<std::int64_t> Dims;
    Dims.reserve(Rank);
    for (std::uint32_t I = 0; I < Rank; ++I) {
      std::int64_t Dim = 0;
      if (!Cursor.readI64(Dim)) {
        Problem = "truncated tensor shape";
        return false;
      }
      if (Dim < 0) {
        Problem = "negative tensor dimension " + std::to_string(Dim);
        return false;
      }
      Dims.push_back(Dim);
    }
    std::uint8_t Type = 0;
    std::uint8_t Role = 0;
    std::uint64_t Address = 0;
    std::int32_t DeviceIndex = 0;
    if (!Cursor.readU8(Type) || !Cursor.readU8(Role) ||
        !Cursor.readU64(Address) || !Cursor.readI32(DeviceIndex)) {
      Problem = "truncated tensor descriptor";
      return false;
    }
    if (Type > 2) {
      Problem = "invalid tensor data type " + std::to_string(Type);
      return false;
    }
    if (Role > 5) {
      Problem = "invalid tensor role " + std::to_string(Role);
      return false;
    }
    Raw.Tensor.Id = Id;
    Raw.Tensor.Name = std::move(Name);
    Raw.Tensor.Shape = dl::TensorShape(std::move(Dims));
    Raw.Tensor.Type = static_cast<dl::DataType>(Type);
    Raw.Tensor.Role = static_cast<dl::TensorRole>(Role);
    Raw.Tensor.Address = Address;
    Raw.Tensor.DeviceIndex = DeviceIndex;
  }
  if (!Cursor.atEnd()) {
    Problem = "event record body longer than its fields";
    return false;
  }
  return true;
}

//===----------------------------------------------------------------------===//
// Record-body decoders shared by the whole-file scan and the
// incremental stream decoder. Each returns "" on success, otherwise a
// complete diagnostic naming \p RecordOffset — identical wording on
// both paths, so a corrupt stream and the same bytes written to a file
// produce the same message.
//===----------------------------------------------------------------------===//

std::string decodeStringDef(const unsigned char *Body, std::uint32_t Length,
                            std::size_t NextId, std::size_t RecordOffset,
                            std::string &Content) {
  ByteReader Cursor(Body, Length);
  std::uint32_t Id = 0;
  if (!Cursor.readU32(Id))
    return "truncated string definition at offset " +
           std::to_string(RecordOffset);
  if (Id != NextId)
    return "non-sequential string id " + std::to_string(Id) + " at offset " +
           std::to_string(RecordOffset) + ": expected " +
           std::to_string(NextId);
  Content.assign(reinterpret_cast<const char *>(Body) + 4, Length - 4);
  return std::string();
}

std::string decodeStackDef(const unsigned char *Body, std::uint32_t Length,
                           std::size_t NextId, std::size_t RecordOffset,
                           PayloadStack::FrameList &Frames) {
  ByteReader Cursor(Body, Length);
  std::uint32_t Id = 0;
  std::uint32_t FrameCount = 0;
  if (!Cursor.readU32(Id) || !Cursor.readU32(FrameCount))
    return "truncated stack definition at offset " +
           std::to_string(RecordOffset);
  if (Id != NextId)
    return "non-sequential stack id " + std::to_string(Id) + " at offset " +
           std::to_string(RecordOffset) + ": expected " +
           std::to_string(NextId);
  Frames.reserve(FrameCount);
  for (std::uint32_t I = 0; I < FrameCount; ++I) {
    std::string Frame;
    if (!Cursor.readString(Frame))
      return "truncated stack definition at offset " +
             std::to_string(RecordOffset);
    Frames.push_back(std::move(Frame));
  }
  if (!Cursor.atEnd())
    return "oversized stack definition at offset " +
           std::to_string(RecordOffset);
  return std::string();
}

std::string decodeKernelDef(const unsigned char *Body, std::uint32_t Length,
                            std::size_t NextId, std::size_t RecordOffset,
                            sim::KernelDesc &Kernel) {
  ByteReader Cursor(Body, Length);
  std::uint32_t Id = 0;
  if (!Cursor.readU32(Id))
    return "truncated kernel definition at offset " +
           std::to_string(RecordOffset);
  if (Id != NextId)
    return "non-sequential kernel id " + std::to_string(Id) + " at offset " +
           std::to_string(RecordOffset) + ": expected " +
           std::to_string(NextId);
  std::uint32_t SegmentCount = 0;
  bool Ok = Cursor.readString(Kernel.Name) && Cursor.readU32(Kernel.Grid.X) &&
            Cursor.readU32(Kernel.Grid.Y) && Cursor.readU32(Kernel.Grid.Z) &&
            Cursor.readU32(Kernel.Block.X) && Cursor.readU32(Kernel.Block.Y) &&
            Cursor.readU32(Kernel.Block.Z) && Cursor.readF64(Kernel.Flops) &&
            Cursor.readF64(Kernel.ComputeInstrsPerAccess) &&
            Cursor.readU64(Kernel.StaticInstrs) &&
            Cursor.readU32(Kernel.BarriersPerBlock) &&
            Cursor.readU64(Kernel.SharedMemPerBlock) &&
            Cursor.readU32(SegmentCount);
  if (Ok) {
    Kernel.Segments.reserve(SegmentCount);
    for (std::uint32_t I = 0; Ok && I < SegmentCount; ++I) {
      sim::AccessSegment Seg;
      std::uint8_t Kind = 0;
      std::uint8_t Space = 0;
      Ok = Cursor.readU64(Seg.Base) && Cursor.readU64(Seg.Extent) &&
           Cursor.readU64(Seg.AccessBytes) && Cursor.readU8(Kind) &&
           Cursor.readU8(Space);
      if (Ok && (Kind > 1 || Space > 1))
        return "invalid access segment in kernel definition at offset " +
               std::to_string(RecordOffset);
      Seg.Kind = static_cast<sim::AccessKind>(Kind);
      Seg.Space = static_cast<sim::MemSpace>(Space);
      Kernel.Segments.push_back(Seg);
    }
  }
  if (!Ok || !Cursor.atEnd())
    return "malformed kernel definition at offset " +
           std::to_string(RecordOffset);
  return std::string();
}

/// Declared table sizes from the End record.
struct EndCounts {
  std::uint64_t Events = 0;
  std::uint32_t Strings = 0;
  std::uint32_t Stacks = 0;
  std::uint32_t Kernels = 0;
};

std::string decodeEndBody(const unsigned char *Body, std::uint32_t Length,
                          std::size_t RecordOffset, EndCounts &Counts) {
  ByteReader Cursor(Body, Length);
  if (!Cursor.readU64(Counts.Events) || !Cursor.readU32(Counts.Strings) ||
      !Cursor.readU32(Counts.Stacks) || !Cursor.readU32(Counts.Kernels) ||
      !Cursor.atEnd())
    return "malformed end-of-trace record at offset " +
           std::to_string(RecordOffset);
  return std::string();
}

std::string endCountMismatch(const EndCounts &Counts, std::size_t Events,
                             std::size_t Strings, std::size_t Stacks,
                             std::size_t Kernels) {
  return "end-of-trace record declares " + std::to_string(Counts.Events) +
         " events / " + std::to_string(Counts.Strings) + " strings / " +
         std::to_string(Counts.Stacks) + " stacks / " +
         std::to_string(Counts.Kernels) + " kernels, but " +
         std::to_string(Events) + " / " + std::to_string(Strings) + " / " +
         std::to_string(Stacks) + " / " + std::to_string(Kernels) +
         " were read";
}

std::string checkEventRefs(const RawEvent &Raw, std::size_t NumStrings,
                           std::size_t NumStacks, std::size_t NumKernels,
                           std::size_t RecordOffset) {
  if (Raw.KernelId > NumKernels)
    return "event at offset " + std::to_string(RecordOffset) +
           " references unknown kernel id " + std::to_string(Raw.KernelId);
  if (Raw.OpNameId > NumStrings || Raw.LayerNameId > NumStrings)
    return "event at offset " + std::to_string(RecordOffset) +
           " references unknown string id " +
           std::to_string(Raw.OpNameId > NumStrings ? Raw.OpNameId
                                                    : Raw.LayerNameId);
  if (Raw.StackId > NumStacks)
    return "event at offset " + std::to_string(RecordOffset) +
           " references unknown stack id " + std::to_string(Raw.StackId);
  return std::string();
}

/// Resolves a validated RawEvent against the payload tables. The
/// handles the tables hold are what the event carries — canonical
/// arena handles when the tables were interned.
Event materializeEvent(
    const RawEvent &Raw, const std::vector<PayloadString> &Strings,
    const std::vector<PayloadStack> &Stacks,
    const std::vector<std::shared_ptr<const sim::KernelDesc>> &Kernels) {
  Event E;
  E.Kind = static_cast<EventKind>(Raw.Kind);
  E.Vendor = static_cast<sim::VendorKind>(Raw.Vendor);
  E.DeviceIndex = Raw.DeviceIndex;
  E.Stream = Raw.Stream;
  E.Timestamp = Raw.Timestamp;
  E.Address = Raw.Address;
  E.Bytes = Raw.Bytes;
  E.Managed = Raw.Managed == 1;
  E.Direction = static_cast<CopyDirection>(Raw.Direction);
  E.GridId = Raw.GridId;
  E.PoolAllocated = Raw.PoolAllocated;
  E.PoolReserved = Raw.PoolReserved;
  E.Phase = static_cast<dl::ExecPhase>(Raw.Phase);
  if (Raw.KernelId)
    E.adoptKernel(Kernels[Raw.KernelId - 1]);
  if (Raw.OpNameId)
    E.OpName = Strings[Raw.OpNameId - 1];
  if (Raw.LayerNameId)
    E.LayerName = Strings[Raw.LayerNameId - 1];
  if (Raw.StackId)
    E.PythonStack = Stacks[Raw.StackId - 1];
  if (Raw.HasTensor)
    E.adoptTensor(EventArena::pinTensor(Raw.Tensor));
  return E;
}

/// Streams buffer whole records only up to this size; a hostile length
/// prefix must not make the aggregator buffer gigabytes for one
/// client. Capture files have no such cap (they are bounded by file
/// size up front).
constexpr std::uint32_t MaxStreamRecordBytes = 1u << 24;

} // namespace

bool TraceReader::fail(SessionError &Err, const std::string &Message) {
  Err.assign("trace file '" + FilePath + "': " + Message);
  Loaded = false;
  Info = TraceInfo();
  Buffer.clear();
  EventSpans.clear();
  StringTable.clear();
  StackTable.clear();
  KernelTable.clear();
  return false;
}

bool TraceReader::open(const std::string &Path, SessionError &Err) {
  FilePath = Path;
  Loaded = false;
  std::FILE *In = std::fopen(Path.c_str(), "rb");
  if (!In) {
    Err.assign("cannot open trace file '" + Path +
               "': " + std::strerror(errno));
    return false;
  }
  Buffer.clear();
  unsigned char Chunk[1 << 16];
  std::size_t Got = 0;
  while ((Got = std::fread(Chunk, 1, sizeof(Chunk), In)) > 0)
    Buffer.insert(Buffer.end(), Chunk, Chunk + Got);
  bool ReadOk = std::ferror(In) == 0;
  std::fclose(In);
  if (!ReadOk)
    return fail(Err, "read error");
  return scan(Err);
}

bool TraceReader::scan(SessionError &Err) {
  Info = TraceInfo();
  EventSpans.clear();
  StringTable.clear();
  StackTable.clear();
  KernelTable.clear();
  Info.FileBytes = Buffer.size();

  if (Buffer.size() < HeaderSize)
    return fail(Err, "truncated header: " + std::to_string(Buffer.size()) +
                         " bytes, expected at least " +
                         std::to_string(HeaderSize) +
                         " (magic \"PASTATRC\" + version + flags)");
  if (std::memcmp(Buffer.data(), Magic, sizeof(Magic)) != 0)
    return fail(Err, "bad magic at offset 0: expected \"PASTATRC\"");

  ByteReader Header(Buffer.data() + sizeof(Magic), HeaderSize - sizeof(Magic));
  std::uint32_t FileVersion = 0;
  std::uint32_t FileFlags = 0;
  Header.readU32(FileVersion);
  Header.readU32(FileFlags);
  if (FileVersion != Version)
    return fail(Err, "unsupported version " + std::to_string(FileVersion) +
                         " at offset 8: expected version " +
                         std::to_string(Version));
  if ((FileFlags & ~KnownHeaderFlags) != 0)
    return fail(Err, "unknown header flags " +
                         hex32(FileFlags & ~KnownHeaderFlags) +
                         " at offset 12: this build knows " +
                         hex32(KnownHeaderFlags));
  if ((FileFlags & kFlagStreamed) != 0)
    return fail(Err, "streamed header flags " + hex32(FileFlags) +
                         " at offset 12: this is a socket-stream dump, not a "
                         "capture file (feed it to accelprof --serve)");

  ByteReader Cursor(Buffer.data(), Buffer.size());
  Cursor.skip(HeaderSize);
  bool SawEnd = false;
  std::uint64_t DeclaredEvents = 0;
  std::uint32_t DeclaredStrings = 0;
  std::uint32_t DeclaredStacks = 0;
  std::uint32_t DeclaredKernels = 0;

  while (!Cursor.atEnd()) {
    std::size_t RecordOffset = Cursor.pos();
    if (SawEnd)
      return fail(Err, "trailing data after end-of-trace record at offset " +
                           std::to_string(RecordOffset));
    std::uint8_t Tag = 0;
    std::uint32_t Length = 0;
    if (!Cursor.readU8(Tag) || !Cursor.readU32(Length) ||
        Cursor.remaining() < Length)
      return fail(Err,
                  "truncated record at offset " + std::to_string(RecordOffset));
    std::size_t BodyOffset = Cursor.pos();
    ByteReader Body(Buffer.data() + BodyOffset, Length);
    Cursor.skip(Length);

    switch (static_cast<RecordTag>(Tag)) {
    case RecordTag::StringDef: {
      std::string Content;
      std::string Problem =
          decodeStringDef(Buffer.data() + BodyOffset, Length,
                          StringTable.size() + 1, RecordOffset, Content);
      if (!Problem.empty())
        return fail(Err, Problem);
      StringTable.emplace_back(std::move(Content));
      break;
    }
    case RecordTag::StackDef: {
      PayloadStack::FrameList Frames;
      std::string Problem =
          decodeStackDef(Buffer.data() + BodyOffset, Length,
                         StackTable.size() + 1, RecordOffset, Frames);
      if (!Problem.empty())
        return fail(Err, Problem);
      StackTable.emplace_back(std::move(Frames));
      break;
    }
    case RecordTag::KernelDef: {
      auto Kernel = std::make_shared<sim::KernelDesc>();
      std::string Problem =
          decodeKernelDef(Buffer.data() + BodyOffset, Length,
                          KernelTable.size() + 1, RecordOffset, *Kernel);
      if (!Problem.empty())
        return fail(Err, Problem);
      KernelTable.push_back(std::move(Kernel));
      break;
    }
    case RecordTag::EventRecord: {
      RawEvent Raw;
      std::string Problem;
      if (!parseEventBody(Body, Raw, Problem))
        return fail(Err, Problem + " in event record at offset " +
                             std::to_string(RecordOffset));
      Problem = checkEventRefs(Raw, StringTable.size(), StackTable.size(),
                               KernelTable.size(), RecordOffset);
      if (!Problem.empty())
        return fail(Err, Problem);
      if (EventSpans.empty())
        Info.FirstTimestamp = Raw.Timestamp;
      Info.LastTimestamp = Raw.Timestamp;
      if (static_cast<EventKind>(Raw.Kind) == EventKind::KernelLaunch)
        ++Info.KernelLaunches;
      EventSpans.push_back({BodyOffset, Length});
      break;
    }
    case RecordTag::End: {
      EndCounts Counts;
      std::string Problem =
          decodeEndBody(Buffer.data() + BodyOffset, Length, RecordOffset,
                        Counts);
      if (!Problem.empty())
        return fail(Err, Problem);
      DeclaredEvents = Counts.Events;
      DeclaredStrings = Counts.Strings;
      DeclaredStacks = Counts.Stacks;
      DeclaredKernels = Counts.Kernels;
      SawEnd = true;
      break;
    }
    default:
      // Unknown tags are skippable by construction (length-prefixed) —
      // the in-version forward-compat rule. A corrupted tag cannot hide
      // an event: the End record's counts are cross-checked below.
      break;
    }
  }

  if (!SawEnd)
    return fail(Err, "truncated trace: missing end-of-trace record");
  if (DeclaredEvents != EventSpans.size() ||
      DeclaredStrings != StringTable.size() ||
      DeclaredStacks != StackTable.size() ||
      DeclaredKernels != KernelTable.size()) {
    EndCounts Counts;
    Counts.Events = DeclaredEvents;
    Counts.Strings = DeclaredStrings;
    Counts.Stacks = DeclaredStacks;
    Counts.Kernels = DeclaredKernels;
    return fail(Err, endCountMismatch(Counts, EventSpans.size(),
                                      StringTable.size(), StackTable.size(),
                                      KernelTable.size()));
  }

  Info.Events = EventSpans.size();
  Info.Strings = StringTable.size();
  Info.Stacks = StackTable.size();
  Info.Kernels = KernelTable.size();
  Loaded = true;
  return true;
}

void TraceReader::forEachEvent(EventArena *Arena,
                               const std::function<void(Event &)> &Fn) {
  if (!Loaded)
    return;

  // Re-intern the payload tables once, up front: internString/internStack
  // reuse the table handles' existing allocations, so from here on every
  // decoded event carries canonical arena handles and admission cost is
  // reference-count bumps.
  std::vector<PayloadString> Strings = StringTable;
  std::vector<PayloadStack> Stacks = StackTable;
  std::vector<std::shared_ptr<const sim::KernelDesc>> Kernels = KernelTable;
  if (Arena) {
    for (PayloadString &S : Strings)
      S = Arena->internString(S);
    for (PayloadStack &S : Stacks)
      S = Arena->internStack(S);
    for (std::shared_ptr<const sim::KernelDesc> &K : Kernels)
      K = Arena->internKernel(*K);
  }

  for (const EventSpan &Span : EventSpans) {
    ByteReader Body(Buffer.data() + Span.Offset, Span.Length);
    RawEvent Raw;
    std::string Problem;
    // scan() already validated every record; a parse failure here would
    // mean the buffer changed underneath us.
    if (!parseEventBody(Body, Raw, Problem))
      continue;
    Event E = materializeEvent(Raw, Strings, Stacks, Kernels);
    Fn(E);
  }
}

//===----------------------------------------------------------------------===//
// TraceStreamDecoder
//===----------------------------------------------------------------------===//

bool TraceStreamDecoder::fail(SessionError &Err, const std::string &Message) {
  Failed = true;
  Err.assign("trace stream: " + Message);
  return false;
}

bool TraceStreamDecoder::decodeRecord(std::uint8_t Tag,
                                      const unsigned char *Body,
                                      std::uint32_t Length,
                                      std::size_t RecordOffset,
                                      const std::function<void(Event &)> &Fn,
                                      SessionError &Err) {
  switch (static_cast<RecordTag>(Tag)) {
  case RecordTag::StringDef: {
    std::string Content;
    std::string Problem = decodeStringDef(Body, Length, Strings.size() + 1,
                                          RecordOffset, Content);
    if (!Problem.empty())
      return fail(Err, Problem);
    PayloadString Payload(std::move(Content));
    if (Arena)
      Payload = Arena->internString(Payload);
    Strings.push_back(std::move(Payload));
    ++Info.Strings;
    return true;
  }
  case RecordTag::StackDef: {
    PayloadStack::FrameList Frames;
    std::string Problem = decodeStackDef(Body, Length, Stacks.size() + 1,
                                         RecordOffset, Frames);
    if (!Problem.empty())
      return fail(Err, Problem);
    PayloadStack Payload(std::move(Frames));
    if (Arena)
      Payload = Arena->internStack(Payload);
    Stacks.push_back(std::move(Payload));
    ++Info.Stacks;
    return true;
  }
  case RecordTag::KernelDef: {
    auto Kernel = std::make_shared<sim::KernelDesc>();
    std::string Problem = decodeKernelDef(Body, Length, Kernels.size() + 1,
                                          RecordOffset, *Kernel);
    if (!Problem.empty())
      return fail(Err, Problem);
    std::shared_ptr<const sim::KernelDesc> Handle = std::move(Kernel);
    if (Arena)
      Handle = Arena->internKernel(*Handle);
    Kernels.push_back(std::move(Handle));
    ++Info.Kernels;
    return true;
  }
  case RecordTag::EventRecord: {
    ByteReader Cursor(Body, Length);
    RawEvent Raw;
    std::string Problem;
    if (!parseEventBody(Cursor, Raw, Problem))
      return fail(Err, Problem + " in event record at offset " +
                           std::to_string(RecordOffset));
    Problem = checkEventRefs(Raw, Strings.size(), Stacks.size(),
                             Kernels.size(), RecordOffset);
    if (!Problem.empty())
      return fail(Err, Problem);
    if (Info.Events == 0)
      Info.FirstTimestamp = Raw.Timestamp;
    Info.LastTimestamp = Raw.Timestamp;
    if (static_cast<EventKind>(Raw.Kind) == EventKind::KernelLaunch)
      ++Info.KernelLaunches;
    ++Info.Events;
    Event E = materializeEvent(Raw, Strings, Stacks, Kernels);
    Fn(E);
    return true;
  }
  case RecordTag::End: {
    EndCounts Counts;
    std::string Problem = decodeEndBody(Body, Length, RecordOffset, Counts);
    if (!Problem.empty())
      return fail(Err, Problem);
    if (Counts.Events != Info.Events || Counts.Strings != Strings.size() ||
        Counts.Stacks != Stacks.size() || Counts.Kernels != Kernels.size())
      return fail(Err, endCountMismatch(Counts, Info.Events, Strings.size(),
                                        Stacks.size(), Kernels.size()));
    SawEnd = true;
    return true;
  }
  default:
    // In-version forward compat: unknown tags are skippable, exactly as
    // in the file reader. The End counts still cross-check the tables.
    return true;
  }
}

bool TraceStreamDecoder::feed(const unsigned char *Data, std::size_t Size,
                              const std::function<void(Event &)> &Fn,
                              SessionError &Err) {
  if (Failed) {
    Err.assign("trace stream: decoder already failed");
    return false;
  }
  Pending.insert(Pending.end(), Data, Data + Size);
  Info.FileBytes += Size;

  std::size_t Consumed = 0;
  bool Ok = true;
  while (Ok) {
    std::size_t Avail = Pending.size() - Consumed;
    if (!SawHeader) {
      if (Avail < HeaderSize)
        break;
      const unsigned char *Head = Pending.data() + Consumed;
      if (std::memcmp(Head, Magic, sizeof(Magic)) != 0) {
        Ok = fail(Err, "bad magic at offset 0: expected \"PASTATRC\"");
        break;
      }
      ByteReader Header(Head + sizeof(Magic), HeaderSize - sizeof(Magic));
      std::uint32_t StreamVersion = 0;
      std::uint32_t StreamFlags = 0;
      Header.readU32(StreamVersion);
      Header.readU32(StreamFlags);
      if (StreamVersion != Version) {
        Ok = fail(Err, "unsupported version " + std::to_string(StreamVersion) +
                           " at offset 8: expected version " +
                           std::to_string(Version));
        break;
      }
      if (StreamFlags != kFlagStreamed) {
        Ok = fail(Err, "unexpected stream header flags " + hex32(StreamFlags) +
                           " at offset 12: expected " + hex32(kFlagStreamed));
        break;
      }
      Consumed += HeaderSize;
      SawHeader = true;
      continue;
    }
    if (Avail < RecordPrefixSize)
      break;
    std::size_t RecordOffset = BaseOffset + Consumed;
    if (SawEnd) {
      Ok = fail(Err, "trailing data after end-of-trace record at offset " +
                         std::to_string(RecordOffset));
      break;
    }
    const unsigned char *Prefix = Pending.data() + Consumed;
    ByteReader PrefixCursor(Prefix, RecordPrefixSize);
    std::uint8_t Tag = 0;
    std::uint32_t Length = 0;
    PrefixCursor.readU8(Tag);
    PrefixCursor.readU32(Length);
    if (Length > MaxStreamRecordBytes) {
      Ok = fail(Err, "oversized record (" + std::to_string(Length) +
                         " bytes) at offset " + std::to_string(RecordOffset));
      break;
    }
    if (Avail < RecordPrefixSize + Length)
      break;
    Ok = decodeRecord(Tag, Prefix + RecordPrefixSize, Length, RecordOffset,
                      Fn, Err);
    if (Ok)
      Consumed += RecordPrefixSize + Length;
  }
  BaseOffset += Consumed;
  Pending.erase(Pending.begin(),
                Pending.begin() + static_cast<std::ptrdiff_t>(Consumed));
  return Ok;
}

bool TraceStreamDecoder::finish(SessionError &Err) {
  if (Failed) {
    Err.assign("trace stream: decoder already failed");
    return false;
  }
  if (!SawEnd) {
    if (!SawHeader)
      return fail(Err, "truncated stream: connection closed before a "
                       "complete header (" +
                           std::to_string(Pending.size()) + " of " +
                           std::to_string(HeaderSize) + " bytes)");
    return fail(Err,
                "truncated stream: missing end-of-trace record (connection "
                "closed at offset " +
                    std::to_string(BaseOffset + Pending.size()) + ")");
  }
  if (!Pending.empty())
    return fail(Err, "trailing data after end-of-trace record at offset " +
                         std::to_string(BaseOffset));
  return true;
}
