//===- pasta/TraceReader.cpp ----------------------------------------------===//
//
// Part of the PASTA reproduction, under the MIT license.
//
//===----------------------------------------------------------------------===//

#include "pasta/TraceReader.h"

#include "pasta/Events.h"
#include "pasta/TraceFormat.h"

#include <cerrno>
#include <cstdio>
#include <cstring>

using namespace pasta;
using namespace pasta::trace;

namespace {

std::string hex32(std::uint32_t Value) {
  char Buf[16];
  std::snprintf(Buf, sizeof(Buf), "0x%x", Value);
  return Buf;
}

/// Decoded event-record fields before payload resolution. Ids are table
/// references (0 = absent); validity against the tables is checked by
/// the caller, which knows the current table sizes.
struct RawEvent {
  std::uint8_t Kind = 0;
  std::uint8_t Vendor = 0;
  std::int32_t DeviceIndex = 0;
  std::uint32_t Stream = 0;
  std::uint64_t Timestamp = 0;
  std::uint64_t Address = 0;
  std::uint64_t Bytes = 0;
  std::uint8_t Managed = 0;
  std::uint8_t Direction = 0;
  std::uint64_t GridId = 0;
  std::uint32_t KernelId = 0;
  std::uint64_t PoolAllocated = 0;
  std::uint64_t PoolReserved = 0;
  std::uint32_t OpNameId = 0;
  std::uint32_t LayerNameId = 0;
  std::uint8_t Phase = 0;
  std::uint32_t StackId = 0;
  bool HasTensor = false;
  dl::TensorInfo Tensor;
};

/// Parses one event-record body. Returns false (with \p Problem set) on
/// any structural or range violation; the caller prefixes file/offset.
bool parseEventBody(ByteReader &Cursor, RawEvent &Raw, std::string &Problem) {
  std::uint8_t HasTensor = 0;
  if (!Cursor.readU8(Raw.Kind) || !Cursor.readU8(Raw.Vendor) ||
      !Cursor.readI32(Raw.DeviceIndex) || !Cursor.readU32(Raw.Stream) ||
      !Cursor.readU64(Raw.Timestamp) || !Cursor.readU64(Raw.Address) ||
      !Cursor.readU64(Raw.Bytes) || !Cursor.readU8(Raw.Managed) ||
      !Cursor.readU8(Raw.Direction) || !Cursor.readU64(Raw.GridId) ||
      !Cursor.readU32(Raw.KernelId) || !Cursor.readU64(Raw.PoolAllocated) ||
      !Cursor.readU64(Raw.PoolReserved) || !Cursor.readU32(Raw.OpNameId) ||
      !Cursor.readU32(Raw.LayerNameId) || !Cursor.readU8(Raw.Phase) ||
      !Cursor.readU32(Raw.StackId) || !Cursor.readU8(HasTensor)) {
    Problem = "event record body shorter than its fixed fields";
    return false;
  }
  if (Raw.Kind >= NumEventKinds) {
    Problem = "invalid event kind " + std::to_string(Raw.Kind);
    return false;
  }
  if (Raw.Vendor > 1) {
    Problem = "invalid vendor " + std::to_string(Raw.Vendor);
    return false;
  }
  if (Raw.Managed > 1) {
    Problem = "invalid managed flag " + std::to_string(Raw.Managed);
    return false;
  }
  if (Raw.Direction > 2) {
    Problem = "invalid copy direction " + std::to_string(Raw.Direction);
    return false;
  }
  if (Raw.Phase > 2) {
    Problem = "invalid exec phase " + std::to_string(Raw.Phase);
    return false;
  }
  if (HasTensor > 1) {
    Problem = "invalid tensor flag " + std::to_string(HasTensor);
    return false;
  }
  Raw.HasTensor = HasTensor == 1;
  if (Raw.HasTensor) {
    std::uint64_t Id = 0;
    std::string Name;
    std::uint32_t Rank = 0;
    if (!Cursor.readU64(Id) || !Cursor.readString(Name) ||
        !Cursor.readU32(Rank)) {
      Problem = "truncated tensor descriptor";
      return false;
    }
    std::vector<std::int64_t> Dims;
    Dims.reserve(Rank);
    for (std::uint32_t I = 0; I < Rank; ++I) {
      std::int64_t Dim = 0;
      if (!Cursor.readI64(Dim)) {
        Problem = "truncated tensor shape";
        return false;
      }
      if (Dim < 0) {
        Problem = "negative tensor dimension " + std::to_string(Dim);
        return false;
      }
      Dims.push_back(Dim);
    }
    std::uint8_t Type = 0;
    std::uint8_t Role = 0;
    std::uint64_t Address = 0;
    std::int32_t DeviceIndex = 0;
    if (!Cursor.readU8(Type) || !Cursor.readU8(Role) ||
        !Cursor.readU64(Address) || !Cursor.readI32(DeviceIndex)) {
      Problem = "truncated tensor descriptor";
      return false;
    }
    if (Type > 2) {
      Problem = "invalid tensor data type " + std::to_string(Type);
      return false;
    }
    if (Role > 5) {
      Problem = "invalid tensor role " + std::to_string(Role);
      return false;
    }
    Raw.Tensor.Id = Id;
    Raw.Tensor.Name = std::move(Name);
    Raw.Tensor.Shape = dl::TensorShape(std::move(Dims));
    Raw.Tensor.Type = static_cast<dl::DataType>(Type);
    Raw.Tensor.Role = static_cast<dl::TensorRole>(Role);
    Raw.Tensor.Address = Address;
    Raw.Tensor.DeviceIndex = DeviceIndex;
  }
  if (!Cursor.atEnd()) {
    Problem = "event record body longer than its fields";
    return false;
  }
  return true;
}

} // namespace

bool TraceReader::fail(SessionError &Err, const std::string &Message) {
  Err.assign("trace file '" + FilePath + "': " + Message);
  Loaded = false;
  Info = TraceInfo();
  Buffer.clear();
  EventSpans.clear();
  StringTable.clear();
  StackTable.clear();
  KernelTable.clear();
  return false;
}

bool TraceReader::open(const std::string &Path, SessionError &Err) {
  FilePath = Path;
  Loaded = false;
  std::FILE *In = std::fopen(Path.c_str(), "rb");
  if (!In) {
    Err.assign("cannot open trace file '" + Path +
               "': " + std::strerror(errno));
    return false;
  }
  Buffer.clear();
  unsigned char Chunk[1 << 16];
  std::size_t Got = 0;
  while ((Got = std::fread(Chunk, 1, sizeof(Chunk), In)) > 0)
    Buffer.insert(Buffer.end(), Chunk, Chunk + Got);
  bool ReadOk = std::ferror(In) == 0;
  std::fclose(In);
  if (!ReadOk)
    return fail(Err, "read error");
  return scan(Err);
}

bool TraceReader::scan(SessionError &Err) {
  Info = TraceInfo();
  EventSpans.clear();
  StringTable.clear();
  StackTable.clear();
  KernelTable.clear();
  Info.FileBytes = Buffer.size();

  if (Buffer.size() < HeaderSize)
    return fail(Err, "truncated header: " + std::to_string(Buffer.size()) +
                         " bytes, expected at least " +
                         std::to_string(HeaderSize) +
                         " (magic \"PASTATRC\" + version + flags)");
  if (std::memcmp(Buffer.data(), Magic, sizeof(Magic)) != 0)
    return fail(Err, "bad magic at offset 0: expected \"PASTATRC\"");

  ByteReader Header(Buffer.data() + sizeof(Magic), HeaderSize - sizeof(Magic));
  std::uint32_t FileVersion = 0;
  std::uint32_t FileFlags = 0;
  Header.readU32(FileVersion);
  Header.readU32(FileFlags);
  if (FileVersion != Version)
    return fail(Err, "unsupported version " + std::to_string(FileVersion) +
                         " at offset 8: expected version " +
                         std::to_string(Version));
  if (FileFlags != HeaderFlags)
    return fail(Err, "unsupported header flags " + hex32(FileFlags) +
                         " at offset 12: expected " + hex32(HeaderFlags));

  ByteReader Cursor(Buffer.data(), Buffer.size());
  Cursor.skip(HeaderSize);
  bool SawEnd = false;
  std::uint64_t DeclaredEvents = 0;
  std::uint32_t DeclaredStrings = 0;
  std::uint32_t DeclaredStacks = 0;
  std::uint32_t DeclaredKernels = 0;

  while (!Cursor.atEnd()) {
    std::size_t RecordOffset = Cursor.pos();
    if (SawEnd)
      return fail(Err, "trailing data after end-of-trace record at offset " +
                           std::to_string(RecordOffset));
    std::uint8_t Tag = 0;
    std::uint32_t Length = 0;
    if (!Cursor.readU8(Tag) || !Cursor.readU32(Length) ||
        Cursor.remaining() < Length)
      return fail(Err,
                  "truncated record at offset " + std::to_string(RecordOffset));
    std::size_t BodyOffset = Cursor.pos();
    ByteReader Body(Buffer.data() + BodyOffset, Length);
    Cursor.skip(Length);

    switch (static_cast<RecordTag>(Tag)) {
    case RecordTag::StringDef: {
      std::uint32_t Id = 0;
      if (!Body.readU32(Id))
        return fail(Err, "truncated string definition at offset " +
                             std::to_string(RecordOffset));
      if (Id != StringTable.size() + 1)
        return fail(Err, "non-sequential string id " + std::to_string(Id) +
                             " at offset " + std::to_string(RecordOffset) +
                             ": expected " +
                             std::to_string(StringTable.size() + 1));
      std::string Content(
          reinterpret_cast<const char *>(Buffer.data() + BodyOffset + 4),
          Length - 4);
      StringTable.emplace_back(std::move(Content));
      break;
    }
    case RecordTag::StackDef: {
      std::uint32_t Id = 0;
      std::uint32_t FrameCount = 0;
      if (!Body.readU32(Id) || !Body.readU32(FrameCount))
        return fail(Err, "truncated stack definition at offset " +
                             std::to_string(RecordOffset));
      if (Id != StackTable.size() + 1)
        return fail(Err, "non-sequential stack id " + std::to_string(Id) +
                             " at offset " + std::to_string(RecordOffset) +
                             ": expected " +
                             std::to_string(StackTable.size() + 1));
      PayloadStack::FrameList Frames;
      Frames.reserve(FrameCount);
      for (std::uint32_t I = 0; I < FrameCount; ++I) {
        std::string Frame;
        if (!Body.readString(Frame))
          return fail(Err, "truncated stack definition at offset " +
                               std::to_string(RecordOffset));
        Frames.push_back(std::move(Frame));
      }
      if (!Body.atEnd())
        return fail(Err, "oversized stack definition at offset " +
                             std::to_string(RecordOffset));
      StackTable.emplace_back(std::move(Frames));
      break;
    }
    case RecordTag::KernelDef: {
      std::uint32_t Id = 0;
      if (!Body.readU32(Id))
        return fail(Err, "truncated kernel definition at offset " +
                             std::to_string(RecordOffset));
      if (Id != KernelTable.size() + 1)
        return fail(Err, "non-sequential kernel id " + std::to_string(Id) +
                             " at offset " + std::to_string(RecordOffset) +
                             ": expected " +
                             std::to_string(KernelTable.size() + 1));
      auto Kernel = std::make_shared<sim::KernelDesc>();
      std::uint32_t SegmentCount = 0;
      bool Ok = Body.readString(Kernel->Name) &&
                Body.readU32(Kernel->Grid.X) && Body.readU32(Kernel->Grid.Y) &&
                Body.readU32(Kernel->Grid.Z) && Body.readU32(Kernel->Block.X) &&
                Body.readU32(Kernel->Block.Y) &&
                Body.readU32(Kernel->Block.Z) && Body.readF64(Kernel->Flops) &&
                Body.readF64(Kernel->ComputeInstrsPerAccess) &&
                Body.readU64(Kernel->StaticInstrs) &&
                Body.readU32(Kernel->BarriersPerBlock) &&
                Body.readU64(Kernel->SharedMemPerBlock) &&
                Body.readU32(SegmentCount);
      if (Ok) {
        Kernel->Segments.reserve(SegmentCount);
        for (std::uint32_t I = 0; Ok && I < SegmentCount; ++I) {
          sim::AccessSegment Seg;
          std::uint8_t Kind = 0;
          std::uint8_t Space = 0;
          Ok = Body.readU64(Seg.Base) && Body.readU64(Seg.Extent) &&
               Body.readU64(Seg.AccessBytes) && Body.readU8(Kind) &&
               Body.readU8(Space);
          if (Ok && (Kind > 1 || Space > 1))
            return fail(Err, "invalid access segment in kernel definition "
                             "at offset " +
                                 std::to_string(RecordOffset));
          Seg.Kind = static_cast<sim::AccessKind>(Kind);
          Seg.Space = static_cast<sim::MemSpace>(Space);
          Kernel->Segments.push_back(Seg);
        }
      }
      if (!Ok || !Body.atEnd())
        return fail(Err, "malformed kernel definition at offset " +
                             std::to_string(RecordOffset));
      KernelTable.push_back(std::move(Kernel));
      break;
    }
    case RecordTag::EventRecord: {
      RawEvent Raw;
      std::string Problem;
      if (!parseEventBody(Body, Raw, Problem))
        return fail(Err, Problem + " in event record at offset " +
                             std::to_string(RecordOffset));
      if (Raw.KernelId > KernelTable.size())
        return fail(Err, "event at offset " + std::to_string(RecordOffset) +
                             " references unknown kernel id " +
                             std::to_string(Raw.KernelId));
      if (Raw.OpNameId > StringTable.size() ||
          Raw.LayerNameId > StringTable.size())
        return fail(Err, "event at offset " + std::to_string(RecordOffset) +
                             " references unknown string id " +
                             std::to_string(Raw.OpNameId > StringTable.size()
                                                ? Raw.OpNameId
                                                : Raw.LayerNameId));
      if (Raw.StackId > StackTable.size())
        return fail(Err, "event at offset " + std::to_string(RecordOffset) +
                             " references unknown stack id " +
                             std::to_string(Raw.StackId));
      if (EventSpans.empty())
        Info.FirstTimestamp = Raw.Timestamp;
      Info.LastTimestamp = Raw.Timestamp;
      if (static_cast<EventKind>(Raw.Kind) == EventKind::KernelLaunch)
        ++Info.KernelLaunches;
      EventSpans.push_back({BodyOffset, Length});
      break;
    }
    case RecordTag::End: {
      if (!Body.readU64(DeclaredEvents) || !Body.readU32(DeclaredStrings) ||
          !Body.readU32(DeclaredStacks) || !Body.readU32(DeclaredKernels) ||
          !Body.atEnd())
        return fail(Err, "malformed end-of-trace record at offset " +
                             std::to_string(RecordOffset));
      SawEnd = true;
      break;
    }
    default:
      // Unknown tags are skippable by construction (length-prefixed) —
      // the in-version forward-compat rule. A corrupted tag cannot hide
      // an event: the End record's counts are cross-checked below.
      break;
    }
  }

  if (!SawEnd)
    return fail(Err, "truncated trace: missing end-of-trace record");
  if (DeclaredEvents != EventSpans.size() ||
      DeclaredStrings != StringTable.size() ||
      DeclaredStacks != StackTable.size() ||
      DeclaredKernels != KernelTable.size())
    return fail(Err,
                "end-of-trace record declares " +
                    std::to_string(DeclaredEvents) + " events / " +
                    std::to_string(DeclaredStrings) + " strings / " +
                    std::to_string(DeclaredStacks) + " stacks / " +
                    std::to_string(DeclaredKernels) + " kernels, but " +
                    std::to_string(EventSpans.size()) + " / " +
                    std::to_string(StringTable.size()) + " / " +
                    std::to_string(StackTable.size()) + " / " +
                    std::to_string(KernelTable.size()) + " were read");

  Info.Events = EventSpans.size();
  Info.Strings = StringTable.size();
  Info.Stacks = StackTable.size();
  Info.Kernels = KernelTable.size();
  Loaded = true;
  return true;
}

void TraceReader::forEachEvent(EventArena *Arena,
                               const std::function<void(Event &)> &Fn) {
  if (!Loaded)
    return;

  // Re-intern the payload tables once, up front: internString/internStack
  // reuse the table handles' existing allocations, so from here on every
  // decoded event carries canonical arena handles and admission cost is
  // reference-count bumps.
  std::vector<PayloadString> Strings = StringTable;
  std::vector<PayloadStack> Stacks = StackTable;
  std::vector<std::shared_ptr<const sim::KernelDesc>> Kernels = KernelTable;
  if (Arena) {
    for (PayloadString &S : Strings)
      S = Arena->internString(S);
    for (PayloadStack &S : Stacks)
      S = Arena->internStack(S);
    for (std::shared_ptr<const sim::KernelDesc> &K : Kernels)
      K = Arena->internKernel(*K);
  }

  for (const EventSpan &Span : EventSpans) {
    ByteReader Body(Buffer.data() + Span.Offset, Span.Length);
    RawEvent Raw;
    std::string Problem;
    // scan() already validated every record; a parse failure here would
    // mean the buffer changed underneath us.
    if (!parseEventBody(Body, Raw, Problem))
      continue;
    Event E;
    E.Kind = static_cast<EventKind>(Raw.Kind);
    E.Vendor = static_cast<sim::VendorKind>(Raw.Vendor);
    E.DeviceIndex = Raw.DeviceIndex;
    E.Stream = Raw.Stream;
    E.Timestamp = Raw.Timestamp;
    E.Address = Raw.Address;
    E.Bytes = Raw.Bytes;
    E.Managed = Raw.Managed == 1;
    E.Direction = static_cast<CopyDirection>(Raw.Direction);
    E.GridId = Raw.GridId;
    E.PoolAllocated = Raw.PoolAllocated;
    E.PoolReserved = Raw.PoolReserved;
    E.Phase = static_cast<dl::ExecPhase>(Raw.Phase);
    if (Raw.KernelId)
      E.adoptKernel(Kernels[Raw.KernelId - 1]);
    if (Raw.OpNameId)
      E.OpName = Strings[Raw.OpNameId - 1];
    if (Raw.LayerNameId)
      E.LayerName = Strings[Raw.LayerNameId - 1];
    if (Raw.StackId)
      E.PythonStack = Stacks[Raw.StackId - 1];
    if (Raw.HasTensor)
      E.adoptTensor(EventArena::pinTensor(Raw.Tensor));
    Fn(E);
  }
}
