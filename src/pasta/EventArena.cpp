//===- pasta/EventArena.cpp -----------------------------------------------===//
//
// Part of the PASTA reproduction, under the MIT license.
//
//===----------------------------------------------------------------------===//

#include "pasta/EventArena.h"

#include "pasta/Events.h"

#include <cstring>
#include <functional>
#include <ostream>

using namespace pasta;

const std::string &PayloadString::emptyString() {
  static const std::string Empty;
  return Empty;
}

const PayloadStack::FrameList &PayloadStack::emptyFrames() {
  static const FrameList Empty;
  return Empty;
}

std::ostream &pasta::operator<<(std::ostream &Out, const PayloadString &S) {
  return Out << S.str();
}

namespace {

/// FNV-1a, the content hash behind the bucketed intern tables.
class ContentHash {
public:
  void bytes(const void *Data, std::size_t Size) {
    const unsigned char *P = static_cast<const unsigned char *>(Data);
    for (std::size_t I = 0; I < Size; ++I)
      State = (State ^ P[I]) * 1099511628211ull;
  }
  void u64(std::uint64_t Value) { bytes(&Value, sizeof(Value)); }
  void f64(double Value) { bytes(&Value, sizeof(Value)); }
  void str(const std::string &S) {
    u64(S.size());
    bytes(S.data(), S.size());
  }
  std::uint64_t value() const { return State; }

private:
  std::uint64_t State = 14695981039346656037ull;
};

std::uint64_t hashFrames(const std::vector<std::string> &Frames) {
  ContentHash H;
  H.u64(Frames.size());
  for (const std::string &Frame : Frames)
    H.str(Frame);
  return H.value();
}

std::uint64_t hashKernel(const sim::KernelDesc &K) {
  ContentHash H;
  H.str(K.Name);
  H.u64(K.Grid.count());
  H.u64(K.Block.count());
  H.f64(K.Flops);
  H.u64(K.Segments.size());
  for (const sim::AccessSegment &Seg : K.Segments) {
    H.u64(Seg.Base);
    H.u64(Seg.Extent);
    H.u64(Seg.AccessBytes);
  }
  return H.value();
}

bool dimEqual(const sim::Dim3 &A, const sim::Dim3 &B) {
  return A.X == B.X && A.Y == B.Y && A.Z == B.Z;
}

/// Bitwise double equality, matching the bitwise hash: NaN equals
/// itself here (a NaN-Flops descriptor must still intern to ONE entry,
/// or the table would grow per event) and +0.0 != -0.0 (they hash to
/// different buckets).
bool bitEqual(double A, double B) {
  return std::memcmp(&A, &B, sizeof(double)) == 0;
}

bool segmentEqual(const sim::AccessSegment &A,
                  const sim::AccessSegment &B) {
  return A.Base == B.Base && A.Extent == B.Extent &&
         A.AccessBytes == B.AccessBytes && A.Kind == B.Kind &&
         A.Space == B.Space;
}

bool kernelEqual(const sim::KernelDesc &A, const sim::KernelDesc &B) {
  if (A.Name != B.Name || !dimEqual(A.Grid, B.Grid) ||
      !dimEqual(A.Block, B.Block) || !bitEqual(A.Flops, B.Flops) ||
      !bitEqual(A.ComputeInstrsPerAccess, B.ComputeInstrsPerAccess) ||
      A.StaticInstrs != B.StaticInstrs ||
      A.BarriersPerBlock != B.BarriersPerBlock ||
      A.SharedMemPerBlock != B.SharedMemPerBlock ||
      A.Segments.size() != B.Segments.size())
    return false;
  for (std::size_t I = 0; I < A.Segments.size(); ++I)
    if (!segmentEqual(A.Segments[I], B.Segments[I]))
      return false;
  return true;
}

std::uint64_t stackBytes(const std::vector<std::string> &Frames) {
  std::uint64_t Total = Frames.size() * sizeof(std::string);
  for (const std::string &Frame : Frames)
    Total += Frame.size();
  return Total;
}

std::uint64_t kernelBytes(const sim::KernelDesc &K) {
  return sizeof(sim::KernelDesc) + K.Name.size() +
         K.Segments.size() * sizeof(sim::AccessSegment);
}

} // namespace

void EventArena::intern(Event &E) {
  // Pin the tensor pointee outside the lock (no table involved).
  // Descriptors live on the producing callback's stack and die when it
  // returns; an admitted event outlives that frame. Skip when already
  // owned (e.g. via the retainPointees compatibility shim) — interning
  // is idempotent, as the Events.h ownership doc promises.
  if (E.Tensor && !E.ownedTensor())
    E.adoptTensor(pinTensor(*E.Tensor));
  if (E.OpName.empty() && E.LayerName.empty() && E.PythonStack.empty() &&
      !E.Kernel)
    return;
  // One lock acquisition per event, however many payloads it carries —
  // producers intern concurrently on the admission path.
  std::lock_guard<std::mutex> Lock(Mutex);
  if (!E.OpName.empty())
    E.OpName = internStringLocked(E.OpName);
  if (!E.LayerName.empty())
    E.LayerName = internStringLocked(E.LayerName);
  if (!E.PythonStack.empty())
    E.PythonStack = internStackLocked(E.PythonStack);
  if (E.Kernel)
    E.adoptKernel(internKernelLocked(*E.Kernel));
}

PayloadString EventArena::internString(const PayloadString &S) {
  if (S.empty())
    return S;
  std::lock_guard<std::mutex> Lock(Mutex);
  return internStringLocked(S);
}

PayloadString EventArena::internStringLocked(const PayloadString &S) {
  auto It = Strings.find(std::string_view(S.str()));
  if (It != Strings.end()) {
    ++Counters.Hits;
    PayloadString Canonical;
    Canonical.adopt(It->second);
    return Canonical;
  }
  // First sight: the value's existing allocation becomes the canonical
  // one (the key views into it; shared_ptr keeps the address stable).
  std::shared_ptr<const std::string> Stored = S.handle();
  Strings.emplace(std::string_view(*Stored), Stored);
  ++Counters.Misses;
  ++Counters.Strings;
  Counters.Bytes += Stored->size();
  return S;
}

PayloadStack EventArena::internStack(const PayloadStack &S) {
  if (S.empty())
    return S;
  std::lock_guard<std::mutex> Lock(Mutex);
  return internStackLocked(S);
}

PayloadStack EventArena::internStackLocked(const PayloadStack &S) {
  auto &Bucket = Stacks[hashFrames(S.frames())];
  for (const auto &Existing : Bucket)
    if (*Existing == S.frames()) {
      ++Counters.Hits;
      PayloadStack Canonical;
      Canonical.adopt(Existing);
      return Canonical;
    }
  Bucket.push_back(S.handle());
  ++Counters.Misses;
  ++Counters.Stacks;
  Counters.Bytes += stackBytes(S.frames());
  return S;
}

std::shared_ptr<const sim::KernelDesc>
EventArena::internKernel(const sim::KernelDesc &K) {
  std::lock_guard<std::mutex> Lock(Mutex);
  return internKernelLocked(K);
}

std::shared_ptr<const sim::KernelDesc>
EventArena::internKernelLocked(const sim::KernelDesc &K) {
  auto &Bucket = Kernels[hashKernel(K)];
  for (const auto &Existing : Bucket)
    if (kernelEqual(*Existing, K)) {
      ++Counters.Hits;
      return Existing;
    }
  auto Stored = std::make_shared<const sim::KernelDesc>(K);
  Bucket.push_back(Stored);
  ++Counters.Misses;
  ++Counters.Kernels;
  Counters.Bytes += kernelBytes(K);
  return Stored;
}

std::shared_ptr<const dl::TensorInfo>
EventArena::pinTensor(const dl::TensorInfo &T) {
  // Deliberately not interned: tensor identity is per-instance (id,
  // allocator address), so a dedup table would grow with event volume.
  // The one shared copy is what every fan-out lane references; it dies
  // with the last event handle.
  return std::make_shared<const dl::TensorInfo>(T);
}

EventArenaStats EventArena::stats() const {
  std::lock_guard<std::mutex> Lock(Mutex);
  return Counters;
}
