//===- pasta/EventArena.cpp -----------------------------------------------===//
//
// Part of the PASTA reproduction, under the MIT license.
//
//===----------------------------------------------------------------------===//
//
// Sharded content-interning arena. Every payload's FNV-1a content hash
// does double duty: it picks the shard (hash % shard count) and keys
// both the shard's bucket table and the thread-local memo. The memo is
// a tiny direct-mapped cache per thread and payload kind, tagged with a
// process-unique arena id; a hit returns the canonical handle with zero
// lock acquisitions — the steady state for workloads that repeat the
// same operator names and Python stacks every training step.
//
//===----------------------------------------------------------------------===//

#include "pasta/EventArena.h"

#include "pasta/Events.h"
#include "pasta/Validate.h"
#include "support/Logging.h"

#include <algorithm>
#include <array>
#include <cstring>
#include <ostream>
#include <thread>
#include <unordered_map>
#include <utility>

using namespace pasta;

const std::string &PayloadString::emptyString() {
  static const std::string Empty;
  return Empty;
}

const PayloadStack::FrameList &PayloadStack::emptyFrames() {
  static const FrameList Empty;
  return Empty;
}

std::ostream &pasta::operator<<(std::ostream &Out, const PayloadString &S) {
  return Out << S.str();
}

namespace {

/// FNV-1a, the content hash behind the sharded intern tables and the
/// thread-local memo.
class ContentHash {
public:
  void bytes(const void *Data, std::size_t Size) {
    const unsigned char *P = static_cast<const unsigned char *>(Data);
    for (std::size_t I = 0; I < Size; ++I)
      State = (State ^ P[I]) * 1099511628211ull;
  }
  void u64(std::uint64_t Value) { bytes(&Value, sizeof(Value)); }
  void f64(double Value) { bytes(&Value, sizeof(Value)); }
  void str(const std::string &S) {
    u64(S.size());
    bytes(S.data(), S.size());
  }
  std::uint64_t value() const { return State; }

private:
  std::uint64_t State = 14695981039346656037ull;
};

/// Murmur3-style avalanche over the raw FNV state. FNV-1a's low bits
/// diffuse poorly (bit k of a step depends only on bits 0..k of state
/// and input), and both the memo sets and the shard index are taken
/// modulo small powers of two — payloads differing in one digit would
/// otherwise pile into a handful of sets/shards.
std::uint64_t finalizeHash(std::uint64_t H) {
  H ^= H >> 33;
  H *= 0xff51afd7ed558ccdull;
  H ^= H >> 33;
  H *= 0xc4ceb9fe1a85ec53ull;
  H ^= H >> 33;
  return H;
}

std::uint64_t hashString(const std::string &S) {
  ContentHash H;
  H.str(S);
  return finalizeHash(H.value());
}

std::uint64_t hashFrames(const std::vector<std::string> &Frames) {
  ContentHash H;
  H.u64(Frames.size());
  for (const std::string &Frame : Frames)
    H.str(Frame);
  return finalizeHash(H.value());
}

std::uint64_t hashKernel(const sim::KernelDesc &K) {
  ContentHash H;
  H.str(K.Name);
  H.u64(K.Grid.count());
  H.u64(K.Block.count());
  H.f64(K.Flops);
  H.u64(K.Segments.size());
  for (const sim::AccessSegment &Seg : K.Segments) {
    H.u64(Seg.Base);
    H.u64(Seg.Extent);
    H.u64(Seg.AccessBytes);
  }
  return finalizeHash(H.value());
}

bool dimEqual(const sim::Dim3 &A, const sim::Dim3 &B) {
  return A.X == B.X && A.Y == B.Y && A.Z == B.Z;
}

/// Bitwise double equality, matching the bitwise hash: NaN equals
/// itself here (a NaN-Flops descriptor must still intern to ONE entry,
/// or the table would grow per event) and +0.0 != -0.0 (they hash to
/// different buckets).
bool bitEqual(double A, double B) {
  return std::memcmp(&A, &B, sizeof(double)) == 0;
}

bool segmentEqual(const sim::AccessSegment &A,
                  const sim::AccessSegment &B) {
  return A.Base == B.Base && A.Extent == B.Extent &&
         A.AccessBytes == B.AccessBytes && A.Kind == B.Kind &&
         A.Space == B.Space;
}

bool kernelEqual(const sim::KernelDesc &A, const sim::KernelDesc &B) {
  if (A.Name != B.Name || !dimEqual(A.Grid, B.Grid) ||
      !dimEqual(A.Block, B.Block) || !bitEqual(A.Flops, B.Flops) ||
      !bitEqual(A.ComputeInstrsPerAccess, B.ComputeInstrsPerAccess) ||
      A.StaticInstrs != B.StaticInstrs ||
      A.BarriersPerBlock != B.BarriersPerBlock ||
      A.SharedMemPerBlock != B.SharedMemPerBlock ||
      A.Segments.size() != B.Segments.size())
    return false;
  for (std::size_t I = 0; I < A.Segments.size(); ++I)
    if (!segmentEqual(A.Segments[I], B.Segments[I]))
      return false;
  return true;
}

std::uint64_t stackBytes(const std::vector<std::string> &Frames) {
  std::uint64_t Total = Frames.size() * sizeof(std::string);
  for (const std::string &Frame : Frames)
    Total += Frame.size();
  return Total;
}

std::uint64_t kernelBytes(const sim::KernelDesc &K) {
  return sizeof(sim::KernelDesc) + K.Name.size() +
         K.Segments.size() * sizeof(sim::AccessSegment);
}

//===----------------------------------------------------------------------===//
// Thread-local intern memo
//===----------------------------------------------------------------------===//

/// One 2-way set-associative memo with LRU within each set (way 0 is
/// most recent): the last payloads seen per hash set. Two ways stop the
/// pair-thrash a direct map suffers when two hot payloads share a slot
/// — a training step's repeated working set then hits ~always. Entries
/// are tagged with the owning arena's process-unique id, so several
/// arenas (tests, multiple processors) share a thread's memo without
/// cross-talk; a dead arena's entries are purged on the thread's next
/// intern (ThreadMemos::purgeIfStale).
template <typename HandleT, std::size_t Sets> struct Memo {
  struct Entry {
    std::uint64_t ArenaId = 0;
    std::uint64_t Hash = 0;
    HandleT Handle;
  };
  std::array<Entry, 2 * Sets> Entries;

  Entry *set(std::uint64_t Hash) { return &Entries[2 * (Hash % Sets)]; }

  /// The cached canonical handle, or null when absent. The caller still
  /// verifies content equality (a 64-bit tag is not proof).
  const HandleT *lookup(std::uint64_t ArenaId, std::uint64_t Hash) {
    Entry *Way = set(Hash);
    if (Way[0].ArenaId == ArenaId && Way[0].Hash == Hash && Way[0].Handle)
      return &Way[0].Handle;
    if (Way[1].ArenaId == ArenaId && Way[1].Hash == Hash &&
        Way[1].Handle) {
      std::swap(Way[0], Way[1]); // promote to MRU
      return &Way[0].Handle;
    }
    return nullptr;
  }
  void install(std::uint64_t ArenaId, std::uint64_t Hash,
               HandleT Handle) {
    Entry *Way = set(Hash);
    if (!(Way[0].ArenaId == ArenaId && Way[0].Hash == Hash))
      std::swap(Way[0], Way[1]); // evict LRU, demote MRU
    Way[0] = Entry{ArenaId, Hash, std::move(Handle)};
  }
};

/// Bumped by every EventArena destructor; threads purge their memos on
/// the next intern when it moved (see ThreadMemos::purgeIfStale).
std::atomic<std::uint64_t> ArenaDeathEpoch{0};

struct ThreadMemos {
  Memo<std::shared_ptr<const std::string>, 64> Strings;
  Memo<std::shared_ptr<const std::vector<std::string>>, 32> Stacks;
  Memo<std::shared_ptr<const sim::KernelDesc>, 32> Kernels;
  std::uint64_t SeenDeathEpoch = 0;

  /// Drops every cached handle once any arena died since the last
  /// intern on this thread. Without this, a thread that interned once
  /// would pin a dead arena's payloads (up to the memo capacity) for
  /// its remaining lifetime; live arenas merely re-warm their entries.
  /// Cost when nothing died: one relaxed load per intern call.
  void purgeIfStale() {
    std::uint64_t Epoch = ArenaDeathEpoch.load(std::memory_order_relaxed);
    if (Epoch == SeenDeathEpoch)
      return;
    SeenDeathEpoch = Epoch;
    Strings = {};
    Stacks = {};
    Kernels = {};
  }
};

ThreadMemos &threadMemos() {
  thread_local ThreadMemos Memos;
  Memos.purgeIfStale();
  return Memos;
}

std::uint64_t nextArenaId() {
  static std::atomic<std::uint64_t> Next{1};
  return Next.fetch_add(1, std::memory_order_relaxed);
}

} // namespace

std::uint64_t PayloadString::contentHash() const {
  std::uint64_t Cached = HashCache.load(std::memory_order_relaxed);
  if (Cached != 0)
    return Cached;
  std::uint64_t Hash = hashString(str());
  HashCache.store(Hash, std::memory_order_relaxed);
  return Hash;
}

std::uint64_t PayloadStack::contentHash() const {
  std::uint64_t Cached = HashCache.load(std::memory_order_relaxed);
  if (Cached != 0)
    return Cached;
  std::uint64_t Hash = hashFrames(frames());
  HashCache.store(Hash, std::memory_order_relaxed);
  return Hash;
}

//===----------------------------------------------------------------------===//
// Shards
//===----------------------------------------------------------------------===//

/// One content-hash shard: its own mutex, bucket tables and counters.
/// All fields are guarded by Mutex; stats() walks the shards.
struct EventArena::Shard {
  std::mutex Mutex;
  /// Content-hash buckets; equality is verified within a bucket (the
  /// hash already routed to this shard, so buckets are per-shard).
  std::unordered_map<std::uint64_t,
                     std::vector<std::shared_ptr<const std::string>>>
      Strings;
  std::unordered_map<std::uint64_t,
                     std::vector<std::shared_ptr<
                         const std::vector<std::string>>>>
      Stacks;
  std::unordered_map<std::uint64_t,
                     std::vector<std::shared_ptr<const sim::KernelDesc>>>
      Kernels;
  EventArenaStats Counters;
};

std::size_t EventArena::defaultShardCount() {
  unsigned Hw = std::thread::hardware_concurrency();
  std::size_t Shards = 1;
  while (Shards < Hw && Shards < 16)
    Shards <<= 1;
  return Shards;
}

namespace {

std::size_t resolveShardCount(const EventArenaOptions &Opts) {
  if (Opts.Shards == 0)
    return EventArena::defaultShardCount();
  return std::min<std::size_t>(Opts.Shards, 64);
}

} // namespace

EventArena::EventArena() : EventArena(EventArenaOptions()) {}

EventArena::EventArena(const EventArenaOptions &Opts)
    : Opts(Opts), Id(nextArenaId()) {
  std::size_t Count = resolveShardCount(Opts);
  Shards.reserve(Count);
  for (std::size_t I = 0; I < Count; ++I)
    Shards.push_back(std::make_unique<Shard>());
}

EventArena::~EventArena() {
  // Tell every thread's memo to drop cached handles on its next intern
  // — otherwise producer threads would pin this arena's payloads (up
  // to the memo capacity each) for their remaining lifetime.
  ArenaDeathEpoch.fetch_add(1, std::memory_order_relaxed);
}

std::unique_lock<std::mutex> EventArena::lockShard(Shard &S) {
  std::unique_lock<std::mutex> Lock(S.Mutex, std::try_to_lock);
  if (!Lock.owns_lock()) {
    // Another producer holds this shard: the contention the sharding
    // exists to minimize. Count it, then wait.
    Contention.fetch_add(1, std::memory_order_relaxed);
    Lock.lock();
  }
  return Lock;
}

bool EventArena::pastByteCap(std::uint64_t AddedBytes) {
  if (Opts.MaxBytes == 0)
    return false;
  if (TotalBytes.load(std::memory_order_relaxed) + AddedBytes <=
      Opts.MaxBytes)
    return false;
  Fallbacks.fetch_add(1, std::memory_order_relaxed);
  if (!CapWarned.exchange(true, std::memory_order_relaxed))
    logWarning("EventArena: resident payloads reached the "
               "PASTA_ARENA_MAX_BYTES cap (" +
               std::to_string(Opts.MaxBytes) +
               " bytes); new payloads fall back to per-event owned "
               "pins without deduplication (counted as "
               "arena.evicted_fallbacks)");
  return true;
}

//===----------------------------------------------------------------------===//
// Event-level interning
//===----------------------------------------------------------------------===//

void EventArena::intern(Event &E) {
  // Pin the tensor pointee outside any lock (no table involved).
  // Descriptors live on the producing callback's stack and die when it
  // returns; an admitted event outlives that frame. Skip when already
  // owned (e.g. via the retainPointees compatibility shim) — interning
  // is idempotent, as the Events.h ownership doc promises.
  if (E.Tensor && !E.ownedTensor())
    E.adoptTensor(pinTensor(*E.Tensor));

  // Gather the payloads the memo cannot resolve, then visit each
  // involved shard exactly once. OpName/LayerName/Stack/Kernel is the
  // complete shardable payload set of an Event.
  enum PayloadKind : std::uint8_t { POpName, PLayerName, PStack, PKernel };
  struct PayloadOp {
    PayloadKind What;
    std::uint64_t Hash;
  };
  PayloadOp Ops[4];
  std::size_t NumOps = 0;
  ThreadMemos &Memos = threadMemos();
  const bool UseMemo = Opts.InternMemo;

  if (!E.OpName.empty()) {
    std::uint64_t Hash = E.OpName.contentHash();
    const auto *Cached =
        UseMemo ? Memos.Strings.lookup(Id, Hash) : nullptr;
    if (Cached && **Cached == E.OpName.str()) {
      E.OpName.adopt(*Cached);
      MemoHits.fetch_add(1, std::memory_order_relaxed);
    } else {
      Ops[NumOps++] = {POpName, Hash};
    }
  }
  if (!E.LayerName.empty()) {
    std::uint64_t Hash = E.LayerName.contentHash();
    const auto *Cached =
        UseMemo ? Memos.Strings.lookup(Id, Hash) : nullptr;
    if (Cached && **Cached == E.LayerName.str()) {
      E.LayerName.adopt(*Cached);
      MemoHits.fetch_add(1, std::memory_order_relaxed);
    } else {
      Ops[NumOps++] = {PLayerName, Hash};
    }
  }
  if (!E.PythonStack.empty()) {
    std::uint64_t Hash = E.PythonStack.contentHash();
    const auto *Cached =
        UseMemo ? Memos.Stacks.lookup(Id, Hash) : nullptr;
    if (Cached && **Cached == E.PythonStack.frames()) {
      E.PythonStack.adopt(*Cached);
      MemoHits.fetch_add(1, std::memory_order_relaxed);
    } else {
      Ops[NumOps++] = {PStack, Hash};
    }
  }
  if (E.Kernel) {
    std::uint64_t Hash = hashKernel(*E.Kernel);
    const auto *Cached =
        UseMemo ? Memos.Kernels.lookup(Id, Hash) : nullptr;
    if (Cached && kernelEqual(**Cached, *E.Kernel)) {
      E.adoptKernel(*Cached);
      MemoHits.fetch_add(1, std::memory_order_relaxed);
    } else {
      Ops[NumOps++] = {PKernel, Hash};
    }
  }
  if (NumOps == 0)
    return;

  // Group by shard: one lock acquisition per involved shard per event.
  bool Done[4] = {false, false, false, false};
  bool Resident[4] = {false, false, false, false};
  for (std::size_t I = 0; I < NumOps; ++I) {
    if (Done[I])
      continue;
    Shard &S = shardFor(Ops[I].Hash);
    std::unique_lock<std::mutex> Lock = lockShard(S);
    for (std::size_t J = I; J < NumOps; ++J) {
      if (Done[J] || &shardFor(Ops[J].Hash) != &S)
        continue;
      Done[J] = true;
      switch (Ops[J].What) {
      case POpName:
        E.OpName =
            internStringLocked(S, Ops[J].Hash, E.OpName, Resident[J]);
        break;
      case PLayerName:
        E.LayerName = internStringLocked(S, Ops[J].Hash, E.LayerName,
                                         Resident[J]);
        break;
      case PStack:
        E.PythonStack = internStackLocked(S, Ops[J].Hash, E.PythonStack,
                                          Resident[J]);
        break;
      case PKernel:
        E.adoptKernel(
            internKernelLocked(S, Ops[J].Hash, *E.Kernel, Resident[J]));
        break;
      }
    }
  }
  // Install the canonical results in the memo, outside any lock —
  // table-resident handles only: a guard-rail fallback pin is not
  // canonical, and memoizing it would hide subsequent fallbacks from
  // the arena.evicted_fallbacks accounting.
  if (UseMemo) {
    for (std::size_t I = 0; I < NumOps; ++I) {
      if (!Resident[I])
        continue;
      switch (Ops[I].What) {
      case POpName:
        if (E.OpName.handle())
          Memos.Strings.install(Id, Ops[I].Hash, E.OpName.handle());
        break;
      case PLayerName:
        if (E.LayerName.handle())
          Memos.Strings.install(Id, Ops[I].Hash, E.LayerName.handle());
        break;
      case PStack:
        if (E.PythonStack.handle())
          Memos.Stacks.install(Id, Ops[I].Hash, E.PythonStack.handle());
        break;
      case PKernel:
        if (E.ownedKernel())
          Memos.Kernels.install(Id, Ops[I].Hash, E.ownedKernel());
        break;
      }
    }
  }
}

//===----------------------------------------------------------------------===//
// Per-payload interning
//===----------------------------------------------------------------------===//

PayloadString EventArena::internString(const PayloadString &S) {
  if (S.empty())
    return S;
  std::uint64_t Hash = S.contentHash();
  ThreadMemos &Memos = threadMemos();
  if (Opts.InternMemo) {
    if (const auto *Cached = Memos.Strings.lookup(Id, Hash);
        Cached && **Cached == S.str()) {
      MemoHits.fetch_add(1, std::memory_order_relaxed);
      PayloadString Canonical;
      Canonical.adopt(*Cached);
      return Canonical;
    }
  }
  Shard &Sh = shardFor(Hash);
  PayloadString Result;
  bool Resident = false;
  {
    std::unique_lock<std::mutex> Lock = lockShard(Sh);
    Result = internStringLocked(Sh, Hash, S, Resident);
  }
  if (Opts.InternMemo && Resident && Result.handle())
    Memos.Strings.install(Id, Hash, Result.handle());
  return Result;
}

PayloadString EventArena::internStringLocked(Shard &S, std::uint64_t Hash,
                                             const PayloadString &Str,
                                             bool &Resident) {
  Resident = true;
  auto &Bucket = S.Strings[Hash];
  for (const auto &Existing : Bucket)
    if (*Existing == Str.str()) {
      ++S.Counters.Hits;
      PayloadString Canonical;
      Canonical.adopt(Existing);
      return Canonical;
    }
  // First sight: past the byte cap the payload keeps its own (per-event
  // owned) allocation; otherwise its existing allocation becomes the
  // canonical resident one (no copy either way).
  std::uint64_t Bytes = Str.size();
  if (pastByteCap(Bytes)) {
    if (Bucket.empty())
      S.Strings.erase(Hash);
    Resident = false;
    return Str;
  }
  Bucket.push_back(Str.handle());
  ++S.Counters.Misses;
  ++S.Counters.Strings;
  S.Counters.Bytes += Bytes;
  TotalBytes.fetch_add(Bytes, std::memory_order_relaxed);
  if (Val)
    Val->registerPayload(Str.handle().get(), "string");
  return Str;
}

PayloadStack EventArena::internStack(const PayloadStack &S) {
  if (S.empty())
    return S;
  std::uint64_t Hash = S.contentHash();
  ThreadMemos &Memos = threadMemos();
  if (Opts.InternMemo) {
    if (const auto *Cached = Memos.Stacks.lookup(Id, Hash);
        Cached && **Cached == S.frames()) {
      MemoHits.fetch_add(1, std::memory_order_relaxed);
      PayloadStack Canonical;
      Canonical.adopt(*Cached);
      return Canonical;
    }
  }
  Shard &Sh = shardFor(Hash);
  PayloadStack Result;
  bool Resident = false;
  {
    std::unique_lock<std::mutex> Lock = lockShard(Sh);
    Result = internStackLocked(Sh, Hash, S, Resident);
  }
  if (Opts.InternMemo && Resident && Result.handle())
    Memos.Stacks.install(Id, Hash, Result.handle());
  return Result;
}

PayloadStack EventArena::internStackLocked(Shard &S, std::uint64_t Hash,
                                           const PayloadStack &Stack,
                                           bool &Resident) {
  Resident = true;
  auto &Bucket = S.Stacks[Hash];
  for (const auto &Existing : Bucket)
    if (*Existing == Stack.frames()) {
      ++S.Counters.Hits;
      PayloadStack Canonical;
      Canonical.adopt(Existing);
      return Canonical;
    }
  std::uint64_t Bytes = stackBytes(Stack.frames());
  if (pastByteCap(Bytes)) {
    if (Bucket.empty())
      S.Stacks.erase(Hash);
    Resident = false;
    return Stack;
  }
  Bucket.push_back(Stack.handle());
  ++S.Counters.Misses;
  ++S.Counters.Stacks;
  S.Counters.Bytes += Bytes;
  TotalBytes.fetch_add(Bytes, std::memory_order_relaxed);
  if (Val)
    Val->registerPayload(Stack.handle().get(), "stack");
  return Stack;
}

std::shared_ptr<const sim::KernelDesc>
EventArena::internKernel(const sim::KernelDesc &K) {
  std::uint64_t Hash = hashKernel(K);
  ThreadMemos &Memos = threadMemos();
  if (Opts.InternMemo) {
    if (const auto *Cached = Memos.Kernels.lookup(Id, Hash);
        Cached && kernelEqual(**Cached, K)) {
      MemoHits.fetch_add(1, std::memory_order_relaxed);
      return *Cached;
    }
  }
  Shard &Sh = shardFor(Hash);
  std::shared_ptr<const sim::KernelDesc> Result;
  bool Resident = false;
  {
    std::unique_lock<std::mutex> Lock = lockShard(Sh);
    Result = internKernelLocked(Sh, Hash, K, Resident);
  }
  if (Opts.InternMemo && Resident && Result)
    Memos.Kernels.install(Id, Hash, Result);
  return Result;
}

std::shared_ptr<const sim::KernelDesc>
EventArena::internKernelLocked(Shard &S, std::uint64_t Hash,
                               const sim::KernelDesc &K,
                               bool &Resident) {
  Resident = true;
  auto &Bucket = S.Kernels[Hash];
  for (const auto &Existing : Bucket)
    if (kernelEqual(*Existing, K)) {
      ++S.Counters.Hits;
      return Existing;
    }
  std::uint64_t Bytes = kernelBytes(K);
  if (pastByteCap(Bytes)) {
    if (Bucket.empty())
      S.Kernels.erase(Hash);
    Resident = false;
    return std::make_shared<const sim::KernelDesc>(K);
  }
  auto Stored = std::make_shared<const sim::KernelDesc>(K);
  Bucket.push_back(Stored);
  ++S.Counters.Misses;
  ++S.Counters.Kernels;
  S.Counters.Bytes += Bytes;
  TotalBytes.fetch_add(Bytes, std::memory_order_relaxed);
  if (Val)
    Val->registerPayload(Stored.get(), "kernel");
  return Stored;
}

std::shared_ptr<const dl::TensorInfo>
EventArena::pinTensor(const dl::TensorInfo &T) {
  // Deliberately not interned: tensor identity is per-instance (id,
  // allocator address), so a dedup table would grow with event volume.
  // The one shared copy is what every fan-out lane references; it dies
  // with the last event handle.
  return std::make_shared<const dl::TensorInfo>(T);
}

EventArenaStats EventArena::stats() const {
  EventArenaStats Total;
  for (const auto &S : Shards) {
    std::lock_guard<std::mutex> Lock(S->Mutex);
    Total.Strings += S->Counters.Strings;
    Total.Stacks += S->Counters.Stacks;
    Total.Kernels += S->Counters.Kernels;
    Total.Bytes += S->Counters.Bytes;
    Total.Hits += S->Counters.Hits;
    Total.Misses += S->Counters.Misses;
  }
  // Memo hits are hits too: each one is an allocation (and its per-lane
  // copies) avoided, served without even a shard lock.
  Total.MemoHits = MemoHits.load(std::memory_order_relaxed);
  Total.Hits += Total.MemoHits;
  Total.ShardContention = Contention.load(std::memory_order_relaxed);
  Total.EvictedFallbacks = Fallbacks.load(std::memory_order_relaxed);
  Total.Shards = Shards.size();
  return Total;
}
