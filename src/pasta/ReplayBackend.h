//===- pasta/ReplayBackend.h - Trace-replay backend -------------*- C++ -*-===//
//
// Part of the PASTA reproduction, under the MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The fifth registered PlatformBackend: instead of observing a live
/// vendor runtime, "replay" re-admits a captured binary trace
/// (TraceReader) through the normal EventQueue/EventProcessor path —
/// capture once on a GPU host, analyze anywhere. Vendor-facing duties
/// (standing up the simulated runtime) are delegated to an inner "none"
/// backend so a replay session still builds a complete sim::System;
/// events, however, come from the trace, not from instrumentation.
///
/// Replay runs at full speed by default, or in scaled time
/// (SessionBuilder::replaySpeed / accelprof --replay-speed): a speed of
/// 1.0 reproduces the captured event spacing on the wall clock, 2.0
/// replays twice as fast. The trace is fully validated at session build
/// time (prepare()), so a corrupt file fails before any tool runs.
///
//===----------------------------------------------------------------------===//

#ifndef PASTA_PASTA_REPLAYBACKEND_H
#define PASTA_PASTA_REPLAYBACKEND_H

#include "pasta/Backend.h"
#include "pasta/TraceReader.h"

#include <cstdint>
#include <memory>
#include <string>

namespace pasta {

class EventProcessor;

/// Counters from one replay pump (fills the session's RunStats).
struct ReplayStats {
  std::uint64_t EventsReplayed = 0;
  std::uint64_t KernelLaunches = 0;
  std::uint64_t FirstTimestamp = 0;
  std::uint64_t LastTimestamp = 0;
};

/// PlatformBackend that replays a captured trace.
class ReplayBackend : public PlatformBackend {
public:
  /// \p Inner is a "none"-flavor backend for \p Vendor; it provides the
  /// runtime/attach plumbing so replay sessions share every other code
  /// path with live ones.
  ReplayBackend(sim::VendorKind Vendor,
                std::unique_ptr<PlatformBackend> Inner);

  std::string name() const override { return "replay"; }
  sim::VendorKind vendor() const override { return Vendor; }
  CapabilitySet capabilities() const override {
    return Inner->capabilities();
  }

  /// Defined out-of-line: dl::DeviceApi is only forward-declared here.
  std::unique_ptr<dl::DeviceApi> createRuntime(sim::System &System,
                                               int DeviceIndex) override;

  void attach(EventHandler &Handler, int DeviceIndex,
              const CapabilitySet &Enabled,
              const TraceOptions &Opts) override {
    Inner->attach(Handler, DeviceIndex, Enabled, Opts);
  }

  /// Points the backend at \p TracePath; \p Speed scales event pacing
  /// (0 = full speed, 1.0 = captured wall-clock spacing).
  void configure(std::string TracePath, double Speed);

  /// Opens and fully validates the trace. Called during session
  /// initialization so corruption fails at build() time.
  bool prepare(SessionError &Err);

  /// The validated trace summary (valid after prepare()).
  const TraceInfo &traceInfo() const { return Reader.info(); }
  const std::string &tracePath() const { return TracePath; }

  /// Pumps every trace event through \p Processor (on the calling
  /// thread; the processor applies its configured sync/async admission),
  /// honoring the configured speed. Payload tables are re-interned into
  /// the processor's arena first, so per-event admission is refcount
  /// bumps. False when prepare() has not validated a trace.
  bool replayInto(EventProcessor &Processor, ReplayStats &Stats,
                  SessionError &Err);

private:
  sim::VendorKind Vendor;
  std::unique_ptr<PlatformBackend> Inner;
  std::string TracePath;
  double Speed = 0.0;
  TraceReader Reader;
};

} // namespace pasta

#endif // PASTA_PASTA_REPLAYBACKEND_H
