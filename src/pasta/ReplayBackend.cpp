//===- pasta/ReplayBackend.cpp --------------------------------------------===//
//
// Part of the PASTA reproduction, under the MIT license.
//
//===----------------------------------------------------------------------===//

#include "pasta/ReplayBackend.h"

#include "dl/Backend.h"
#include "pasta/EventProcessor.h"
#include "pasta/Events.h"

#include <chrono>
#include <thread>
#include <utility>

using namespace pasta;

ReplayBackend::ReplayBackend(sim::VendorKind Vendor,
                             std::unique_ptr<PlatformBackend> Inner)
    : Vendor(Vendor), Inner(std::move(Inner)) {}

std::unique_ptr<dl::DeviceApi>
ReplayBackend::createRuntime(sim::System &System, int DeviceIndex) {
  return Inner->createRuntime(System, DeviceIndex);
}

void ReplayBackend::configure(std::string Path, double ReplaySpeed) {
  TracePath = std::move(Path);
  Speed = ReplaySpeed;
}

bool ReplayBackend::prepare(SessionError &Err) {
  if (TracePath.empty()) {
    Err.assign("backend 'replay' needs a trace file; pass --trace <file> "
               "(SessionBuilder::trace)");
    return false;
  }
  return Reader.open(TracePath, Err);
}

bool ReplayBackend::replayInto(EventProcessor &Processor, ReplayStats &Stats,
                               SessionError &Err) {
  if (!Reader.isOpen()) {
    Err.assign("replay backend has no validated trace (prepare() not run)");
    return false;
  }
  Stats = ReplayStats();
  Stats.FirstTimestamp = Reader.info().FirstTimestamp;
  Stats.LastTimestamp = Reader.info().LastTimestamp;

  using Clock = std::chrono::steady_clock;
  const Clock::time_point WallStart = Clock::now();
  const std::uint64_t TraceStart = Reader.info().FirstTimestamp;
  const double Pace = Speed;

  Reader.forEachEvent(&Processor.arena(), [&](Event &E) {
    if (Pace > 0.0 && E.Timestamp >= TraceStart) {
      // Scaled time: admit each event when its captured offset (divided
      // by the speed factor) has elapsed on the wall clock.
      auto Target =
          WallStart + std::chrono::nanoseconds(static_cast<std::uint64_t>(
                          static_cast<double>(E.Timestamp - TraceStart) /
                          Pace));
      if (Clock::now() < Target)
        std::this_thread::sleep_until(Target);
    }
    if (E.Kind == EventKind::KernelLaunch)
      ++Stats.KernelLaunches;
    Processor.process(std::move(E));
    ++Stats.EventsReplayed;
  });
  return true;
}
