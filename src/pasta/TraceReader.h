//===- pasta/TraceReader.h - Binary trace loading ---------------*- C++ -*-===//
//
// Part of the PASTA reproduction, under the MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Loads a PASTA binary trace (TraceFormat.h / docs/TRACE_FORMAT.md)
/// back into Events. open() reads the whole file and performs a full
/// structural scan up front — header, every record prefix, every field
/// range, every payload-table reference, and the required End record —
/// so corruption, truncation and version mismatches fail at session
/// *build* time with a SessionError naming the file, byte offset and
/// expected magic/version. There is no partial-replay mode: a trace
/// either validates completely or yields zero events.
///
/// forEachEvent() re-interns the payload tables into the session's
/// EventArena once, up front; decoding an event then costs refcount
/// bumps on canonical handles — the replay-admission fast path.
///
/// TraceStreamDecoder is the incremental sibling: the same record
/// grammar and the same validation, but fed arbitrary byte chunks as
/// they arrive off a socket (`accelprof --serve`, docs/SERVE.md), with
/// events surfaced as soon as their record is complete instead of
/// after a whole-file scan.
///
//===----------------------------------------------------------------------===//

#ifndef PASTA_PASTA_TRACEREADER_H
#define PASTA_PASTA_TRACEREADER_H

#include "pasta/EventArena.h"
#include "pasta/SessionError.h"

#include <cstdint>
#include <functional>
#include <memory>
#include <string>
#include <vector>

namespace pasta {

struct Event;
class EventArena;

/// Summary of a validated trace (available after open()).
struct TraceInfo {
  std::uint64_t Events = 0;
  std::uint64_t Strings = 0;
  std::uint64_t Stacks = 0;
  std::uint64_t Kernels = 0;
  /// KernelLaunch events seen (replay's RunStats.KernelsLaunched).
  std::uint64_t KernelLaunches = 0;
  /// Timestamps of the first/last event in stream order (0/0 when the
  /// trace holds no events) — the source of replay pacing and of the
  /// synthesized RunStats window.
  std::uint64_t FirstTimestamp = 0;
  std::uint64_t LastTimestamp = 0;
  std::uint64_t FileBytes = 0;
};

/// Validating loader for PASTA binary traces.
///
/// Not thread-safe; replay pumps events from a single thread.
class TraceReader {
public:
  TraceReader() = default;
  TraceReader(const TraceReader &) = delete;
  TraceReader &operator=(const TraceReader &) = delete;

  /// Reads and fully validates \p Path. False on any structural problem
  /// with a diagnostic naming the file and offset; the reader then
  /// holds no events.
  bool open(const std::string &Path, SessionError &Err);

  bool isOpen() const { return Loaded; }
  const std::string &path() const { return FilePath; }
  const TraceInfo &info() const { return Info; }

  /// Decodes every event in stream order and hands it to \p Fn. When
  /// \p Arena is non-null the payload tables are re-interned into it
  /// first, so the handles each decoded event carries are canonical
  /// arena handles and per-event cost is reference-count bumps. May be
  /// called repeatedly (each call re-interns; interning is idempotent).
  void forEachEvent(EventArena *Arena,
                    const std::function<void(Event &)> &Fn);

private:
  bool scan(SessionError &Err);
  bool fail(SessionError &Err, const std::string &Message);

  std::string FilePath;
  bool Loaded = false;
  TraceInfo Info;
  /// Whole-file buffer; EventOffsets index record *bodies* inside it.
  std::vector<unsigned char> Buffer;
  struct EventSpan {
    std::size_t Offset = 0;
    std::uint32_t Length = 0;
  };
  std::vector<EventSpan> EventSpans;
  /// Payload tables decoded at open() (index = id - 1).
  std::vector<PayloadString> StringTable;
  std::vector<PayloadStack> StackTable;
  std::vector<std::shared_ptr<const sim::KernelDesc>> KernelTable;
};

/// Incremental decoder for one *streamed* PASTA trace — the byte
/// stream a TraceStreamSink connection carries (a trace whose header
/// flags word is trace::kFlagStreamed). feed() accepts arbitrary byte
/// chunks; transport frame boundaries need not align with record
/// boundaries. Every record that completes is decoded immediately and
/// each event is handed to the callback with payload handles interned
/// into the target arena, so admission into the aggregator's tenant
/// session costs refcount bumps exactly as in file replay.
///
/// Validation matches TraceReader record for record: sequential table
/// ids, payload-reference ranges, enum ranges, oversized/truncated
/// bodies, End-record count cross-check, and no trailing data after
/// End. The first violation latches the decoder failed with a
/// diagnostic naming the absolute stream byte offset; a failed decoder
/// ignores further feed() calls, so one malformed client cannot smear
/// partial records into a tenant session.
///
/// Not thread-safe; the owning connection feeds it from one thread.
class TraceStreamDecoder {
public:
  /// \p Arena receives interned payloads (may be null in tests; events
  /// then carry per-stream handles).
  explicit TraceStreamDecoder(EventArena *Arena) : Arena(Arena) {}

  /// Consumes \p Size bytes, invoking \p Fn once per completed event.
  /// False on the first structural violation (decoder is then dead).
  bool feed(const unsigned char *Data, std::size_t Size,
            const std::function<void(Event &)> &Fn, SessionError &Err);

  /// Declares end-of-stream: a stream that stops before its End record
  /// (or mid-record) is truncated, same as a truncated capture file.
  bool finish(SessionError &Err);

  /// True once the End record arrived and its counts cross-checked.
  bool finished() const { return SawEnd; }
  bool failed() const { return Failed; }

  /// Running totals (FileBytes counts stream bytes consumed so far).
  const TraceInfo &info() const { return Info; }

private:
  bool fail(SessionError &Err, const std::string &Message);
  /// Decodes one complete record body. False ⇒ structural violation.
  bool decodeRecord(std::uint8_t Tag, const unsigned char *Body,
                    std::uint32_t Length, std::size_t RecordOffset,
                    const std::function<void(Event &)> &Fn,
                    SessionError &Err);

  EventArena *Arena;
  /// Unconsumed tail of the stream; BaseOffset is the absolute stream
  /// offset of Pending[0].
  std::vector<unsigned char> Pending;
  std::size_t BaseOffset = 0;
  bool SawHeader = false;
  bool SawEnd = false;
  bool Failed = false;
  TraceInfo Info;
  /// Payload tables, interned into Arena at definition time.
  std::vector<PayloadString> Strings;
  std::vector<PayloadStack> Stacks;
  std::vector<std::shared_ptr<const sim::KernelDesc>> Kernels;
};

} // namespace pasta

#endif // PASTA_PASTA_TRACEREADER_H
