//===- pasta/TraceReader.h - Binary trace loading ---------------*- C++ -*-===//
//
// Part of the PASTA reproduction, under the MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Loads a PASTA binary trace (TraceFormat.h / docs/TRACE_FORMAT.md)
/// back into Events. open() reads the whole file and performs a full
/// structural scan up front — header, every record prefix, every field
/// range, every payload-table reference, and the required End record —
/// so corruption, truncation and version mismatches fail at session
/// *build* time with a SessionError naming the file, byte offset and
/// expected magic/version. There is no partial-replay mode: a trace
/// either validates completely or yields zero events.
///
/// forEachEvent() re-interns the payload tables into the session's
/// EventArena once, up front; decoding an event then costs refcount
/// bumps on canonical handles — the replay-admission fast path.
///
//===----------------------------------------------------------------------===//

#ifndef PASTA_PASTA_TRACEREADER_H
#define PASTA_PASTA_TRACEREADER_H

#include "pasta/EventArena.h"
#include "pasta/SessionError.h"

#include <cstdint>
#include <functional>
#include <memory>
#include <string>
#include <vector>

namespace pasta {

struct Event;
class EventArena;

/// Summary of a validated trace (available after open()).
struct TraceInfo {
  std::uint64_t Events = 0;
  std::uint64_t Strings = 0;
  std::uint64_t Stacks = 0;
  std::uint64_t Kernels = 0;
  /// KernelLaunch events seen (replay's RunStats.KernelsLaunched).
  std::uint64_t KernelLaunches = 0;
  /// Timestamps of the first/last event in stream order (0/0 when the
  /// trace holds no events) — the source of replay pacing and of the
  /// synthesized RunStats window.
  std::uint64_t FirstTimestamp = 0;
  std::uint64_t LastTimestamp = 0;
  std::uint64_t FileBytes = 0;
};

/// Validating loader for PASTA binary traces.
///
/// Not thread-safe; replay pumps events from a single thread.
class TraceReader {
public:
  TraceReader() = default;
  TraceReader(const TraceReader &) = delete;
  TraceReader &operator=(const TraceReader &) = delete;

  /// Reads and fully validates \p Path. False on any structural problem
  /// with a diagnostic naming the file and offset; the reader then
  /// holds no events.
  bool open(const std::string &Path, SessionError &Err);

  bool isOpen() const { return Loaded; }
  const std::string &path() const { return FilePath; }
  const TraceInfo &info() const { return Info; }

  /// Decodes every event in stream order and hands it to \p Fn. When
  /// \p Arena is non-null the payload tables are re-interned into it
  /// first, so the handles each decoded event carries are canonical
  /// arena handles and per-event cost is reference-count bumps. May be
  /// called repeatedly (each call re-interns; interning is idempotent).
  void forEachEvent(EventArena *Arena,
                    const std::function<void(Event &)> &Fn);

private:
  bool scan(SessionError &Err);
  bool fail(SessionError &Err, const std::string &Message);

  std::string FilePath;
  bool Loaded = false;
  TraceInfo Info;
  /// Whole-file buffer; EventOffsets index record *bodies* inside it.
  std::vector<unsigned char> Buffer;
  struct EventSpan {
    std::size_t Offset = 0;
    std::uint32_t Length = 0;
  };
  std::vector<EventSpan> EventSpans;
  /// Payload tables decoded at open() (index = id - 1).
  std::vector<PayloadString> StringTable;
  std::vector<PayloadStack> StackTable;
  std::vector<std::shared_ptr<const sim::KernelDesc>> KernelTable;
};

} // namespace pasta

#endif // PASTA_PASTA_TRACEREADER_H
