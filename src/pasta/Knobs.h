//===- pasta/Knobs.h - Inefficiency-location knobs --------------*- C++ -*-===//
//
// Part of the PASTA reproduction, under the MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Predefined selective-analysis knobs (paper §III-F2): rather than
/// capturing full context for every runtime event, users enable knobs
/// like MAX_MEM_REFERENCED_KERNEL or MAX_CALLED_KERNEL and PASTA captures
/// the cross-layer call stack only for the selected kernel. Custom knobs
/// extend the same mechanism.
///
//===----------------------------------------------------------------------===//

#ifndef PASTA_PASTA_KNOBS_H
#define PASTA_PASTA_KNOBS_H

#include "support/Env.h"

namespace pasta {

/// Knob settings resolved from the environment.
struct Knobs {
  /// Capture the call stack of the kernel with the most memory
  /// references (the paper's Fig. 4 selection).
  bool MaxMemReferencedKernel = false;
  /// Capture the call stack of the most frequently invoked kernel.
  bool MaxCalledKernel = false;

  static Knobs fromEnv() {
    Knobs K;
    K.MaxMemReferencedKernel =
        getEnvBool("MAX_MEM_REFERENCED_KERNEL", false);
    K.MaxCalledKernel = getEnvBool("MAX_CALLED_KERNEL", false);
    return K;
  }
};

} // namespace pasta

#endif // PASTA_PASTA_KNOBS_H
