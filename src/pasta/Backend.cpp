//===- pasta/Backend.cpp --------------------------------------------------===//
//
// Part of the PASTA reproduction, under the MIT license.
//
//===----------------------------------------------------------------------===//

#include "pasta/Backend.h"

#include "cuda/CudaBackend.h"
#include "hip/HipBackend.h"
#include "pasta/ReplayBackend.h"
#include "support/Format.h"
#include "support/Logging.h"

using namespace pasta;

PlatformBackend::~PlatformBackend() = default;

BackendRegistry &BackendRegistry::instance() {
  static BackendRegistry Registry;
  registerBuiltinBackends();
  return Registry;
}

void BackendRegistry::registerBackend(const std::string &Name,
                                      Factory MakeBackend) {
  registerBackend(Name, std::string(), std::move(MakeBackend));
}

void BackendRegistry::registerBackend(const std::string &Name,
                                      std::string Description,
                                      Factory MakeBackend) {
  auto [It, Inserted] = Factories.emplace(
      Name, Entry{std::move(MakeBackend), std::move(Description)});
  if (!Inserted)
    logWarning("backend registered twice: " + Name);
}

std::unique_ptr<PlatformBackend>
BackendRegistry::create(const std::string &Name, sim::VendorKind Vendor,
                        SessionError &Err) const {
  auto It = Factories.find(Name);
  if (It == Factories.end()) {
    std::vector<std::string> Known = registeredNames();
    Err.assign("unknown backend '" + Name + "'; registered backends: " +
               (Known.empty() ? "<none>" : join(Known, ", ")));
    return nullptr;
  }
  return It->second.MakeBackend(Vendor, Err);
}

std::vector<std::string> BackendRegistry::registeredNames() const {
  std::vector<std::string> Names;
  Names.reserve(Factories.size());
  for (const auto &[Name, Entry] : Factories)
    Names.push_back(Name);
  return Names;
}

std::string BackendRegistry::description(const std::string &Name) const {
  auto It = Factories.find(Name);
  return It == Factories.end() ? std::string() : It->second.Description;
}

void pasta::registerBuiltinBackends() {
  static bool Done = false;
  if (Done)
    return;
  Done = true;

  // One mode name maps to the vendor-appropriate adapter — tool code and
  // drivers never mention a vendor.
  auto PerVendor = [](const std::string &Name, TraceBackend Flavor) {
    return [Name, Flavor](sim::VendorKind Vendor, SessionError &Err)
               -> std::unique_ptr<PlatformBackend> {
      (void)Err;
      if (Vendor == sim::VendorKind::NVIDIA)
        return std::make_unique<cuda::CudaBackend>(Name, Flavor);
      return std::make_unique<hip::HipBackend>(Name, Flavor);
    };
  };

  BackendRegistry &Registry = BackendRegistry::instance();
  Registry.registerBackend("none",
                           "coarse host-API events only, no device "
                           "instrumentation",
                           PerVendor("none", TraceBackend::None));
  Registry.registerBackend("cs-gpu",
                           "Sanitizer/ROCprofiler-style GPU-resident "
                           "collect-and-analyze instrumentation",
                           PerVendor("cs-gpu", TraceBackend::SanitizerGpu));
  Registry.registerBackend("cs-cpu",
                           "Sanitizer/ROCprofiler-style instrumentation, "
                           "records analyzed on the host",
                           PerVendor("cs-cpu", TraceBackend::SanitizerCpu));
  Registry.registerBackend(
      "nvbit-cpu",
      "NVBit-style full-SASS coverage with host analysis (NVIDIA-only)",
      [](sim::VendorKind Vendor,
         SessionError &Err) -> std::unique_ptr<PlatformBackend> {
        if (Vendor != sim::VendorKind::NVIDIA) {
          Err.assign("backend 'nvbit-cpu' is NVIDIA-only; use cs-gpu or "
                     "cs-cpu on AMD GPUs");
          return nullptr;
        }
        return std::make_unique<cuda::CudaBackend>("nvbit-cpu",
                                                   TraceBackend::NvbitCpu);
      });
  Registry.registerBackend(
      "replay",
      "re-admits a captured binary trace (--trace <file>) through the "
      "normal event pipeline",
      [PerVendor](sim::VendorKind Vendor,
                  SessionError &Err) -> std::unique_ptr<PlatformBackend> {
        std::unique_ptr<PlatformBackend> Inner =
            PerVendor("none", TraceBackend::None)(Vendor, Err);
        if (!Inner)
          return nullptr;
        return std::make_unique<ReplayBackend>(Vendor, std::move(Inner));
      });
}
