//===- pasta/Backend.cpp --------------------------------------------------===//
//
// Part of the PASTA reproduction, under the MIT license.
//
//===----------------------------------------------------------------------===//

#include "pasta/Backend.h"

#include "cuda/CudaBackend.h"
#include "hip/HipBackend.h"
#include "support/Format.h"
#include "support/Logging.h"

using namespace pasta;

PlatformBackend::~PlatformBackend() = default;

BackendRegistry &BackendRegistry::instance() {
  static BackendRegistry Registry;
  registerBuiltinBackends();
  return Registry;
}

void BackendRegistry::registerBackend(const std::string &Name,
                                      Factory MakeBackend) {
  auto [It, Inserted] = Factories.emplace(Name, std::move(MakeBackend));
  if (!Inserted)
    logWarning("backend registered twice: " + Name);
}

std::unique_ptr<PlatformBackend>
BackendRegistry::create(const std::string &Name, sim::VendorKind Vendor,
                        SessionError &Err) const {
  auto It = Factories.find(Name);
  if (It == Factories.end()) {
    std::vector<std::string> Known = registeredNames();
    Err.assign("unknown backend '" + Name + "'; registered backends: " +
               (Known.empty() ? "<none>" : join(Known, ", ")));
    return nullptr;
  }
  return It->second(Vendor, Err);
}

std::vector<std::string> BackendRegistry::registeredNames() const {
  std::vector<std::string> Names;
  Names.reserve(Factories.size());
  for (const auto &[Name, Factory] : Factories)
    Names.push_back(Name);
  return Names;
}

void pasta::registerBuiltinBackends() {
  static bool Done = false;
  if (Done)
    return;
  Done = true;

  // One mode name maps to the vendor-appropriate adapter — tool code and
  // drivers never mention a vendor.
  auto PerVendor = [](const std::string &Name, TraceBackend Flavor) {
    return [Name, Flavor](sim::VendorKind Vendor, SessionError &Err)
               -> std::unique_ptr<PlatformBackend> {
      (void)Err;
      if (Vendor == sim::VendorKind::NVIDIA)
        return std::make_unique<cuda::CudaBackend>(Name, Flavor);
      return std::make_unique<hip::HipBackend>(Name, Flavor);
    };
  };

  BackendRegistry &Registry = BackendRegistry::instance();
  Registry.registerBackend("none", PerVendor("none", TraceBackend::None));
  Registry.registerBackend("cs-gpu",
                           PerVendor("cs-gpu", TraceBackend::SanitizerGpu));
  Registry.registerBackend("cs-cpu",
                           PerVendor("cs-cpu", TraceBackend::SanitizerCpu));
  Registry.registerBackend(
      "nvbit-cpu",
      [](sim::VendorKind Vendor,
         SessionError &Err) -> std::unique_ptr<PlatformBackend> {
        if (Vendor != sim::VendorKind::NVIDIA) {
          Err.assign("backend 'nvbit-cpu' is NVIDIA-only; use cs-gpu or "
                     "cs-cpu on AMD GPUs");
          return nullptr;
        }
        return std::make_unique<cuda::CudaBackend>("nvbit-cpu",
                                                   TraceBackend::NvbitCpu);
      });
}
