//===- pasta/EventHandler.cpp ---------------------------------------------===//
//
// Part of the PASTA reproduction, under the MIT license.
//
//===----------------------------------------------------------------------===//

#include "pasta/EventHandler.h"

#include "support/ErrorHandling.h"

#include <cassert>

using namespace pasta;

const char *pasta::traceBackendName(TraceBackend Backend) {
  switch (Backend) {
  case TraceBackend::None:
    return "none";
  case TraceBackend::SanitizerGpu:
    return "CS-GPU";
  case TraceBackend::SanitizerCpu:
    return "CS-CPU";
  case TraceBackend::NvbitCpu:
    return "NVBIT-CPU";
  }
  PASTA_UNREACHABLE("unknown TraceBackend");
}

EventHandler::EventHandler(EventProcessor &Processor)
    : Processor(Processor) {}

EventHandler::~EventHandler() { detach(); }

void EventHandler::attachCuda(cuda::CudaRuntime &Runtime, int DeviceIndex,
                              const TraceOptions &Opts) {
  CudaAttachment Attachment;
  Attachment.Runtime = &Runtime;
  Attachment.DeviceIndex = DeviceIndex;
  Attachment.Backend = Opts.Backend;

  // Host-level events: subscribe on every Sanitizer domain.
  Attachment.Subscriber = Runtime.sanitizer().subscribe(
      [this](const cuda::SanitizerCallbackData &Data) {
        handleSanitizer(Data);
      });
  Runtime.sanitizer().enableAllDomains(Attachment.Subscriber);

  // Fine-grained device tracing per the chosen backend.
  switch (Opts.Backend) {
  case TraceBackend::None:
    break;
  case TraceBackend::SanitizerGpu:
    Runtime.sanitizer().patchMemoryAccesses(
        DeviceIndex, &Processor, sim::AnalysisModel::DeviceResident,
        Opts.DeviceBufferRecords, Opts.SampleRate,
        Opts.RecordGranularityBytes);
    break;
  case TraceBackend::SanitizerCpu:
    Runtime.sanitizer().patchMemoryAccesses(
        DeviceIndex, &Processor, sim::AnalysisModel::HostSide,
        Opts.DeviceBufferRecords, Opts.SampleRate,
        Opts.RecordGranularityBytes);
    break;
  case TraceBackend::NvbitCpu:
    Runtime.nvbit().instrumentAllInstructions(
        DeviceIndex, &Processor, sim::AnalysisModel::HostSide,
        Opts.DeviceBufferRecords, Opts.SampleRate,
        Opts.RecordGranularityBytes);
    break;
  }
  CudaAttachments.push_back(Attachment);
}

void EventHandler::attachHip(hip::HipRuntime &Runtime, int AgentIndex,
                             const TraceOptions &Opts) {
  if (Opts.Backend == TraceBackend::NvbitCpu)
    reportFatalError("NVBit backends are NVIDIA-only; use the "
                     "ROCprofiler device-tracing service on AMD");

  HipAttachment Attachment;
  Attachment.Runtime = &Runtime;
  Attachment.AgentIndex = AgentIndex;
  Attachment.Backend = Opts.Backend;

  int Slot = static_cast<int>(HipAttachments.size());
  Runtime.rocprofiler().configureCallback(
      [this, Slot](const hip::RocprofilerRecord &Record) {
        handleRocprofiler(Slot, Record);
      });

  switch (Opts.Backend) {
  case TraceBackend::None:
  case TraceBackend::NvbitCpu:
    break;
  case TraceBackend::SanitizerGpu:
    Runtime.rocprofiler().configureDeviceTracing(
        AgentIndex, &Processor, sim::AnalysisModel::DeviceResident,
        Opts.DeviceBufferRecords, Opts.SampleRate,
        Opts.RecordGranularityBytes);
    break;
  case TraceBackend::SanitizerCpu:
    Runtime.rocprofiler().configureDeviceTracing(
        AgentIndex, &Processor, sim::AnalysisModel::HostSide,
        Opts.DeviceBufferRecords, Opts.SampleRate,
        Opts.RecordGranularityBytes);
    break;
  }
  HipAttachments.push_back(Attachment);
}

void EventHandler::attachDl(dl::CallbackRegistry &Callbacks) {
  Callbacks.addMemoryUsageCallback([this](const dl::MemoryUsageReport &R) {
    Event E;
    E.Kind = R.SizeDelta >= 0 ? EventKind::TensorAlloc
                              : EventKind::TensorReclaim;
    E.DeviceIndex = R.DeviceIndex;
    E.Timestamp = R.Timestamp;
    E.Tensor = R.Tensor;
    // Normalization: sizes are always positive in PASTA events.
    E.Bytes = static_cast<std::uint64_t>(
        R.SizeDelta >= 0 ? R.SizeDelta : -R.SizeDelta);
    E.Address = R.Tensor ? R.Tensor->Address : 0;
    E.PoolAllocated = R.TotalAllocated;
    E.PoolReserved = R.TotalReserved;
    Processor.process(std::move(E));
  });
  Callbacks.addRecordFunctionCallback(
      [this](const dl::RecordFunctionData &Data) {
        Event E;
        E.Kind = Data.IsBegin ? EventKind::OperatorStart
                              : EventKind::OperatorEnd;
        E.DeviceIndex = Data.DeviceIndex;
        E.Timestamp = Data.Timestamp;
        E.OpName = Data.OpName;
        E.LayerName = Data.LayerName;
        E.Phase = Data.Phase;
        E.PythonStack = Data.PythonStack;
        Processor.process(std::move(E));
      });
}

void EventHandler::detach() {
  for (CudaAttachment &Attachment : CudaAttachments) {
    Attachment.Runtime->sanitizer().unsubscribe(Attachment.Subscriber);
    if (Attachment.Backend == TraceBackend::NvbitCpu)
      Attachment.Runtime->nvbit().removeInstrumentation(
          Attachment.DeviceIndex);
    else if (Attachment.Backend != TraceBackend::None)
      Attachment.Runtime->sanitizer().unpatch(Attachment.DeviceIndex);
  }
  CudaAttachments.clear();
  for (HipAttachment &Attachment : HipAttachments) {
    if (Attachment.Backend != TraceBackend::None)
      Attachment.Runtime->rocprofiler().stopDeviceTracing(
          Attachment.AgentIndex);
  }
  HipAttachments.clear();
}

void EventHandler::handleSanitizer(const cuda::SanitizerCallbackData &Data) {
  Event E;
  E.Vendor = sim::VendorKind::NVIDIA;
  E.DeviceIndex = Data.DeviceIndex;
  E.Stream = Data.Stream;
  E.Timestamp = Data.Timestamp;

  switch (Data.Cbid) {
  case cuda::SanitizerCbid::MemoryAlloc:
  case cuda::SanitizerCbid::ManagedMemoryAlloc:
    E.Kind = EventKind::MemoryAlloc;
    E.Address = Data.Address;
    E.Bytes = Data.Bytes;
    E.Managed = Data.Managed;
    break;
  case cuda::SanitizerCbid::MemoryFree:
    E.Kind = EventKind::MemoryFree;
    E.Address = Data.Address;
    E.Bytes = Data.Bytes;
    E.Managed = Data.Managed;
    break;
  case cuda::SanitizerCbid::LaunchBegin:
    E.Kind = EventKind::KernelLaunch;
    E.Kernel = Data.Kernel;
    E.GridId = Data.GridId;
    break;
  case cuda::SanitizerCbid::LaunchEnd:
    E.Kind = EventKind::KernelComplete;
    E.Kernel = Data.Kernel;
    E.GridId = Data.GridId;
    break;
  case cuda::SanitizerCbid::MemcpyBegin:
    E.Kind = EventKind::MemoryCopy;
    E.Address = Data.Address;
    E.Bytes = Data.Bytes;
    switch (Data.CopyKind) {
    case cuda::CudaMemcpyKind::HostToDevice:
      E.Direction = CopyDirection::HostToDevice;
      break;
    case cuda::CudaMemcpyKind::DeviceToHost:
      E.Direction = CopyDirection::DeviceToHost;
      break;
    case cuda::CudaMemcpyKind::DeviceToDevice:
      E.Direction = CopyDirection::DeviceToDevice;
      break;
    }
    break;
  case cuda::SanitizerCbid::MemsetBegin:
    E.Kind = EventKind::MemorySet;
    E.Address = Data.Address;
    E.Bytes = Data.Bytes;
    break;
  case cuda::SanitizerCbid::SynchronizeBegin:
    E.Kind = EventKind::Synchronization;
    break;
  case cuda::SanitizerCbid::StreamCreated:
    E.Kind = EventKind::StreamCreate;
    break;
  case cuda::SanitizerCbid::StreamDestroyed:
    E.Kind = EventKind::StreamDestroy;
    break;
  case cuda::SanitizerCbid::MemPrefetch:
  case cuda::SanitizerCbid::MemAdvise:
    E.Kind = EventKind::BatchMemoryOp;
    E.Address = Data.Address;
    E.Bytes = Data.Bytes;
    E.Managed = true;
    break;
  }
  Processor.process(std::move(E));
}

void EventHandler::handleRocprofiler(int RuntimeSlot,
                                     const hip::RocprofilerRecord &Record) {
  (void)RuntimeSlot;
  Event E;
  E.Vendor = sim::VendorKind::AMD;
  E.DeviceIndex = Record.AgentIndex;
  E.Stream = Record.QueueId;
  // Normalization: AMD reports microsecond ticks.
  E.Timestamp = Record.TimestampUs * Microsecond;

  switch (Record.Op) {
  case hip::RocprofilerOp::HipMallocOp:
  case hip::RocprofilerOp::HipMallocManagedOp:
    // Normalization: frees arrive as negative deltas on the alloc op.
    E.Kind = Record.SizeDelta >= 0 ? EventKind::MemoryAlloc
                                   : EventKind::MemoryFree;
    E.Address = Record.Address;
    E.Bytes = static_cast<std::uint64_t>(
        Record.SizeDelta >= 0 ? Record.SizeDelta : -Record.SizeDelta);
    E.Managed = Record.Managed;
    break;
  case hip::RocprofilerOp::KernelDispatch:
    // Normalization: AMD "dispatch" == kernel launch.
    E.Kind = EventKind::KernelLaunch;
    E.Kernel = Record.Kernel;
    E.GridId = Record.DispatchId;
    break;
  case hip::RocprofilerOp::MemoryCopy:
    E.Kind = EventKind::MemoryCopy;
    E.Address = Record.Address;
    E.Bytes = static_cast<std::uint64_t>(Record.SizeDelta);
    E.Direction = Record.CopyDirection == 0
                      ? CopyDirection::HostToDevice
                      : Record.CopyDirection == 1
                            ? CopyDirection::DeviceToHost
                            : CopyDirection::DeviceToDevice;
    break;
  case hip::RocprofilerOp::MemorySet:
    E.Kind = EventKind::MemorySet;
    E.Address = Record.Address;
    E.Bytes = static_cast<std::uint64_t>(Record.SizeDelta);
    break;
  case hip::RocprofilerOp::Synchronize:
    E.Kind = EventKind::Synchronization;
    break;
  case hip::RocprofilerOp::MemPrefetch:
  case hip::RocprofilerOp::MemAdvise:
    E.Kind = EventKind::BatchMemoryOp;
    E.Address = Record.Address;
    E.Bytes = static_cast<std::uint64_t>(Record.SizeDelta);
    E.Managed = true;
    break;
  }
  Processor.process(std::move(E));
}
