//===- pasta/CallStack.h - Cross-layer call stacks --------------*- C++ -*-===//
//
// Part of the PASTA reproduction, under the MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Cross-level inefficiency location utilities (paper §III-F2, Fig. 4):
/// PASTA combines the Python-side stack (CPython PyFrame in the real
/// system; provided by the DL framework callbacks here) with C/C++ frames
/// (libbacktrace in the real system; synthesized per kernel family here)
/// into a single cross-layer stack — the view neither Nsight Systems
/// (C++ only) nor the PyTorch Profiler (Python only) can give.
///
//===----------------------------------------------------------------------===//

#ifndef PASTA_PASTA_CALLSTACK_H
#define PASTA_PASTA_CALLSTACK_H

#include "pasta/EventArena.h"

#include <mutex>
#include <string>
#include <vector>

namespace pasta {

/// One frame of a cross-layer stack.
struct StackFrame {
  enum class Lang { Python, Cpp } Language = Lang::Cpp;
  std::string Text; ///< "file:line symbol" rendering.
};

/// Full cross-layer stack, innermost (device-adjacent C++) first.
struct CrossLayerStack {
  std::vector<StackFrame> Frames;

  /// Multi-line rendering matching the paper's Fig. 4 layout (C/C++
  /// frames first, Python frames below).
  std::string str() const;
};

/// Builds cross-layer stacks. The event processor feeds it the current
/// Python stack on every OperatorStart; capture() synthesizes the C++
/// frames leading to a given kernel (the libbacktrace role).
///
/// Thread-safe: the asynchronous dispatch unit updates the shared
/// builder from producer threads at admission time while tools capture
/// from dispatch lanes, so the Python context is guarded internally.
///
/// The context is held as a shared immutable PayloadStack handle, so
/// feeding the same interned stack to every capturing lane's builder is
/// a reference-count bump per lane, not a frame-vector copy.
class CallStackBuilder {
public:
  void setPythonStack(PayloadStack Frames) {
    std::lock_guard<std::mutex> Lock(Mutex);
    PythonFrames = std::move(Frames);
  }
  PayloadStack pythonStack() const {
    std::lock_guard<std::mutex> Lock(Mutex);
    return PythonFrames;
  }

  /// Synthesizes the full cross-layer stack for \p KernelName using the
  /// current Python context.
  CrossLayerStack capture(const std::string &KernelName) const;

private:
  mutable std::mutex Mutex;
  PayloadStack PythonFrames;
};

} // namespace pasta

#endif // PASTA_PASTA_CALLSTACK_H
