//===- hip/Rocprofiler.cpp ------------------------------------------------===//
//
// Part of the PASTA reproduction, under the MIT license.
//
//===----------------------------------------------------------------------===//

#include "hip/Rocprofiler.h"

#include "hip/HipRuntime.h"

#include <cassert>

using namespace pasta;
using namespace pasta::hip;

void RocprofilerApi::configureCallback(RocprofilerCallback Callback) {
  assert(Callback && "null rocprofiler callback");
  Callbacks.push_back(std::move(Callback));
}

void RocprofilerApi::configureDeviceTracing(int AgentIndex,
                                            sim::TraceSink *Sink,
                                            sim::AnalysisModel Model,
                                            std::uint64_t DeviceBufferRecords,
                                            double SampleRate,
                                            std::uint64_t RecordGranularityBytes) {
  sim::Device &Dev = Runtime.device(AgentIndex);
  sim::DeviceTraceConfig Config;
  Config.TraceMemory = true;
  Config.TraceAllInstructions = false;
  Config.PaySassParseCost = false;
  Config.UseNvbitTrampoline = false;
  Config.Model = Model;
  Config.DeviceBufferRecords = DeviceBufferRecords;
  Config.SampleRate = SampleRate;
  Config.RecordGranularityBytes = RecordGranularityBytes;
  Dev.setTraceConfig(Config);
  Dev.setTraceSink(Sink);
}

void RocprofilerApi::stopDeviceTracing(int AgentIndex) {
  sim::Device &Dev = Runtime.device(AgentIndex);
  Dev.setTraceSink(nullptr);
  Dev.setTraceConfig(sim::DeviceTraceConfig());
}

void RocprofilerApi::dispatch(const RocprofilerRecord &Record) {
  for (const RocprofilerCallback &Callback : Callbacks)
    Callback(Record);
}
