//===- hip/Rocprofiler.h - ROCprofiler-SDK-style callbacks ------*- C++ -*-===//
//
// Part of the PASTA reproduction, under the MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Simulated AMD ROCprofiler-SDK callback tracing. Semantically analogous
/// to NVIDIA's Compute Sanitizer callbacks but with AMD's divergent event
/// formats, which PASTA's event handler must normalize:
///
///  * deallocations arrive as *negative size deltas* on the same
///    MemoryAllocate operation id instead of a separate Free cbid;
///  * kernels are reported as "dispatches" with workgroup counts rather
///    than launches with grids;
///  * timestamps are reported in microsecond ticks, not nanoseconds.
///
//===----------------------------------------------------------------------===//

#ifndef PASTA_HIP_ROCPROFILER_H
#define PASTA_HIP_ROCPROFILER_H

#include "sim/Trace.h"

#include <cstdint>
#include <functional>
#include <vector>

namespace pasta {
namespace hip {

/// Operation ids (ROCPROFILER_HIP_API_ID_* / buffer-tracing kinds).
enum class RocprofilerOp {
  HipMallocOp,       // allocation AND free (free = negative delta)
  HipMallocManagedOp,
  KernelDispatch,    // hipLaunchKernel / hipModuleLaunchKernel
  MemoryCopy,
  MemorySet,
  Synchronize,
  MemPrefetch,
  MemAdvise,
};

/// One callback record. Mirrors rocprofiler_callback_tracing_record_t's
/// union-style payload.
struct RocprofilerRecord {
  RocprofilerOp Op = RocprofilerOp::HipMallocOp;
  int AgentIndex = 0; // AMD calls devices "agents".
  std::uint32_t QueueId = 0;
  /// Microsecond ticks (quirk: NOT nanoseconds).
  std::uint64_t TimestampUs = 0;
  /// Memory operations: negative on deallocation (quirk).
  sim::DeviceAddr Address = 0;
  std::int64_t SizeDelta = 0;
  bool Managed = false;
  /// Kernel dispatches.
  const sim::KernelDesc *Kernel = nullptr;
  std::uint64_t DispatchId = 0;
  /// Memory copies: 0 = H2D, 1 = D2H, 2 = D2D.
  int CopyDirection = 0;
};

using RocprofilerCallback = std::function<void(const RocprofilerRecord &)>;

/// The per-runtime ROCprofiler registry.
class RocprofilerApi {
public:
  /// rocprofiler_configure_callback_tracing_service analogue.
  void configureCallback(RocprofilerCallback Callback);

  /// Device-side memory tracing service: the ROCprofiler-SDK analogue of
  /// Sanitizer patching (the paper notes the APIs are analogous and let
  /// PASTA capture memory/kernel/sync events with the same interface).
  void configureDeviceTracing(int AgentIndex, sim::TraceSink *Sink,
                              sim::AnalysisModel Model,
                              std::uint64_t DeviceBufferRecords = 1u << 20,
                              double SampleRate = 1.0,
                              std::uint64_t RecordGranularityBytes = 4096);

  void stopDeviceTracing(int AgentIndex);

  /// Dispatches to configured callbacks (called by the HipRuntime).
  void dispatch(const RocprofilerRecord &Record);

  bool hasCallbacks() const { return !Callbacks.empty(); }

private:
  friend class HipRuntime;
  explicit RocprofilerApi(class HipRuntime &Runtime) : Runtime(Runtime) {}

  class HipRuntime &Runtime;
  std::vector<RocprofilerCallback> Callbacks;
};

} // namespace hip
} // namespace pasta

#endif // PASTA_HIP_ROCPROFILER_H
