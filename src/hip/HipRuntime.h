//===- hip/HipRuntime.h - Simulated HIP runtime -----------------*- C++ -*-===//
//
// Part of the PASTA reproduction, under the MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The simulated HIP/ROCm runtime. Deliberately mirrors the CUDA runtime's
/// semantics ("HIP memory management closely follows CUDA's design",
/// paper §V-D1) while exposing AMD-shaped profiling callbacks through
/// RocprofilerApi. Runs on AMD-vendor devices (MI300X preset).
///
//===----------------------------------------------------------------------===//

#ifndef PASTA_HIP_HIPRUNTIME_H
#define PASTA_HIP_HIPRUNTIME_H

#include "hip/Rocprofiler.h"
#include "sim/System.h"

#include <cstdint>
#include <set>

namespace pasta {
namespace hip {

/// Subset of hipError_t the simulation can produce.
enum class HipError {
  Success = 0,
  OutOfMemory,
  InvalidValue,
  InvalidDevice,
};

using HipStream = std::uint32_t;
inline constexpr HipStream HipDefaultStream = 0;

enum class HipMemcpyKind { HostToDevice, DeviceToHost, DeviceToDevice };

/// One HIP runtime instance bound to a sim::System.
class HipRuntime {
public:
  explicit HipRuntime(sim::System &System);

  HipError hipGetDeviceCount(int *Count) const;
  HipError hipSetDevice(int Device);
  int currentDevice() const { return Current; }
  HipError hipDeviceSynchronize();

  HipError hipMalloc(sim::DeviceAddr *Out, std::uint64_t Bytes);
  HipError hipMallocManaged(sim::DeviceAddr *Out, std::uint64_t Bytes);
  HipError hipFree(sim::DeviceAddr Base);
  HipError hipMemcpy(sim::DeviceAddr Address, std::uint64_t Bytes,
                     HipMemcpyKind Kind, HipStream Stream = HipDefaultStream);
  HipError hipMemset(sim::DeviceAddr Address, std::uint64_t Bytes,
                     HipStream Stream = HipDefaultStream);
  HipError hipMemPrefetchAsync(sim::DeviceAddr Address, std::uint64_t Bytes,
                               int Device,
                               HipStream Stream = HipDefaultStream);

  HipError hipStreamCreate(HipStream *Out);
  HipError hipStreamDestroy(HipStream Stream);

  HipError hipLaunchKernel(const sim::KernelDesc &Desc,
                           HipStream Stream = HipDefaultStream,
                           sim::LaunchResult *Result = nullptr);

  RocprofilerApi &rocprofiler() { return Rocprofiler; }

  sim::System &system() { return System; }
  sim::Device &device() { return System.device(Current); }
  sim::Device &device(int Index) { return System.device(Index); }

private:
  friend class RocprofilerApi;

  /// AMD timestamps arrive in microsecond ticks (normalization quirk).
  std::uint64_t nowUs() const;

  sim::System &System;
  int Current = 0;
  RocprofilerApi Rocprofiler;
  std::set<HipStream> Streams;
  HipStream NextStream = 1;
};

} // namespace hip
} // namespace pasta

#endif // PASTA_HIP_HIPRUNTIME_H
