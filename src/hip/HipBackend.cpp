//===- hip/HipBackend.cpp -------------------------------------------------===//
//
// Part of the PASTA reproduction, under the MIT license.
//
//===----------------------------------------------------------------------===//

#include "hip/HipBackend.h"

#include "dl/Backend.h"
#include "sim/System.h"

using namespace pasta;
using namespace pasta::hip;

CapabilitySet HipBackend::capabilities() const {
  CapabilitySet Caps{Capability::CoarseEvents, Capability::UvmCounters};
  if (Flavor == TraceBackend::SanitizerGpu ||
      Flavor == TraceBackend::SanitizerCpu)
    Caps |= Capability::AccessRecords;
  return Caps;
}

std::unique_ptr<dl::DeviceApi>
HipBackend::createRuntime(sim::System &System, int DeviceIndex) {
  if (!Runtime)
    Runtime = std::make_unique<HipRuntime>(System);
  return std::make_unique<dl::HipDeviceApi>(*Runtime, DeviceIndex);
}

void HipBackend::attach(EventHandler &Handler, int DeviceIndex,
                        const CapabilitySet &Enabled,
                        const TraceOptions &Opts) {
  TraceOptions Effective = Opts;
  Effective.Backend = Enabled.has(Capability::AccessRecords)
                          ? Flavor
                          : TraceBackend::None;
  Handler.attachHip(*Runtime, DeviceIndex, Effective);
}
