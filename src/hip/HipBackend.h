//===- hip/HipBackend.h - AMD platform backend ------------------*- C++ -*-===//
//
// Part of the PASTA reproduction, under the MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// PlatformBackend adapter over the simulated HIP runtime: ROCprofiler
/// records for coarse events plus its device-tracing service for the
/// fine-grained capabilities. The same "cs-gpu"/"cs-cpu" registry names
/// resolve here when the selected GPU is AMD, so tool code never learns
/// which vendor it is observing.
///
//===----------------------------------------------------------------------===//

#ifndef PASTA_HIP_HIPBACKEND_H
#define PASTA_HIP_HIPBACKEND_H

#include "hip/HipRuntime.h"
#include "pasta/Backend.h"

namespace pasta {
namespace hip {

/// AMD adapter; \p Flavor maps onto the ROCprofiler device-tracing
/// analysis model (NVBit flavors are rejected at registry level).
class HipBackend : public PlatformBackend {
public:
  HipBackend(std::string Name, TraceBackend Flavor)
      : RegistryName(std::move(Name)), Flavor(Flavor) {}

  std::string name() const override { return RegistryName; }
  sim::VendorKind vendor() const override { return sim::VendorKind::AMD; }
  CapabilitySet capabilities() const override;

  std::unique_ptr<dl::DeviceApi> createRuntime(sim::System &System,
                                               int DeviceIndex) override;
  void attach(EventHandler &Handler, int DeviceIndex,
              const CapabilitySet &Enabled,
              const TraceOptions &Opts) override;

  /// The wrapped runtime; valid after the first createRuntime().
  HipRuntime *runtime() { return Runtime.get(); }

private:
  std::string RegistryName;
  TraceBackend Flavor;
  std::unique_ptr<HipRuntime> Runtime;
};

} // namespace hip
} // namespace pasta

#endif // PASTA_HIP_HIPBACKEND_H
