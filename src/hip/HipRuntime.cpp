//===- hip/HipRuntime.cpp -------------------------------------------------===//
//
// Part of the PASTA reproduction, under the MIT license.
//
//===----------------------------------------------------------------------===//

#include "hip/HipRuntime.h"

#include <cassert>

using namespace pasta;
using namespace pasta::hip;

HipRuntime::HipRuntime(sim::System &System)
    : System(System), Rocprofiler(*this) {
  Streams.insert(HipDefaultStream);
}

std::uint64_t HipRuntime::nowUs() const {
  return System.clock().now() / Microsecond;
}

HipError HipRuntime::hipGetDeviceCount(int *Count) const {
  if (!Count)
    return HipError::InvalidValue;
  *Count = System.numDevices();
  return HipError::Success;
}

HipError HipRuntime::hipSetDevice(int Device) {
  if (Device < 0 || Device >= System.numDevices())
    return HipError::InvalidDevice;
  Current = Device;
  return HipError::Success;
}

HipError HipRuntime::hipDeviceSynchronize() {
  RocprofilerRecord Record;
  Record.Op = RocprofilerOp::Synchronize;
  Record.AgentIndex = Current;
  Record.TimestampUs = nowUs();
  Rocprofiler.dispatch(Record);
  device().synchronize();
  return HipError::Success;
}

HipError HipRuntime::hipMalloc(sim::DeviceAddr *Out, std::uint64_t Bytes) {
  if (!Out || Bytes == 0)
    return HipError::InvalidValue;
  sim::DeviceAddr Base = device().allocate(Bytes);
  if (Base == 0)
    return HipError::OutOfMemory;
  *Out = Base;

  RocprofilerRecord Record;
  Record.Op = RocprofilerOp::HipMallocOp;
  Record.AgentIndex = Current;
  Record.TimestampUs = nowUs();
  Record.Address = Base;
  Record.SizeDelta = static_cast<std::int64_t>(Bytes);
  Rocprofiler.dispatch(Record);
  return HipError::Success;
}

HipError HipRuntime::hipMallocManaged(sim::DeviceAddr *Out,
                                      std::uint64_t Bytes) {
  if (!Out || Bytes == 0)
    return HipError::InvalidValue;
  sim::DeviceAddr Base = device().allocateManaged(Bytes);
  if (Base == 0)
    return HipError::OutOfMemory;
  *Out = Base;

  RocprofilerRecord Record;
  Record.Op = RocprofilerOp::HipMallocManagedOp;
  Record.AgentIndex = Current;
  Record.TimestampUs = nowUs();
  Record.Address = Base;
  Record.SizeDelta = static_cast<std::int64_t>(Bytes);
  Record.Managed = true;
  Rocprofiler.dispatch(Record);
  return HipError::Success;
}

HipError HipRuntime::hipFree(sim::DeviceAddr Base) {
  for (int I = 0; I < System.numDevices(); ++I) {
    auto Alloc = System.device(I).memory().find(Base);
    if (!Alloc)
      continue;
    bool Managed = Alloc->Managed;
    auto Freed = System.device(I).free(Base);
    assert(Freed && "allocation vanished between find and free");

    // Quirk: frees arrive on the allocation op id with a negative delta.
    RocprofilerRecord Record;
    Record.Op = Managed ? RocprofilerOp::HipMallocManagedOp
                        : RocprofilerOp::HipMallocOp;
    Record.AgentIndex = I;
    Record.TimestampUs = nowUs();
    Record.Address = Base;
    Record.SizeDelta = -static_cast<std::int64_t>(*Freed);
    Record.Managed = Managed;
    Rocprofiler.dispatch(Record);
    return HipError::Success;
  }
  return HipError::InvalidValue;
}

HipError HipRuntime::hipMemcpy(sim::DeviceAddr Address, std::uint64_t Bytes,
                               HipMemcpyKind Kind, HipStream Stream) {
  if (Bytes == 0)
    return HipError::InvalidValue;
  RocprofilerRecord Record;
  Record.Op = RocprofilerOp::MemoryCopy;
  Record.AgentIndex = Current;
  Record.QueueId = Stream;
  Record.TimestampUs = nowUs();
  Record.Address = Address;
  Record.SizeDelta = static_cast<std::int64_t>(Bytes);
  Record.CopyDirection = static_cast<int>(Kind);
  Rocprofiler.dispatch(Record);

  sim::CopyKind SimKind = sim::CopyKind::HostToDevice;
  if (Kind == HipMemcpyKind::DeviceToHost)
    SimKind = sim::CopyKind::DeviceToHost;
  else if (Kind == HipMemcpyKind::DeviceToDevice)
    SimKind = sim::CopyKind::DeviceToDevice;
  device().copy(SimKind, Bytes);
  return HipError::Success;
}

HipError HipRuntime::hipMemset(sim::DeviceAddr Address, std::uint64_t Bytes,
                               HipStream Stream) {
  if (Bytes == 0)
    return HipError::InvalidValue;
  RocprofilerRecord Record;
  Record.Op = RocprofilerOp::MemorySet;
  Record.AgentIndex = Current;
  Record.QueueId = Stream;
  Record.TimestampUs = nowUs();
  Record.Address = Address;
  Record.SizeDelta = static_cast<std::int64_t>(Bytes);
  Rocprofiler.dispatch(Record);
  device().memsetDevice(Address, Bytes);
  return HipError::Success;
}

HipError HipRuntime::hipMemPrefetchAsync(sim::DeviceAddr Address,
                                         std::uint64_t Bytes, int Device,
                                         HipStream Stream) {
  if (Device < 0 || Device >= System.numDevices())
    return HipError::InvalidDevice;
  sim::Device &Dev = System.device(Device);
  if (!Dev.uvm().isManaged(Address))
    return HipError::InvalidValue;

  RocprofilerRecord Record;
  Record.Op = RocprofilerOp::MemPrefetch;
  Record.AgentIndex = Device;
  Record.QueueId = Stream;
  Record.TimestampUs = nowUs();
  Record.Address = Address;
  Record.SizeDelta = static_cast<std::int64_t>(Bytes);
  Record.Managed = true;
  Rocprofiler.dispatch(Record);

  SimTime Cost = Dev.uvm().prefetch(Address, Bytes);
  System.clock().advance(Cost);
  return HipError::Success;
}

HipError HipRuntime::hipStreamCreate(HipStream *Out) {
  if (!Out)
    return HipError::InvalidValue;
  HipStream Stream = NextStream++;
  Streams.insert(Stream);
  *Out = Stream;
  return HipError::Success;
}

HipError HipRuntime::hipStreamDestroy(HipStream Stream) {
  if (Stream == HipDefaultStream || Streams.erase(Stream) == 0)
    return HipError::InvalidValue;
  return HipError::Success;
}

HipError HipRuntime::hipLaunchKernel(const sim::KernelDesc &Desc,
                                     HipStream Stream,
                                     sim::LaunchResult *Result) {
  if (!Streams.count(Stream))
    return HipError::InvalidValue;
  if (Desc.Grid.count() == 0 || Desc.Block.count() == 0)
    return HipError::InvalidValue;

  std::uint64_t DispatchId = device().nextGridId();

  RocprofilerRecord Record;
  Record.Op = RocprofilerOp::KernelDispatch;
  Record.AgentIndex = Current;
  Record.QueueId = Stream;
  Record.TimestampUs = nowUs();
  Record.Kernel = &Desc;
  Record.DispatchId = DispatchId;
  Rocprofiler.dispatch(Record);

  sim::LaunchResult Local = device().launchKernel(Desc, Stream);
  assert(Local.GridId == DispatchId && "dispatch id drifted during launch");
  if (Result)
    *Result = Local;
  return HipError::Success;
}
