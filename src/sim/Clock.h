//===- sim/Clock.h - Simulated clock ----------------------------*- C++ -*-===//
//
// Part of the PASTA reproduction, under the MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The simulated nanosecond clock shared by every device in a sim::System.
/// All timing the benches report is simulated time produced by the cost
/// model — never wall-clock time — so runs are deterministic.
///
//===----------------------------------------------------------------------===//

#ifndef PASTA_SIM_CLOCK_H
#define PASTA_SIM_CLOCK_H

#include "support/Units.h"

#include <cassert>
#include <cstdint>

namespace pasta {
namespace sim {

/// Monotonic simulated clock in nanoseconds.
class SimClock {
public:
  SimTime now() const { return Now; }

  /// Advances by \p Delta nanoseconds and returns the new time.
  SimTime advance(SimTime Delta) {
    Now += Delta;
    return Now;
  }

  /// Moves the clock forward to \p Time; no-op when already past it.
  void advanceTo(SimTime Time) {
    if (Time > Now)
      Now = Time;
  }

  void reset() { Now = 0; }

private:
  SimTime Now = 0;
};

} // namespace sim
} // namespace pasta

#endif // PASTA_SIM_CLOCK_H
