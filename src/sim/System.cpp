//===- sim/System.cpp -----------------------------------------------------===//
//
// Part of the PASTA reproduction, under the MIT license.
//
//===----------------------------------------------------------------------===//

#include "sim/System.h"

#include <cassert>

using namespace pasta;
using namespace pasta::sim;

System::System(const std::vector<GpuSpec> &Specs) {
  assert(!Specs.empty() && "system needs at least one device");
  Devices.reserve(Specs.size());
  for (std::size_t I = 0; I < Specs.size(); ++I)
    Devices.push_back(
        std::make_unique<Device>(static_cast<int>(I), Specs[I], Clock));
}

System::System(const GpuSpec &Spec)
    : System(std::vector<GpuSpec>{Spec}) {}

Device &System::device(int Index) {
  assert(Index >= 0 && Index < numDevices() && "device index out of range");
  return *Devices[static_cast<std::size_t>(Index)];
}

const Device &System::device(int Index) const {
  assert(Index >= 0 && Index < numDevices() && "device index out of range");
  return *Devices[static_cast<std::size_t>(Index)];
}
