//===- sim/Device.h - Simulated GPU device ----------------------*- C++ -*-===//
//
// Part of the PASTA reproduction, under the MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// One simulated GPU: device memory, UVM space, stream bookkeeping, kernel
/// execution with cost-model timing and instrumentation trace generation.
/// Vendor runtimes (pasta::cuda / pasta::hip) sit directly on this class;
/// profiling clients attach through setTraceSink/setTraceConfig.
///
//===----------------------------------------------------------------------===//

#ifndef PASTA_SIM_DEVICE_H
#define PASTA_SIM_DEVICE_H

#include "sim/Clock.h"
#include "sim/GpuSpec.h"
#include "sim/Kernel.h"
#include "sim/Memory.h"
#include "sim/Trace.h"
#include "sim/Uvm.h"

#include <cstdint>
#include <optional>
#include <unordered_set>

namespace pasta {
namespace sim {

/// Direction of a simulated bulk transfer.
enum class CopyKind { HostToDevice, DeviceToHost, DeviceToDevice };

/// Cumulative per-device activity counters.
struct DeviceCounters {
  std::uint64_t KernelLaunches = 0;
  std::uint64_t Memcpys = 0;
  std::uint64_t MemcpyBytes = 0;
  std::uint64_t Memsets = 0;
  std::uint64_t Synchronizations = 0;
  std::uint64_t SampledRecords = 0;
  std::uint64_t RealTracedOps = 0;
  TraceTimeBreakdown Breakdown;
  SimTime UvmStallTime = 0;
};

/// Outcome of one launchKernel call.
struct LaunchResult {
  std::uint64_t GridId = 0;
  /// Execution includes UVM fault stalls; the other three components are
  /// instrumentation overhead (zero when no tracing is attached).
  TraceTimeBreakdown Breakdown;
  SimTime UvmStallTime = 0;
  std::uint64_t SampledRecords = 0;
  std::uint64_t RealTracedOps = 0;
};

/// One simulated GPU device.
class Device {
public:
  Device(int Index, GpuSpec Spec, SimClock &Clock);

  int index() const { return Index; }
  const GpuSpec &spec() const { return Spec; }
  SimClock &clock() { return Clock; }

  //===--------------------------------------------------------------------===
  // Memory
  //===--------------------------------------------------------------------===

  /// cudaMalloc-style physical allocation; returns 0 when it would exceed
  /// the (possibly artificially limited) device capacity.
  DeviceAddr allocate(std::uint64_t Bytes);

  /// cudaMallocManaged-style allocation; pages start host-resident.
  DeviceAddr allocateManaged(std::uint64_t Bytes);

  /// Frees either kind of allocation; returns its size or std::nullopt for
  /// an unknown base address.
  std::optional<std::uint64_t> free(DeviceAddr Base);

  /// Artificially caps usable device memory (the paper's oversubscription
  /// trick of pre-allocating memory). Shrinks the UVM resident budget.
  void setMemoryLimit(std::uint64_t Bytes);
  std::uint64_t memoryLimit() const { return MemoryLimit; }

  std::uint64_t physicalBytesInUse() const {
    return Memory.devicePhysicalBytes();
  }

  DeviceMemoryAllocator &memory() { return Memory; }
  const DeviceMemoryAllocator &memory() const { return Memory; }
  UvmSpace &uvm() { return Uvm; }
  const UvmSpace &uvm() const { return Uvm; }

  //===--------------------------------------------------------------------===
  // Transfers
  //===--------------------------------------------------------------------===

  /// Advances the clock by the transfer cost and returns it.
  SimTime copy(CopyKind Kind, std::uint64_t Bytes);
  SimTime memsetDevice(DeviceAddr Base, std::uint64_t Bytes);

  //===--------------------------------------------------------------------===
  // Execution
  //===--------------------------------------------------------------------===

  LaunchResult launchKernel(const KernelDesc &Desc, std::uint32_t StreamId);

  /// Waits for outstanding work (the simulator executes eagerly, so this
  /// only counts the call and returns the current time).
  SimTime synchronize();

  /// Grid id the *next* launch will receive.
  std::uint64_t nextGridId() const { return LaunchCounter + 1; }

  //===--------------------------------------------------------------------===
  // Instrumentation attach points
  //===--------------------------------------------------------------------===

  void setTraceSink(TraceSink *Sink) { this->Sink = Sink; }
  TraceSink *traceSink() const { return Sink; }
  void setTraceConfig(const DeviceTraceConfig &Config) {
    this->Config = Config;
  }
  const DeviceTraceConfig &traceConfig() const { return Config; }

  const DeviceCounters &counters() const { return Counters; }
  void resetCounters() { Counters = DeviceCounters(); }

private:
  /// Generates sampled access records for \p Desc and streams them to the
  /// sink in batches; returns (sampled, real) counts.
  std::pair<std::uint64_t, std::uint64_t>
  generateTrace(const LaunchInfo &Info, const KernelDesc &Desc);

  /// Fills the instrumentation components of \p Breakdown for a launch
  /// with \p RealOps real traced operations.
  void chargeInstrumentation(const KernelDesc &Desc, double RealMemOps,
                             TraceTimeBreakdown &Breakdown);

  /// Updates the UVM resident budget after allocation changes.
  void refreshUvmBudget();

  int Index;
  GpuSpec Spec;
  SimClock &Clock;
  DeviceMemoryAllocator Memory;
  UvmSpace Uvm;
  std::uint64_t MemoryLimit;
  std::uint64_t LaunchCounter = 0;
  TraceSink *Sink = nullptr;
  DeviceTraceConfig Config;
  DeviceCounters Counters;
  /// Kernel names whose module already paid the SASS parse cost.
  std::unordered_set<std::string> ParsedModules;
};

} // namespace sim
} // namespace pasta

#endif // PASTA_SIM_DEVICE_H
