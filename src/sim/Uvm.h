//===- sim/Uvm.h - Unified virtual memory engine ----------------*- C++ -*-===//
//
// Part of the PASTA reproduction, under the MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Simulated NVIDIA-UVM-style unified memory: managed ranges backed by
/// 2 MiB pages, on-demand fault-driven migration, bulk prefetching
/// (cudaMemPrefetchAsync), advice (cudaMemAdvise preferred location) and
/// LRU eviction under capacity pressure. Device capacity for resident
/// pages is what remains after non-managed cudaMalloc allocations; the
/// benches impose oversubscription the way the paper does — by shrinking
/// the budget to footprint / factor.
///
//===----------------------------------------------------------------------===//

#ifndef PASTA_SIM_UVM_H
#define PASTA_SIM_UVM_H

#include "sim/GpuSpec.h"
#include "sim/Memory.h"
#include "support/Units.h"

#include <cstdint>
#include <list>
#include <unordered_map>
#include <vector>

namespace pasta {
namespace sim {

/// Cumulative UVM activity counters (reset per experiment phase).
struct UvmCounters {
  std::uint64_t Faults = 0;
  std::uint64_t FaultMigratedBytes = 0;
  std::uint64_t PrefetchedPages = 0;
  std::uint64_t PrefetchedBytes = 0;
  std::uint64_t Evictions = 0;
  std::uint64_t EvictedBytes = 0;
  /// Pages evicted that were re-migrated later (thrashing signal).
  std::uint64_t RefaultsAfterEviction = 0;
  SimTime FaultStallTime = 0;
  SimTime PrefetchTime = 0;
  SimTime EvictionTime = 0;
};

/// Page residency + policy engine for one device's managed memory.
class UvmSpace {
public:
  explicit UvmSpace(const GpuSpec &Spec);

  /// Registers a managed range [Base, Base+Bytes). Pages start
  /// host-resident (first GPU touch faults them in).
  void addManagedRange(DeviceAddr Base, std::uint64_t Bytes);

  /// Unregisters a managed range, releasing its pages.
  void removeManagedRange(DeviceAddr Base, std::uint64_t Bytes);

  /// True if \p Addr falls inside any managed range.
  bool isManaged(DeviceAddr Addr) const;

  /// Sets the resident-page capacity in bytes. Shrinking below current
  /// residency evicts LRU pages immediately (cost charged).
  void setResidentBudget(std::uint64_t Bytes);
  std::uint64_t residentBudget() const { return ResidentBudgetBytes; }
  std::uint64_t residentBytes() const {
    return ResidentPages * Spec.UvmPageBytes;
  }

  /// GPU touch of [Addr, Addr+Bytes) during kernel execution. Faults in any
  /// non-resident page (with LRU eviction as needed) and returns the total
  /// simulated stall time charged to the kernel.
  SimTime touch(DeviceAddr Addr, std::uint64_t Bytes);

  /// Bulk prefetch of [Addr, Addr+Bytes) to the device; returns the
  /// (partially overlappable) simulated cost charged to the issuing stream.
  SimTime prefetch(DeviceAddr Addr, std::uint64_t Bytes);

  /// Marks [Addr, Addr+Bytes) as preferred-location-device: its pages are
  /// evicted only when no unpinned victim exists.
  void advisePreferredDevice(DeviceAddr Addr, std::uint64_t Bytes);

  /// Proactively evicts [Addr, Addr+Bytes) to the host (pre-eviction
  /// optimization); returns the simulated cost.
  SimTime evictRange(DeviceAddr Addr, std::uint64_t Bytes);

  const UvmCounters &counters() const { return Counters; }
  void resetCounters() { Counters = UvmCounters(); }

  std::uint64_t pageBytes() const { return Spec.UvmPageBytes; }
  std::uint64_t numResidentPages() const { return ResidentPages; }

  /// Per-page access counts since the last resetAccessCounters() call,
  /// as (page base address, count) pairs — feeds the hotness analysis.
  std::vector<std::pair<DeviceAddr, std::uint64_t>> accessCounts() const;
  void resetAccessCounters();

private:
  struct PageState {
    bool Resident = false;
    bool Pinned = false;
    bool EvictedOnce = false;
    std::uint64_t Accesses = 0;
    /// Position in the LRU list when resident.
    std::list<DeviceAddr>::iterator LruPos;
  };

  DeviceAddr pageBase(DeviceAddr Addr) const {
    return Addr / Spec.UvmPageBytes * Spec.UvmPageBytes;
  }

  /// Makes \p Page resident via the fault path; returns the stall charged.
  SimTime faultIn(DeviceAddr Page);
  /// Makes \p Page resident via the prefetch path; returns the cost.
  SimTime prefetchIn(DeviceAddr Page);
  /// Evicts the LRU unpinned page (pinned pages only as a last resort);
  /// returns the cost. Requires at least one resident page.
  SimTime evictOne();
  /// Evicts until one more page fits in the budget.
  SimTime makeRoom();
  void markUsed(PageState &State, DeviceAddr Page);

  GpuSpec Spec;
  std::uint64_t ResidentBudgetBytes;
  std::uint64_t ResidentPages = 0;
  /// Sparse page table: page base -> state. Only managed pages appear.
  std::unordered_map<DeviceAddr, PageState> Pages;
  /// Managed ranges for isManaged(); base -> size.
  std::map<DeviceAddr, std::uint64_t> Ranges;
  /// LRU order of resident pages; front = least recently used.
  std::list<DeviceAddr> Lru;
  UvmCounters Counters;
};

} // namespace sim
} // namespace pasta

#endif // PASTA_SIM_UVM_H
