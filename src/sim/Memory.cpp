//===- sim/Memory.cpp -----------------------------------------------------===//
//
// Part of the PASTA reproduction, under the MIT license.
//
//===----------------------------------------------------------------------===//

#include "sim/Memory.h"

#include <cassert>

using namespace pasta;
using namespace pasta::sim;

static constexpr std::uint64_t AllocGranularity = 512;

static std::uint64_t roundUp(std::uint64_t Value, std::uint64_t Align) {
  return (Value + Align - 1) / Align * Align;
}

DeviceMemoryAllocator::DeviceMemoryAllocator(DeviceAddr BaseAddr,
                                             std::uint64_t Capacity)
    : BaseAddr(BaseAddr), Capacity(Capacity) {
  assert(Capacity > 0 && "zero-capacity address space");
  FreeSpans[BaseAddr] = Capacity;
}

DeviceAddr DeviceMemoryAllocator::allocate(std::uint64_t Bytes, bool Managed) {
  assert(Bytes > 0 && "zero-byte allocation");
  std::uint64_t Need = roundUp(Bytes, AllocGranularity);
  // First fit over the free list.
  for (auto It = FreeSpans.begin(); It != FreeSpans.end(); ++It) {
    if (It->second < Need)
      continue;
    DeviceAddr Base = It->first;
    std::uint64_t SpanBytes = It->second;
    FreeSpans.erase(It);
    if (SpanBytes > Need)
      FreeSpans[Base + Need] = SpanBytes - Need;
    Allocation Alloc;
    Alloc.Base = Base;
    Alloc.Bytes = Need;
    Alloc.Managed = Managed;
    Live[Base] = Alloc;
    if (Managed)
      ManagedTotalBytes += Need;
    else
      PhysicalBytes += Need;
    return Base;
  }
  return 0;
}

std::optional<std::uint64_t> DeviceMemoryAllocator::free(DeviceAddr Base) {
  auto It = Live.find(Base);
  if (It == Live.end())
    return std::nullopt;
  Allocation Alloc = It->second;
  Live.erase(It);
  if (Alloc.Managed)
    ManagedTotalBytes -= Alloc.Bytes;
  else
    PhysicalBytes -= Alloc.Bytes;

  // Insert the span and coalesce with neighbours.
  auto [SpanIt, Inserted] = FreeSpans.emplace(Alloc.Base, Alloc.Bytes);
  assert(Inserted && "double free of device allocation");
  // Merge with successor.
  auto Next = std::next(SpanIt);
  if (Next != FreeSpans.end() && SpanIt->first + SpanIt->second == Next->first) {
    SpanIt->second += Next->second;
    FreeSpans.erase(Next);
  }
  // Merge with predecessor.
  if (SpanIt != FreeSpans.begin()) {
    auto Prev = std::prev(SpanIt);
    if (Prev->first + Prev->second == SpanIt->first) {
      Prev->second += SpanIt->second;
      FreeSpans.erase(SpanIt);
    }
  }
  return Alloc.Bytes;
}

std::optional<Allocation>
DeviceMemoryAllocator::findContaining(DeviceAddr Addr) const {
  auto It = Live.upper_bound(Addr);
  if (It == Live.begin())
    return std::nullopt;
  --It;
  if (It->second.contains(Addr))
    return It->second;
  return std::nullopt;
}

std::optional<Allocation> DeviceMemoryAllocator::find(DeviceAddr Base) const {
  auto It = Live.find(Base);
  if (It == Live.end())
    return std::nullopt;
  return It->second;
}
