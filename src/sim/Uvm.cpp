//===- sim/Uvm.cpp --------------------------------------------------------===//
//
// Part of the PASTA reproduction, under the MIT license.
//
//===----------------------------------------------------------------------===//

#include "sim/Uvm.h"

#include "support/ErrorHandling.h"

#include <algorithm>
#include <cassert>

using namespace pasta;
using namespace pasta::sim;

UvmSpace::UvmSpace(const GpuSpec &Spec)
    : Spec(Spec), ResidentBudgetBytes(Spec.MemoryBytes) {}

void UvmSpace::addManagedRange(DeviceAddr Base, std::uint64_t Bytes) {
  assert(Bytes > 0 && "empty managed range");
  Ranges[Base] = Bytes;
  for (DeviceAddr Page = pageBase(Base); Page < Base + Bytes;
       Page += Spec.UvmPageBytes)
    Pages.emplace(Page, PageState());
}

void UvmSpace::removeManagedRange(DeviceAddr Base, std::uint64_t Bytes) {
  Ranges.erase(Base);
  for (DeviceAddr Page = pageBase(Base); Page < Base + Bytes;
       Page += Spec.UvmPageBytes) {
    auto It = Pages.find(Page);
    if (It == Pages.end())
      continue;
    if (It->second.Resident) {
      Lru.erase(It->second.LruPos);
      --ResidentPages;
    }
    Pages.erase(It);
  }
}

bool UvmSpace::isManaged(DeviceAddr Addr) const {
  auto It = Ranges.upper_bound(Addr);
  if (It == Ranges.begin())
    return false;
  --It;
  return Addr >= It->first && Addr < It->first + It->second;
}

void UvmSpace::setResidentBudget(std::uint64_t Bytes) {
  ResidentBudgetBytes = Bytes;
  while (ResidentPages * Spec.UvmPageBytes > ResidentBudgetBytes &&
         ResidentPages > 0)
    Counters.EvictionTime += evictOne();
}

void UvmSpace::markUsed(PageState &State, DeviceAddr Page) {
  assert(State.Resident && "LRU update on non-resident page");
  Lru.erase(State.LruPos);
  Lru.push_back(Page);
  State.LruPos = std::prev(Lru.end());
}

SimTime UvmSpace::touch(DeviceAddr Addr, std::uint64_t Bytes) {
  if (Bytes == 0)
    return 0;
  SimTime Stall = 0;
  DeviceAddr End = Addr + Bytes;
  for (DeviceAddr Page = pageBase(Addr); Page < End;
       Page += Spec.UvmPageBytes) {
    auto It = Pages.find(Page);
    if (It == Pages.end())
      continue; // Not a managed page: nothing to do.
    PageState &State = It->second;
    ++State.Accesses;
    if (State.Resident) {
      markUsed(State, Page);
      continue;
    }
    Stall += faultIn(Page);
  }
  return Stall;
}

SimTime UvmSpace::faultIn(DeviceAddr Page) {
  SimTime Cost = makeRoom();
  PageState &State = Pages.at(Page);
  assert(!State.Resident && "fault on resident page");
  // Far-fault service: fixed latency plus migration at degraded bandwidth.
  double EffectiveBw = Spec.PcieBwBytesPerNs * Spec.FaultMigrationBwFraction;
  Cost += Spec.PageFaultLatency +
          static_cast<SimTime>(Spec.UvmPageBytes / EffectiveBw);
  State.Resident = true;
  Lru.push_back(Page);
  State.LruPos = std::prev(Lru.end());
  ++ResidentPages;
  ++Counters.Faults;
  Counters.FaultMigratedBytes += Spec.UvmPageBytes;
  if (State.EvictedOnce)
    ++Counters.RefaultsAfterEviction;
  Counters.FaultStallTime += Cost;
  return Cost;
}

SimTime UvmSpace::prefetchIn(DeviceAddr Page) {
  SimTime Cost = makeRoom();
  PageState &State = Pages.at(Page);
  if (State.Resident) {
    markUsed(State, Page);
    return Cost;
  }
  // Bulk migration at full bandwidth, mostly overlapped with compute.
  SimTime Transfer = static_cast<SimTime>(
      Spec.UvmPageBytes / Spec.PcieBwBytesPerNs);
  Cost += static_cast<SimTime>(
      static_cast<double>(Transfer) * (1.0 - Spec.PrefetchOverlapFraction));
  State.Resident = true;
  Lru.push_back(Page);
  State.LruPos = std::prev(Lru.end());
  ++ResidentPages;
  ++Counters.PrefetchedPages;
  Counters.PrefetchedBytes += Spec.UvmPageBytes;
  return Cost;
}

SimTime UvmSpace::makeRoom() {
  SimTime Cost = 0;
  while ((ResidentPages + 1) * Spec.UvmPageBytes > ResidentBudgetBytes) {
    if (ResidentPages == 0)
      reportFatalError("UVM resident budget smaller than one page");
    Cost += evictOne();
  }
  return Cost;
}

SimTime UvmSpace::evictOne() {
  assert(!Lru.empty() && "evictOne with no resident pages");
  // Prefer the LRU unpinned page; fall back to the LRU page outright.
  auto Victim = Lru.end();
  for (auto It = Lru.begin(); It != Lru.end(); ++It) {
    if (!Pages.at(*It).Pinned) {
      Victim = It;
      break;
    }
  }
  if (Victim == Lru.end())
    Victim = Lru.begin();
  DeviceAddr Page = *Victim;
  PageState &State = Pages.at(Page);
  Lru.erase(Victim);
  State.Resident = false;
  State.EvictedOnce = true;
  --ResidentPages;
  ++Counters.Evictions;
  Counters.EvictedBytes += Spec.UvmPageBytes;
  // Write-back at bulk bandwidth plus fixed unmap latency.
  SimTime Cost = Spec.EvictionLatency +
                 static_cast<SimTime>(Spec.UvmPageBytes /
                                      Spec.PcieBwBytesPerNs);
  Counters.EvictionTime += Cost;
  return Cost;
}

SimTime UvmSpace::prefetch(DeviceAddr Addr, std::uint64_t Bytes) {
  if (Bytes == 0)
    return 0;
  SimTime Cost = Spec.PrefetchCallLatency;
  DeviceAddr End = Addr + Bytes;
  for (DeviceAddr Page = pageBase(Addr); Page < End;
       Page += Spec.UvmPageBytes) {
    auto It = Pages.find(Page);
    if (It == Pages.end())
      continue;
    Cost += prefetchIn(Page);
  }
  Counters.PrefetchTime += Cost;
  return Cost;
}

void UvmSpace::advisePreferredDevice(DeviceAddr Addr, std::uint64_t Bytes) {
  DeviceAddr End = Addr + Bytes;
  for (DeviceAddr Page = pageBase(Addr); Page < End;
       Page += Spec.UvmPageBytes) {
    auto It = Pages.find(Page);
    if (It != Pages.end())
      It->second.Pinned = true;
  }
}

SimTime UvmSpace::evictRange(DeviceAddr Addr, std::uint64_t Bytes) {
  SimTime Cost = 0;
  DeviceAddr End = Addr + Bytes;
  for (DeviceAddr Page = pageBase(Addr); Page < End;
       Page += Spec.UvmPageBytes) {
    auto It = Pages.find(Page);
    if (It == Pages.end() || !It->second.Resident)
      continue;
    PageState &State = It->second;
    Lru.erase(State.LruPos);
    State.Resident = false;
    State.EvictedOnce = true;
    --ResidentPages;
    ++Counters.Evictions;
    Counters.EvictedBytes += Spec.UvmPageBytes;
    Cost += Spec.EvictionLatency +
            static_cast<SimTime>(Spec.UvmPageBytes / Spec.PcieBwBytesPerNs);
  }
  Counters.EvictionTime += Cost;
  return Cost;
}

std::vector<std::pair<DeviceAddr, std::uint64_t>>
UvmSpace::accessCounts() const {
  std::vector<std::pair<DeviceAddr, std::uint64_t>> Out;
  Out.reserve(Pages.size());
  for (const auto &[Page, State] : Pages)
    if (State.Accesses > 0)
      Out.emplace_back(Page, State.Accesses);
  std::sort(Out.begin(), Out.end());
  return Out;
}

void UvmSpace::resetAccessCounters() {
  for (auto &[Page, State] : Pages)
    State.Accesses = 0;
}
