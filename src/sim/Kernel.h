//===- sim/Kernel.h - Kernel descriptors ------------------------*- C++ -*-===//
//
// Part of the PASTA reproduction, under the MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// KernelDesc describes a simulated GPU kernel: name, launch geometry, the
/// memory regions it touches (with dynamic access volume) and its compute
/// intensity. The DL substrate synthesizes descriptors mimicking
/// cuBLAS/cuDNN kernels; the device executes them by advancing the cost
/// model and generating instrumentation trace records.
///
//===----------------------------------------------------------------------===//

#ifndef PASTA_SIM_KERNEL_H
#define PASTA_SIM_KERNEL_H

#include "sim/Memory.h"

#include <cstdint>
#include <string>
#include <vector>

namespace pasta {
namespace sim {

/// Launch geometry (flattened sizes are what the cost model consumes).
struct Dim3 {
  unsigned X = 1;
  unsigned Y = 1;
  unsigned Z = 1;

  std::uint64_t count() const {
    return static_cast<std::uint64_t>(X) * Y * Z;
  }
};

enum class AccessKind : std::uint8_t { Load, Store };
enum class MemSpace : std::uint8_t { Global, Shared };

/// One memory region a kernel touches.
///
/// \c Extent is the unique footprint ([Base, Base+Extent)); \c AccessBytes
/// is the *dynamic* access volume, which exceeds Extent when the kernel
/// re-reads data (GEMM tiles, attention, ...). Sampled trace records are
/// spread uniformly over the extent so that working-set analyses see every
/// touched region even at coarse sampling.
struct AccessSegment {
  DeviceAddr Base = 0;
  std::uint64_t Extent = 0;
  std::uint64_t AccessBytes = 0;
  AccessKind Kind = AccessKind::Load;
  MemSpace Space = MemSpace::Global;
};

/// Full description of one kernel the simulator can launch.
struct KernelDesc {
  std::string Name;
  Dim3 Grid;
  Dim3 Block;
  std::vector<AccessSegment> Segments;
  /// Arithmetic work (fp32 FLOPs) for the roofline time model.
  double Flops = 0.0;
  /// Dynamic non-memory instructions per memory access (SASS mix); NVBit
  /// style full-coverage tracing records these too.
  double ComputeInstrsPerAccess = 7.0;
  /// Static SASS instruction count (NVBit pays a parse cost per static
  /// instruction the first time it sees a module).
  std::uint64_t StaticInstrs = 512;
  /// __syncthreads()-style barriers executed per thread block.
  std::uint32_t BarriersPerBlock = 0;
  /// Static shared memory per block (bytes).
  std::uint64_t SharedMemPerBlock = 0;

  std::uint64_t totalThreads() const { return Grid.count() * Block.count(); }

  /// Sum of dynamic global-memory access bytes over all segments.
  std::uint64_t totalAccessBytes() const {
    std::uint64_t Total = 0;
    for (const AccessSegment &Seg : Segments)
      if (Seg.Space == MemSpace::Global)
        Total += Seg.AccessBytes;
    return Total;
  }

  /// Sum of unique global footprint bytes over all segments.
  std::uint64_t totalFootprintBytes() const {
    std::uint64_t Total = 0;
    for (const AccessSegment &Seg : Segments)
      if (Seg.Space == MemSpace::Global)
        Total += Seg.Extent;
    return Total;
  }
};

} // namespace sim
} // namespace pasta

#endif // PASTA_SIM_KERNEL_H
