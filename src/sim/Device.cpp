//===- sim/Device.cpp -----------------------------------------------------===//
//
// Part of the PASTA reproduction, under the MIT license.
//
//===----------------------------------------------------------------------===//

#include "sim/Device.h"

#include "support/Rng.h"

#include <algorithm>
#include <cassert>
#include <cmath>

using namespace pasta;
using namespace pasta::sim;

TraceSink::~TraceSink() = default;

/// Device address spaces start well above zero so that address 0 can act
/// as the null/failure value, and are spaced so devices never overlap.
static constexpr DeviceAddr DeviceAddrBase = 0x7f0000000000ull;
static constexpr DeviceAddr DeviceAddrStride = 0x010000000000ull;

/// Every real access modeled as a 32-byte transaction.
static constexpr std::uint64_t AccessBytesPerOp = 32;

Device::Device(int Index, GpuSpec Spec, SimClock &Clock)
    : Index(Index), Spec(Spec), Clock(Clock),
      Memory(DeviceAddrBase + static_cast<DeviceAddr>(Index) *
                                  DeviceAddrStride,
             // The address space is larger than physical capacity so
             // managed (oversubscribable) ranges always find addresses.
             DeviceAddrStride / 2),
      Uvm(Spec), MemoryLimit(Spec.MemoryBytes) {
  refreshUvmBudget();
}

void Device::refreshUvmBudget() {
  std::uint64_t Physical = Memory.devicePhysicalBytes();
  std::uint64_t Budget =
      MemoryLimit > Physical ? MemoryLimit - Physical : Spec.UvmPageBytes;
  // Keep at least one page of budget so progress is always possible.
  Budget = std::max<std::uint64_t>(Budget, Spec.UvmPageBytes);
  Uvm.setResidentBudget(Budget);
}

DeviceAddr Device::allocate(std::uint64_t Bytes) {
  if (Bytes == 0)
    return 0;
  if (Memory.devicePhysicalBytes() + Bytes > MemoryLimit)
    return 0; // Out of (artificially limited) device memory.
  DeviceAddr Base = Memory.allocate(Bytes, /*Managed=*/false);
  if (Base != 0)
    refreshUvmBudget();
  return Base;
}

DeviceAddr Device::allocateManaged(std::uint64_t Bytes) {
  if (Bytes == 0)
    return 0;
  DeviceAddr Base = Memory.allocate(Bytes, /*Managed=*/true);
  if (Base == 0)
    return 0;
  auto Alloc = Memory.find(Base);
  assert(Alloc && "allocation lost immediately");
  Uvm.addManagedRange(Base, Alloc->Bytes);
  return Base;
}

std::optional<std::uint64_t> Device::free(DeviceAddr Base) {
  auto Alloc = Memory.find(Base);
  if (!Alloc)
    return std::nullopt;
  if (Alloc->Managed)
    Uvm.removeManagedRange(Alloc->Base, Alloc->Bytes);
  auto Freed = Memory.free(Base);
  refreshUvmBudget();
  return Freed;
}

void Device::setMemoryLimit(std::uint64_t Bytes) {
  MemoryLimit = std::min(Bytes, Spec.MemoryBytes);
  refreshUvmBudget();
}

SimTime Device::copy(CopyKind Kind, std::uint64_t Bytes) {
  SimTime Cost = Spec.TransferLatency;
  if (Kind == CopyKind::DeviceToDevice)
    Cost += Spec.deviceMemTime(static_cast<double>(Bytes) * 2.0);
  else
    Cost += Spec.pcieTime(static_cast<double>(Bytes));
  Clock.advance(Cost);
  ++Counters.Memcpys;
  Counters.MemcpyBytes += Bytes;
  return Cost;
}

SimTime Device::memsetDevice(DeviceAddr Base, std::uint64_t Bytes) {
  (void)Base;
  SimTime Cost =
      Spec.TransferLatency + Spec.deviceMemTime(static_cast<double>(Bytes));
  Clock.advance(Cost);
  ++Counters.Memsets;
  return Cost;
}

SimTime Device::synchronize() {
  ++Counters.Synchronizations;
  return Clock.now();
}

LaunchResult Device::launchKernel(const KernelDesc &Desc,
                                  std::uint32_t StreamId) {
  assert(Desc.Grid.count() > 0 && Desc.Block.count() > 0 &&
         "empty launch geometry");
  LaunchResult Result;
  Result.GridId = ++LaunchCounter;

  // Roofline execution time: the kernel is bound by whichever of compute
  // and device memory traffic is slower.
  std::uint64_t AccessBytes = Desc.totalAccessBytes();
  SimTime Exec = Spec.KernelLaunchLatency +
                 std::max(Spec.computeTime(Desc.Flops),
                          Spec.deviceMemTime(
                              static_cast<double>(AccessBytes)));

  // UVM: touching a managed footprint faults in non-resident pages.
  SimTime UvmStall = 0;
  for (const AccessSegment &Seg : Desc.Segments)
    if (Seg.Space == MemSpace::Global && Seg.Extent > 0)
      UvmStall += Uvm.touch(Seg.Base, Seg.Extent);
  Exec += UvmStall;
  Result.UvmStallTime = UvmStall;
  Result.Breakdown.Execution = Exec;

  LaunchInfo Info;
  Info.Desc = &Desc;
  Info.GridId = Result.GridId;
  Info.DeviceIndex = Index;
  Info.StreamId = StreamId;
  Info.LaunchTime = Clock.now();

  bool Tracing = Config.TraceMemory && Sink != nullptr;
  if (Tracing) {
    Sink->onKernelBegin(Info);
    auto [Sampled, Real] = generateTrace(Info, Desc);
    Result.SampledRecords = Sampled;
    Result.RealTracedOps = Real;
    if (Config.TraceAllInstructions) {
      InstrMix Mix;
      for (const AccessSegment &Seg : Desc.Segments) {
        std::uint64_t Ops = Seg.AccessBytes / AccessBytesPerOp;
        if (Seg.Space == MemSpace::Shared)
          Mix.SharedAccesses += Ops;
        else if (Seg.Kind == AccessKind::Load)
          Mix.GlobalLoads += Ops;
        else
          Mix.GlobalStores += Ops;
      }
      Mix.Barriers =
          static_cast<std::uint64_t>(Desc.BarriersPerBlock) *
          Desc.Grid.count();
      Mix.ComputeInstrs = static_cast<std::uint64_t>(
          static_cast<double>(Real) * Desc.ComputeInstrsPerAccess);
      Sink->onInstrMix(Info, Mix);
    }
    chargeInstrumentation(Desc, static_cast<double>(Result.RealTracedOps),
                          Result.Breakdown);
    Sink->onKernelEnd(Info, Result.Breakdown);
  }

  Clock.advance(Result.Breakdown.total());
  ++Counters.KernelLaunches;
  Counters.Breakdown += Result.Breakdown;
  Counters.UvmStallTime += UvmStall;
  Counters.SampledRecords += Result.SampledRecords;
  Counters.RealTracedOps += Result.RealTracedOps;
  return Result;
}

std::pair<std::uint64_t, std::uint64_t>
Device::generateTrace(const LaunchInfo &Info, const KernelDesc &Desc) {
  // Batch buffer reused across segments; sized to keep sink calls cheap
  // without large allocations.
  static constexpr std::size_t BatchCapacity = 4096;
  std::vector<MemAccessRecord> Batch;
  Batch.reserve(BatchCapacity);

  std::uint64_t SampledTotal = 0;
  std::uint64_t RealTotal = 0;
  std::uint64_t Granularity = std::max<std::uint64_t>(
      Config.RecordGranularityBytes, AccessBytesPerOp);

  auto Flush = [&] {
    if (Batch.empty())
      return;
    Sink->onAccessBatch(Info, Batch.data(), Batch.size());
    Batch.clear();
  };

  for (std::size_t SegIdx = 0; SegIdx < Desc.Segments.size(); ++SegIdx) {
    const AccessSegment &Seg = Desc.Segments[SegIdx];
    if (Seg.Space != MemSpace::Global || Seg.AccessBytes == 0)
      continue;
    double RealOpsD = static_cast<double>(Seg.AccessBytes) /
                      AccessBytesPerOp * Config.SampleRate;
    std::uint64_t RealOps = static_cast<std::uint64_t>(RealOpsD);
    if (RealOps == 0)
      RealOps = 1;
    std::uint64_t SampledBytes = static_cast<std::uint64_t>(
        static_cast<double>(Seg.AccessBytes) * Config.SampleRate);
    std::uint64_t Sampled =
        std::max<std::uint64_t>(1, SampledBytes / Granularity);
    std::uint32_t Multiplicity = static_cast<std::uint32_t>(
        std::max<std::uint64_t>(1, RealOps / Sampled));

    // Deterministic per-(launch, segment) generator; records sweep the
    // extent so coarse sampling still covers every touched region.
    SplitMix64 Rng(Info.GridId * 0x9e3779b9ull + SegIdx * 0x85ebca6bull + 1);
    std::uint64_t Stride = std::max<std::uint64_t>(1, Seg.Extent / Sampled);
    for (std::uint64_t I = 0; I < Sampled; ++I) {
      MemAccessRecord Record;
      std::uint64_t Offset = I * Stride;
      if (Stride > AccessBytesPerOp)
        Offset += Rng.nextBelow(Stride) / AccessBytesPerOp *
                  AccessBytesPerOp;
      if (Offset >= Seg.Extent)
        Offset = Seg.Extent > 0 ? (Offset % Seg.Extent) : 0;
      Record.Address = Seg.Base + Offset;
      Record.Bytes = AccessBytesPerOp;
      Record.Multiplicity = Multiplicity;
      Record.FlatThreadId =
          static_cast<std::uint32_t>(Rng.nextBelow(
              std::max<std::uint64_t>(1, Desc.totalThreads())));
      Record.Kind = Seg.Kind;
      Record.Space = Seg.Space;
      Batch.push_back(Record);
      if (Batch.size() == BatchCapacity)
        Flush();
    }
    SampledTotal += Sampled;
    RealTotal += RealOps;
  }
  Flush();
  return {SampledTotal, RealTotal};
}

void Device::chargeInstrumentation(const KernelDesc &Desc, double RealMemOps,
                                   TraceTimeBreakdown &Breakdown) {
  double TracedOps = RealMemOps;
  if (Config.TraceAllInstructions)
    TracedOps += RealMemOps * Desc.ComputeInstrsPerAccess;

  SimTime PerOpCollect = Config.UseNvbitTrampoline ? Spec.NvbitTrampolineCost
                                                   : Spec.RecordWriteCost;
  double Concurrency =
      static_cast<double>(std::max<std::uint64_t>(
          1, std::min<std::uint64_t>(Desc.totalThreads(),
                                     Spec.maxResidentThreads())));

  // One-time SASS dump+parse when the backend needs disassembly.
  if (Config.PaySassParseCost && !ParsedModules.count(Desc.Name)) {
    ParsedModules.insert(Desc.Name);
    Breakdown.Collection +=
        Desc.StaticInstrs * Spec.SassParseCostPerInstr;
  }

  switch (Config.Model) {
  case AnalysisModel::HostSide: {
    // Collection: inline record writes amortized over resident threads,
    // plus the extra device-memory traffic of the trace buffer.
    Breakdown.Collection += static_cast<SimTime>(
        TracedOps * static_cast<double>(PerOpCollect) / Concurrency);
    Breakdown.Collection += Spec.deviceMemTime(
        TracedOps * static_cast<double>(Spec.TraceRecordBytes));
    // Transfer: stall-fetch-reset per buffer fill plus PCIe volume.
    std::uint64_t Flushes = static_cast<std::uint64_t>(
        TracedOps / static_cast<double>(Config.DeviceBufferRecords));
    Breakdown.Transfer += (Flushes + 1) * Spec.BufferFlushLatency;
    Breakdown.Transfer += Spec.pcieTime(
        TracedOps * static_cast<double>(Spec.TraceRecordBytes));
    // Analysis: one host thread visits every record.
    SimTime PerRecord = Config.UseNvbitTrampoline
                            ? Spec.NvbitHostAnalysisCostPerRecord
                            : Spec.HostAnalysisCostPerRecord;
    Breakdown.Analysis +=
        static_cast<SimTime>(TracedOps * static_cast<double>(PerRecord));
    break;
  }
  case AnalysisModel::DeviceResident: {
    // Fig. 2b: records never leave the device; helper warps reduce them
    // in-situ. Only a small result buffer crosses PCIe at kernel end.
    Breakdown.Collection += static_cast<SimTime>(
        TracedOps * static_cast<double>(PerOpCollect) / Concurrency);
    Breakdown.Analysis += static_cast<SimTime>(
        TracedOps * static_cast<double>(Spec.DeviceAnalysisCostPerRecord) /
        Spec.DeviceAnalysisSpeedup);
    double ResultBytes =
        64.0 * static_cast<double>(std::max<std::size_t>(
                   1, Desc.Segments.size()));
    Breakdown.Transfer += Spec.BufferFlushLatency / 4 +
                          Spec.pcieTime(ResultBytes);
    break;
  }
  }
}
