//===- sim/Trace.h - Instrumentation trace interfaces -----------*- C++ -*-===//
//
// Part of the PASTA reproduction, under the MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The contract between the simulated device and profiling clients
/// (Sanitizer-, NVBit- and ROCprofiler-style layers): a DeviceTraceConfig
/// saying what to instrument and which analysis model pays for it, a
/// TraceSink receiving the generated records, and the per-launch cost
/// breakdown (execution / collection / transfer / analysis) that paper
/// Fig. 10 reports.
///
//===----------------------------------------------------------------------===//

#ifndef PASTA_SIM_TRACE_H
#define PASTA_SIM_TRACE_H

#include "sim/Kernel.h"
#include "support/Units.h"

#include <cstddef>
#include <cstdint>

namespace pasta {
namespace sim {

/// Identity of one kernel launch as seen by instrumentation clients.
struct LaunchInfo {
  const KernelDesc *Desc = nullptr;
  /// Monotonic per-device launch index ("grid id" in the paper's
  /// START_GRID_ID/END_GRID_ID range filters).
  std::uint64_t GridId = 0;
  int DeviceIndex = 0;
  std::uint32_t StreamId = 0;
  SimTime LaunchTime = 0;
};

/// One sampled memory-access trace record. A record stands for
/// \c Multiplicity real 32-byte accesses (sampling keeps host-side work
/// tractable; the cost model always charges for the real volume).
struct MemAccessRecord {
  DeviceAddr Address = 0;
  std::uint32_t Bytes = 0;
  std::uint32_t Multiplicity = 1;
  std::uint32_t FlatThreadId = 0;
  AccessKind Kind = AccessKind::Load;
  MemSpace Space = MemSpace::Global;
};

/// Dynamic instruction mix of one launch (full-coverage backends see it).
struct InstrMix {
  std::uint64_t GlobalLoads = 0;
  std::uint64_t GlobalStores = 0;
  std::uint64_t SharedAccesses = 0;
  std::uint64_t Barriers = 0;
  std::uint64_t ComputeInstrs = 0;

  std::uint64_t total() const {
    return GlobalLoads + GlobalStores + SharedAccesses + Barriers +
           ComputeInstrs;
  }
};

/// Where trace records get analyzed (paper Fig. 2).
enum class AnalysisModel {
  /// Fig. 2a: device buffer fills, kernel stalls, host fetches and a single
  /// CPU thread analyzes (Sanitizer MemoryTracker / NVBit MemTrace).
  HostSide,
  /// Fig. 2b: PASTA's GPU-resident collect-and-analyze; only a small
  /// result buffer returns to the host at kernel completion.
  DeviceResident,
};

/// What a profiling client asked the device to instrument.
struct DeviceTraceConfig {
  /// Instrument global/shared memory operations.
  bool TraceMemory = false;
  /// NVBit-style: instrument every SASS instruction, not just memory ops
  /// (raises record volume by the kernel's ComputeInstrsPerAccess factor).
  bool TraceAllInstructions = false;
  /// Pay the SASS dump+parse cost on first encounter of each module.
  bool PaySassParseCost = false;
  /// Use NVBit trampolines (full register save/restore) instead of
  /// Sanitizer patches for the per-operation collection cost.
  bool UseNvbitTrampoline = false;
  AnalysisModel Model = AnalysisModel::HostSide;
  /// Device trace-buffer capacity in records for the host-side model;
  /// each fill forces a stall-fetch-reset round trip.
  std::uint64_t DeviceBufferRecords = 1u << 20;
  /// Fraction of real accesses represented in generated records (the
  /// ACCEL_PROF_ENV_SAMPLE_RATE escape hatch; costs scale down with it).
  double SampleRate = 1.0;
  /// One sampled MemAccessRecord is emitted per this many bytes of dynamic
  /// access volume (wall-clock knob for the reproduction; the simulated
  /// cost model always charges the real per-access volume).
  std::uint64_t RecordGranularityBytes = 4096;
};

/// Per-launch simulated time split; paper Fig. 10's four components.
struct TraceTimeBreakdown {
  SimTime Execution = 0;
  SimTime Collection = 0;
  SimTime Transfer = 0;
  SimTime Analysis = 0;

  SimTime total() const {
    return Execution + Collection + Transfer + Analysis;
  }

  TraceTimeBreakdown &operator+=(const TraceTimeBreakdown &Other) {
    Execution += Other.Execution;
    Collection += Other.Collection;
    Transfer += Other.Transfer;
    Analysis += Other.Analysis;
    return *this;
  }
};

/// Receiver for instrumentation data generated during kernel execution.
/// Implemented by the vendor profiling layers, which forward into PASTA.
class TraceSink {
public:
  virtual ~TraceSink();

  /// Called before the first record batch of a launch.
  virtual void onKernelBegin(const LaunchInfo &Info) { (void)Info; }

  /// Delivers one batch of sampled memory-access records. The pointer is
  /// valid only for the duration of the call.
  virtual void onAccessBatch(const LaunchInfo &Info,
                             const MemAccessRecord *Records,
                             std::size_t Count) {
    (void)Info;
    (void)Records;
    (void)Count;
  }

  /// Delivers the dynamic instruction mix (full-coverage backends only).
  virtual void onInstrMix(const LaunchInfo &Info, const InstrMix &Mix) {
    (void)Info;
    (void)Mix;
  }

  /// Called after the last batch with the launch's cost breakdown.
  virtual void onKernelEnd(const LaunchInfo &Info,
                           const TraceTimeBreakdown &Breakdown) {
    (void)Info;
    (void)Breakdown;
  }
};

} // namespace sim
} // namespace pasta

#endif // PASTA_SIM_TRACE_H
