//===- sim/GpuSpec.cpp ----------------------------------------------------===//
//
// Part of the PASTA reproduction, under the MIT license.
//
//===----------------------------------------------------------------------===//

#include "sim/GpuSpec.h"

#include "support/ErrorHandling.h"

#include <utility>

using namespace pasta;
using namespace pasta::sim;

GpuSpec sim::a100Spec() {
  GpuSpec Spec;
  Spec.Name = "A100";
  Spec.Vendor = VendorKind::NVIDIA;
  Spec.NumSMs = 108;
  Spec.ThreadsPerSM = 2048;
  Spec.MemoryBytes = 80 * GiB;
  Spec.FlopsPerNs = 19500.0;
  Spec.DeviceBwBytesPerNs = 2039.0;
  Spec.PcieBwBytesPerNs = 31.5;
  // A datacenter part sustains more concurrent in-situ analysis lanes,
  // widening the CS-GPU vs CS-CPU gap relative to the 3060 (Fig. 9:
  // ~941x vs ~627x).
  Spec.HostAnalysisCostPerRecord = 3400;
  Spec.NvbitHostAnalysisCostPerRecord = 5950;
  Spec.DeviceAnalysisCostPerRecord = 170;
  Spec.DeviceAnalysisSpeedup = 48.0;
  return Spec;
}

GpuSpec sim::rtx3060Spec() {
  GpuSpec Spec;
  Spec.Name = "RTX3060";
  Spec.Vendor = VendorKind::NVIDIA;
  Spec.NumSMs = 28;
  Spec.ThreadsPerSM = 1536;
  Spec.MemoryBytes = 12 * GiB;
  Spec.FlopsPerNs = 12740.0;
  Spec.DeviceBwBytesPerNs = 360.0;
  Spec.PcieBwBytesPerNs = 31.5;
  // The consumer host (Ryzen 7 5800X) has a faster single-thread clock
  // but the GPU sustains fewer concurrent analysis lanes.
  Spec.HostAnalysisCostPerRecord = 3800;
  Spec.NvbitHostAnalysisCostPerRecord = 5600;
  Spec.DeviceAnalysisCostPerRecord = 220;
  Spec.DeviceAnalysisSpeedup = 36.0;
  return Spec;
}

GpuSpec sim::mi300xSpec() {
  GpuSpec Spec;
  Spec.Name = "MI300X";
  Spec.Vendor = VendorKind::AMD;
  Spec.NumSMs = 304; // compute units
  Spec.ThreadsPerSM = 2048;
  Spec.MemoryBytes = 192 * GiB;
  Spec.FlopsPerNs = 163400.0;
  Spec.DeviceBwBytesPerNs = 5300.0;
  Spec.PcieBwBytesPerNs = 63.0;
  Spec.HostAnalysisCostPerRecord = 3400;
  Spec.NvbitHostAnalysisCostPerRecord = 5900;
  Spec.DeviceAnalysisCostPerRecord = 150;
  Spec.DeviceAnalysisSpeedup = 56.0;
  return Spec;
}

namespace {

/// The one name -> preset table both lookup functions derive from.
const std::vector<std::pair<const char *, GpuSpec (*)()>> &gpuPresets() {
  static const std::vector<std::pair<const char *, GpuSpec (*)()>> Presets =
      {{"A100", sim::a100Spec},
       {"RTX3060", sim::rtx3060Spec},
       {"MI300X", sim::mi300xSpec}};
  return Presets;
}

} // namespace

GpuSpec sim::gpuSpecByName(const std::string &Name) {
  for (const auto &[Preset, Make] : gpuPresets())
    if (Name == Preset)
      return Make();
  reportFatalError("unknown GPU spec name: " + Name);
}

const std::vector<std::string> &sim::knownGpuNames() {
  static const std::vector<std::string> Names = [] {
    std::vector<std::string> Out;
    for (const auto &[Preset, Make] : gpuPresets()) {
      (void)Make;
      Out.push_back(Preset);
    }
    return Out;
  }();
  return Names;
}
