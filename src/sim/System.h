//===- sim/System.h - Multi-device simulated machine ------------*- C++ -*-===//
//
// Part of the PASTA reproduction, under the MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// A System bundles a shared SimClock with one or more simulated devices —
/// the analogue of one host machine in the paper's Table III. Multi-GPU
/// experiments (Fig. 15) build a two-A100 system.
///
//===----------------------------------------------------------------------===//

#ifndef PASTA_SIM_SYSTEM_H
#define PASTA_SIM_SYSTEM_H

#include "sim/Clock.h"
#include "sim/Device.h"
#include "sim/GpuSpec.h"

#include <memory>
#include <vector>

namespace pasta {
namespace sim {

/// One simulated host machine with attached accelerators.
class System {
public:
  /// Builds one device per spec, all sharing one clock.
  explicit System(const std::vector<GpuSpec> &Specs);

  /// Convenience: single-device system.
  explicit System(const GpuSpec &Spec);

  int numDevices() const { return static_cast<int>(Devices.size()); }

  Device &device(int Index);
  const Device &device(int Index) const;

  SimClock &clock() { return Clock; }
  const SimClock &clock() const { return Clock; }

private:
  SimClock Clock;
  std::vector<std::unique_ptr<Device>> Devices;
};

} // namespace sim
} // namespace pasta

#endif // PASTA_SIM_SYSTEM_H
