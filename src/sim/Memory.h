//===- sim/Memory.h - Device memory allocator -------------------*- C++ -*-===//
//
// Part of the PASTA reproduction, under the MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// First-fit free-list allocator over a simulated device address space.
/// cudaMalloc/hipMalloc allocations and UVM managed ranges both draw
/// addresses from here; UVM residency is tracked separately in sim/Uvm.h.
///
//===----------------------------------------------------------------------===//

#ifndef PASTA_SIM_MEMORY_H
#define PASTA_SIM_MEMORY_H

#include <cstdint>
#include <map>
#include <optional>

namespace pasta {
namespace sim {

/// Simulated device virtual address.
using DeviceAddr = std::uint64_t;

/// One live allocation: [Base, Base + Bytes).
struct Allocation {
  DeviceAddr Base = 0;
  std::uint64_t Bytes = 0;
  bool Managed = false;

  bool contains(DeviceAddr Addr) const {
    return Addr >= Base && Addr < Base + Bytes;
  }
};

/// First-fit allocator over [BaseAddr, BaseAddr + Capacity).
///
/// Managed (UVM) allocations are tagged but share the same address space;
/// only non-managed allocations count against physical device capacity
/// (managed residency is budgeted by UvmSpace).
class DeviceMemoryAllocator {
public:
  DeviceMemoryAllocator(DeviceAddr BaseAddr, std::uint64_t Capacity);

  /// Allocates \p Bytes (rounded up to 512-byte granularity); returns 0 on
  /// out-of-address-space. \p Bytes must be nonzero.
  DeviceAddr allocate(std::uint64_t Bytes, bool Managed);

  /// Frees the allocation starting exactly at \p Base; returns its size, or
  /// std::nullopt if \p Base is not a live allocation base.
  std::optional<std::uint64_t> free(DeviceAddr Base);

  /// Finds the live allocation containing \p Addr (not necessarily at its
  /// base).
  std::optional<Allocation> findContaining(DeviceAddr Addr) const;

  /// Finds the live allocation starting exactly at \p Base.
  std::optional<Allocation> find(DeviceAddr Base) const;

  /// Sum of live non-managed allocation sizes.
  std::uint64_t devicePhysicalBytes() const { return PhysicalBytes; }
  /// Sum of live managed allocation sizes.
  std::uint64_t managedBytes() const { return ManagedTotalBytes; }
  std::size_t numAllocations() const { return Live.size(); }

  /// Visits every live allocation in address order.
  template <typename Fn> void forEachAllocation(Fn Visit) const {
    for (const auto &[Base, Alloc] : Live)
      Visit(Alloc);
  }

private:
  DeviceAddr BaseAddr;
  std::uint64_t Capacity;
  /// Free spans keyed by base address -> size; coalesced on free.
  std::map<DeviceAddr, std::uint64_t> FreeSpans;
  /// Live allocations keyed by base.
  std::map<DeviceAddr, Allocation> Live;
  std::uint64_t PhysicalBytes = 0;
  std::uint64_t ManagedTotalBytes = 0;
};

} // namespace sim
} // namespace pasta

#endif // PASTA_SIM_MEMORY_H
