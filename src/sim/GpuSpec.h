//===- sim/GpuSpec.h - Per-GPU capability and cost model --------*- C++ -*-===//
//
// Part of the PASTA reproduction, under the MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// GpuSpec describes one simulated accelerator: capacity, throughput, UVM
/// costs and instrumentation costs. Presets reproduce the paper's three
/// machines (Table III): NVIDIA A100 80GB, NVIDIA GeForce RTX 3060 and AMD
/// MI300X. The constants are calibrated so that *relative* results (who
/// wins, by what order of magnitude, where crossovers fall) match the
/// paper; absolute nanoseconds are not meaningful.
///
//===----------------------------------------------------------------------===//

#ifndef PASTA_SIM_GPUSPEC_H
#define PASTA_SIM_GPUSPEC_H

#include "support/Units.h"

#include <cstdint>
#include <string>
#include <vector>

namespace pasta {
namespace sim {

/// Accelerator vendor; drives which profiling backends are available and
/// which event-format quirks the runtime exhibits.
enum class VendorKind { NVIDIA, AMD };

/// Static description + cost model of one simulated GPU.
struct GpuSpec {
  std::string Name;
  VendorKind Vendor = VendorKind::NVIDIA;

  //===--------------------------------------------------------------------===
  // Architecture
  //===--------------------------------------------------------------------===
  unsigned NumSMs = 108;
  unsigned ThreadsPerSM = 2048;
  std::uint64_t MemoryBytes = 80 * GiB;

  //===--------------------------------------------------------------------===
  // Throughput (cost model)
  //===--------------------------------------------------------------------===
  /// Peak arithmetic throughput in FLOPs per nanosecond.
  double FlopsPerNs = 19500.0; // 19.5 TFLOPS fp32
  /// Device memory bandwidth in bytes per nanosecond.
  double DeviceBwBytesPerNs = 2039.0; // ~2 TB/s HBM2e
  /// Host<->device interconnect bandwidth in bytes per nanosecond.
  double PcieBwBytesPerNs = 31.5; // PCIe 4.0 x16
  /// Fixed launch latency per kernel.
  SimTime KernelLaunchLatency = 4 * Microsecond;
  /// Fixed latency per memcpy/memset call.
  SimTime TransferLatency = 8 * Microsecond;

  //===--------------------------------------------------------------------===
  // UVM (2 MiB pages)
  //===--------------------------------------------------------------------===
  std::uint64_t UvmPageBytes = 2 * MiB;
  /// Fixed cost of servicing one far page fault (GPU stalls on it).
  SimTime PageFaultLatency = 25 * Microsecond;
  /// Fault-driven migration achieves only a fraction of bulk PCIe bandwidth.
  double FaultMigrationBwFraction = 0.25;
  /// Fraction of bulk prefetch transfer hidden by compute overlap.
  double PrefetchOverlapFraction = 0.70;
  /// Fixed host-side cost per prefetch/advise API call.
  SimTime PrefetchCallLatency = 12 * Microsecond;
  /// Cost of evicting one dirty page (write-back over PCIe at bulk BW is
  /// charged separately).
  SimTime EvictionLatency = 20 * Microsecond;

  //===--------------------------------------------------------------------===
  // Instrumentation (drives Figures 9 and 10).
  //
  // Calibration targets (paper Fig. 9): overhead relative to native model
  // execution of ~1e2 for CS-GPU, ~1e4..1e5 for CS-CPU, ~1e5..1e6 (or DNF)
  // for NVBIT-CPU; speedup of the GPU-resident model of ~941x / ~13006x
  // (A100) and ~627x / ~7353x (RTX 3060) over CS-CPU / NVBIT-CPU.
  //===--------------------------------------------------------------------===
  /// Device-side cost of recording one instrumented memory operation into
  /// the device trace buffer (Sanitizer-style patched access). Amortized
  /// over concurrently resident threads during collection.
  SimTime RecordWriteCost = 12;
  /// Device-side cost per operation for NVBit-style SASS trampolines,
  /// which save/restore full register state around the injected call.
  SimTime NvbitTrampolineCost = 600;
  /// One-time SASS dump+parse cost per static instruction per module
  /// (NVBit must disassemble to find memory instructions).
  SimTime SassParseCostPerInstr = 900;
  /// Host-side analysis cost per trace record on the single analysis
  /// thread (Sanitizer MemoryTracker-style record).
  SimTime HostAnalysisCostPerRecord = 3400;
  /// Host-side analysis cost per raw NVBit record (needs SASS-level
  /// decode before the map update).
  SimTime NvbitHostAnalysisCostPerRecord = 5950;
  /// Device-side analysis cost per trace record before applying the
  /// effective parallel speedup below.
  SimTime DeviceAnalysisCostPerRecord = 170;
  /// Effective parallel speedup of PASTA's in-situ device analysis threads
  /// (atomic contention on shared result counters caps this far below the
  /// raw thread count).
  double DeviceAnalysisSpeedup = 48.0;
  /// Bytes per trace record transferred over PCIe in host-side analysis.
  std::uint64_t TraceRecordBytes = 24;
  /// Fixed cost per device-buffer fetch/flush round trip (stall + sync).
  SimTime BufferFlushLatency = 30 * Microsecond;

  //===--------------------------------------------------------------------===
  // Derived helpers
  //===--------------------------------------------------------------------===
  std::uint64_t maxResidentThreads() const {
    return static_cast<std::uint64_t>(NumSMs) * ThreadsPerSM;
  }
  SimTime computeTime(double Flops) const {
    return static_cast<SimTime>(Flops / FlopsPerNs);
  }
  SimTime deviceMemTime(double Bytes) const {
    return static_cast<SimTime>(Bytes / DeviceBwBytesPerNs);
  }
  SimTime pcieTime(double Bytes) const {
    return static_cast<SimTime>(Bytes / PcieBwBytesPerNs);
  }
};

/// NVIDIA A100 80GB (paper machine A).
GpuSpec a100Spec();
/// NVIDIA GeForce RTX 3060 (paper machine B).
GpuSpec rtx3060Spec();
/// AMD Instinct MI300X (paper machine C).
GpuSpec mi300xSpec();

/// Looks a preset up by name ("A100", "RTX3060", "MI300X"); fatal error on
/// unknown names.
GpuSpec gpuSpecByName(const std::string &Name);

/// Preset names gpuSpecByName accepts, in a stable order (validating
/// callers — the SessionBuilder — diagnose instead of dying).
const std::vector<std::string> &knownGpuNames();

} // namespace sim
} // namespace pasta

#endif // PASTA_SIM_GPUSPEC_H
