//===- lint/Lexer.cpp - Minimal C++ lexer for pasta-lint ------------------===//
//
// Part of the PASTA reproduction, under the MIT license.
//
//===----------------------------------------------------------------------===//
//
// Tokenizes C++ just deeply enough for the rules in Rules.cpp: comments
// are stripped (and mined for `pasta-lint: allow(...)` suppressions),
// string/char/raw-string literals collapse to one opaque token each,
// preprocessor directives collapse to one token per logical line, and
// everything else becomes identifier / number / single-character
// punctuation tokens with line numbers.
//
//===----------------------------------------------------------------------===//

#include "lint/Lint.h"

#include <cctype>

namespace pasta {
namespace lint {

namespace {

bool isIdentStart(char C) {
  return std::isalpha(static_cast<unsigned char>(C)) || C == '_';
}

bool isIdentChar(char C) {
  return std::isalnum(static_cast<unsigned char>(C)) || C == '_';
}

/// Splits "rule-a, rule-b" into trimmed ids.
std::vector<std::string> splitRuleIds(const std::string &List) {
  std::vector<std::string> Ids;
  std::string Cur;
  for (char C : List) {
    if (C == ',') {
      if (!Cur.empty())
        Ids.push_back(Cur);
      Cur.clear();
      continue;
    }
    if (std::isspace(static_cast<unsigned char>(C)))
      continue;
    Cur.push_back(C);
  }
  if (!Cur.empty())
    Ids.push_back(Cur);
  return Ids;
}

/// Mines one comment's text for "pasta-lint: allow(<ids>)".
void collectSuppression(const std::string &Comment, unsigned Line,
                        std::vector<Suppression> &Out) {
  const std::string Marker = "pasta-lint:";
  std::size_t At = Comment.find(Marker);
  if (At == std::string::npos)
    return;
  std::size_t Allow = Comment.find("allow(", At + Marker.size());
  if (Allow == std::string::npos)
    return;
  std::size_t Open = Allow + 6;
  std::size_t Close = Comment.find(')', Open);
  if (Close == std::string::npos)
    return;
  Suppression S;
  S.RuleIds = splitRuleIds(Comment.substr(Open, Close - Open));
  S.Line = Line;
  if (!S.RuleIds.empty())
    Out.push_back(std::move(S));
}

} // namespace

std::string SourceFile::baseName() const {
  std::size_t Slash = Path.find_last_of('/');
  return Slash == std::string::npos ? Path : Path.substr(Slash + 1);
}

bool SourceFile::suppresses(const std::string &RuleId) const {
  for (const Suppression &S : Suppressions)
    for (const std::string &Id : S.RuleIds)
      if (Id == RuleId || Id == "all")
        return true;
  return false;
}

SourceFile lex(std::string Path, std::string Content) {
  SourceFile File;
  File.Path = std::move(Path);
  File.Content = std::move(Content);
  const std::string &Src = File.Content;

  std::size_t I = 0;
  const std::size_t N = Src.size();
  unsigned Line = 1;
  bool AtLineStart = true; // only whitespace seen since the last newline

  auto push = [&](TokenKind Kind, std::string Text, unsigned AtLine) {
    File.Tokens.push_back(Token{Kind, std::move(Text), AtLine});
  };

  while (I < N) {
    char C = Src[I];

    if (C == '\n') {
      ++Line;
      ++I;
      AtLineStart = true;
      continue;
    }
    if (std::isspace(static_cast<unsigned char>(C))) {
      ++I;
      continue;
    }

    // Line comment.
    if (C == '/' && I + 1 < N && Src[I + 1] == '/') {
      std::size_t End = Src.find('\n', I);
      if (End == std::string::npos)
        End = N;
      collectSuppression(Src.substr(I, End - I), Line,
                         File.Suppressions);
      I = End;
      continue;
    }
    // Block comment (may span lines; suppression anchored to its start).
    if (C == '/' && I + 1 < N && Src[I + 1] == '*') {
      std::size_t End = Src.find("*/", I + 2);
      std::size_t Stop = End == std::string::npos ? N : End + 2;
      collectSuppression(Src.substr(I, Stop - I), Line,
                         File.Suppressions);
      for (std::size_t J = I; J < Stop; ++J)
        if (Src[J] == '\n')
          ++Line;
      I = Stop;
      continue;
    }

    // Preprocessor directive: one token per logical (backslash-continued)
    // line, first column only modulo whitespace.
    if (C == '#' && AtLineStart) {
      unsigned StartLine = Line;
      std::string Text;
      while (I < N) {
        std::size_t End = Src.find('\n', I);
        if (End == std::string::npos)
          End = N;
        Text.append(Src, I, End - I);
        bool Continued = !Text.empty() && Text.back() == '\\';
        if (Continued)
          Text.pop_back();
        I = End;
        if (I < N) {
          ++Line;
          ++I; // consume the newline
        }
        if (!Continued)
          break;
      }
      push(TokenKind::Preprocessor, std::move(Text), StartLine);
      AtLineStart = true;
      continue;
    }

    AtLineStart = false;

    // Raw string literal: R"delim(...)delim".
    if (C == 'R' && I + 1 < N && Src[I + 1] == '"') {
      std::size_t DelimEnd = Src.find('(', I + 2);
      if (DelimEnd != std::string::npos) {
        std::string Delim = Src.substr(I + 2, DelimEnd - (I + 2));
        std::string Closer = ")" + Delim + "\"";
        std::size_t End = Src.find(Closer, DelimEnd + 1);
        std::size_t Stop =
            End == std::string::npos ? N : End + Closer.size();
        unsigned StartLine = Line;
        for (std::size_t J = I; J < Stop; ++J)
          if (Src[J] == '\n')
            ++Line;
        push(TokenKind::String, "R\"...\"", StartLine);
        I = Stop;
        continue;
      }
    }

    // String / char literal (escapes honored, contents discarded).
    if (C == '"' || C == '\'') {
      char Quote = C;
      std::size_t J = I + 1;
      while (J < N && Src[J] != Quote) {
        if (Src[J] == '\\' && J + 1 < N)
          ++J;
        if (Src[J] == '\n')
          ++Line;
        ++J;
      }
      push(TokenKind::String, Quote == '"' ? "\"...\"" : "'...'", Line);
      I = J < N ? J + 1 : N;
      continue;
    }

    if (isIdentStart(C)) {
      std::size_t J = I + 1;
      while (J < N && isIdentChar(Src[J]))
        ++J;
      push(TokenKind::Identifier, Src.substr(I, J - I), Line);
      I = J;
      continue;
    }

    if (std::isdigit(static_cast<unsigned char>(C))) {
      // Good enough for C++ numeric literals the rules read (hex, digit
      // separators, suffixes); exponents' signs ride as punctuation,
      // which no rule cares about.
      std::size_t J = I + 1;
      while (J < N && (isIdentChar(Src[J]) || Src[J] == '\'' ||
                       Src[J] == '.'))
        ++J;
      push(TokenKind::Number, Src.substr(I, J - I), Line);
      I = J;
      continue;
    }

    push(TokenKind::Punctuation, std::string(1, C), Line);
    ++I;
  }

  return File;
}

} // namespace lint
} // namespace pasta
