//===- lint/Lint.h - pasta-lint core ----------------------------*- C++ -*-===//
//
// Part of the PASTA reproduction, under the MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The contract-enforcement static checker behind `pasta-lint`
/// (docs/VALIDATION.md is the narrative spec). A deliberately small,
/// dependency-free C++ lexer plus a table of project-specific rules the
/// CI gates on: tool-subscription declarations, payload-handle hygiene,
/// determinism bans, explicit memory orders on the admission hot path,
/// header hygiene, and the trace wire-format manifest.
///
/// The checker is token-based, not a real parser: each rule pattern-
/// matches the token stream (comments and string literals already
/// stripped by the lexer), which is exact enough for the house style
/// this repo enforces everywhere and keeps the whole binary self-
/// contained — no clang tooling, no external deps, fast enough to run
/// as a CTest test on every build.
///
/// Suppressions are per file: a comment anywhere in a file of the form
///
///   // pasta-lint: allow(rule-id, other-rule-id)
///
/// disables the named rules for that file (the lexer records the
/// comment, the engine applies it before reporting). Every suppression
/// should say why on the same line.
///
//===----------------------------------------------------------------------===//

#ifndef PASTA_LINT_LINT_H
#define PASTA_LINT_LINT_H

#include <cstdint>
#include <functional>
#include <memory>
#include <string>
#include <vector>

namespace pasta {
namespace lint {

//===----------------------------------------------------------------------===//
// Tokens
//===----------------------------------------------------------------------===//

/// What a lexed token is. String/char literals survive as single tokens
/// (rules never need their contents); comments are diverted into
/// SourceFile::Suppressions/Comments instead of the token stream.
enum class TokenKind : std::uint8_t {
  Identifier,   ///< identifiers and keywords ("class", "subscription", ...)
  Number,       ///< integer / floating literals (value kept as text)
  String,       ///< "...", '...', R"(...)" — contents opaque
  Punctuation,  ///< one token per punctuation character ("::" is two)
  Preprocessor, ///< one token per directive line, text = whole line
};

/// One lexed token; Text is a view into the file's content for
/// identifiers and numbers, a canonical spelling otherwise.
struct Token {
  TokenKind Kind = TokenKind::Punctuation;
  std::string Text;
  unsigned Line = 0;

  bool is(const char *S) const { return Text == S; }
  bool isIdent(const char *S) const {
    return Kind == TokenKind::Identifier && Text == S;
  }
};

/// One `// pasta-lint: allow(...)` comment, expanded to the rule ids it
/// names.
struct Suppression {
  std::vector<std::string> RuleIds;
  unsigned Line = 0;
};

/// A lexed source file as the rules see it.
struct SourceFile {
  /// Path as reported in diagnostics (repo-relative when the driver
  /// walks a root).
  std::string Path;
  /// Raw content (the wire-format rule re-reads constant values).
  std::string Content;
  std::vector<Token> Tokens;
  std::vector<Suppression> Suppressions;

  bool isHeader() const {
    return Path.size() > 2 && Path.compare(Path.size() - 2, 2, ".h") == 0;
  }
  /// Path's last component ("EventQueue.h").
  std::string baseName() const;
  /// True when a suppression names \p RuleId (file-wide).
  bool suppresses(const std::string &RuleId) const;
};

/// Lexes \p Content into tokens + suppression comments. Never fails:
/// malformed trailing constructs lex as best-effort tokens (the linter
/// runs on code the compiler already accepted).
SourceFile lex(std::string Path, std::string Content);

//===----------------------------------------------------------------------===//
// Diagnostics and rules
//===----------------------------------------------------------------------===//

/// One finding: file:line plus the violated rule.
struct Diagnostic {
  std::string Path;
  unsigned Line = 0;
  std::string RuleId;
  std::string Message;

  /// "path:line: error: message [rule-id]" — the gcc-style shape
  /// editors and CI annotate from.
  std::string str() const;
};

/// Everything a rule may look at beyond the file itself.
struct LintContext {
  /// Repo root the relative diagnostics are anchored at.
  std::string Root;
  /// The wire-format manifest path (root-relative default:
  /// src/lint/trace_format.manifest).
  std::string ManifestPath;
  /// The stream-envelope manifest path (root-relative default:
  /// src/lint/stream_envelope.manifest).
  std::string StreamManifestPath;
  /// When set, the manifest rules rewrite their manifests instead of
  /// diffing against them (pasta-lint --update-manifest).
  bool UpdateManifest = false;
};

/// One registered rule: id, what it enforces, and the check itself.
struct Rule {
  std::string Id;
  std::string Description;
  std::function<void(const SourceFile &, const LintContext &,
                     std::vector<Diagnostic> &)>
      Check;
};

/// The rule table (stable id order). Built once; tests index it by id.
const std::vector<Rule> &rules();

/// Runs every non-suppressed rule over \p File. Diagnostics from rules
/// the file suppresses are dropped here, not in the rules.
std::vector<Diagnostic> lintFile(const SourceFile &File,
                                 const LintContext &Ctx);

/// Convenience for tests: lex + lint an in-memory buffer.
std::vector<Diagnostic> lintString(const std::string &Path,
                                   const std::string &Content,
                                   const LintContext &Ctx = LintContext());

//===----------------------------------------------------------------------===//
// Wire-format manifest
//===----------------------------------------------------------------------===//

/// Serializes the normative constants of a lexed TraceFormat.h (magic,
/// version, flags, sizes, record tags) into the canonical manifest text
/// the wire-format rule diffs against. Empty string when the file does
/// not look like the trace-format header (missing constants).
std::string traceFormatManifest(const SourceFile &File);

/// Serializes the normative constants of a lexed StreamEnvelope.h
/// (magics, protocol versions, frame/message sizes, message and reject
/// codes) into the canonical manifest text the stream-envelope rule
/// diffs against. Empty string when the file does not look like the
/// stream-envelope header (missing constants).
std::string streamEnvelopeManifest(const SourceFile &File);

//===----------------------------------------------------------------------===//
// Driver entry point
//===----------------------------------------------------------------------===//

/// Lints every .h/.cpp under \p Paths (files or directories, resolved
/// against \p Ctx.Root when relative), appending diagnostics. Returns
/// false when a path cannot be read (reported to stderr).
bool lintPaths(const std::vector<std::string> &Paths, const LintContext &Ctx,
               std::vector<Diagnostic> &Out);

} // namespace lint
} // namespace pasta

#endif // PASTA_LINT_LINT_H
