//===- lint/Lint.cpp - pasta-lint engine: file walking ---------------------===//
//
// Part of the PASTA reproduction, under the MIT license.
//
//===----------------------------------------------------------------------===//

#include "lint/Lint.h"

#include <algorithm>
#include <cstdio>
#include <fstream>
#include <sstream>
#include <sys/stat.h>

#include <dirent.h>

namespace pasta {
namespace lint {

namespace {

bool isLintableFile(const std::string &Path) {
  auto endsWith = [&](const char *Suffix) {
    std::size_t L = std::char_traits<char>::length(Suffix);
    return Path.size() >= L &&
           Path.compare(Path.size() - L, L, Suffix) == 0;
  };
  return endsWith(".h") || endsWith(".cpp");
}

/// Recursively collects lintable files under \p Path (POSIX dirent —
/// the linter must stay dependency-light and builds everywhere the
/// repo does).
void collectFiles(const std::string &Path, std::vector<std::string> &Out,
                  bool &Ok) {
  struct stat St;
  if (::stat(Path.c_str(), &St) != 0) {
    std::fprintf(stderr, "pasta-lint: cannot stat '%s'\n", Path.c_str());
    Ok = false;
    return;
  }
  if (S_ISREG(St.st_mode)) {
    if (isLintableFile(Path))
      Out.push_back(Path);
    return;
  }
  if (!S_ISDIR(St.st_mode))
    return;
  DIR *Dir = ::opendir(Path.c_str());
  if (!Dir) {
    std::fprintf(stderr, "pasta-lint: cannot open '%s'\n", Path.c_str());
    Ok = false;
    return;
  }
  std::vector<std::string> Entries;
  while (dirent *E = ::readdir(Dir)) {
    std::string Name = E->d_name;
    if (Name == "." || Name == ".." || Name.empty() || Name[0] == '.')
      continue;
    Entries.push_back(Path + "/" + Name);
  }
  ::closedir(Dir);
  // Deterministic order regardless of directory hashing.
  std::sort(Entries.begin(), Entries.end());
  for (const std::string &E : Entries)
    collectFiles(E, Out, Ok);
}

} // namespace

bool lintPaths(const std::vector<std::string> &Paths,
               const LintContext &Ctx, std::vector<Diagnostic> &Out) {
  bool Ok = true;
  std::vector<std::string> Files;
  for (const std::string &P : Paths) {
    std::string Resolved = P;
    if (!Ctx.Root.empty() && !P.empty() && P.front() != '/')
      Resolved = Ctx.Root + "/" + P;
    collectFiles(Resolved, Files, Ok);
  }
  for (const std::string &F : Files) {
    std::ifstream In(F, std::ios::binary);
    if (!In) {
      std::fprintf(stderr, "pasta-lint: cannot read '%s'\n", F.c_str());
      Ok = false;
      continue;
    }
    std::ostringstream Buf;
    Buf << In.rdbuf();
    // Report root-relative paths so diagnostics are stable across
    // checkouts (and clickable from the repo root).
    std::string Reported = F;
    if (!Ctx.Root.empty() &&
        F.compare(0, Ctx.Root.size() + 1, Ctx.Root + "/") == 0)
      Reported = F.substr(Ctx.Root.size() + 1);
    std::vector<Diagnostic> FileDiags =
        lintFile(lex(Reported, Buf.str()), Ctx);
    Out.insert(Out.end(), FileDiags.begin(), FileDiags.end());
  }
  return Ok;
}

} // namespace lint
} // namespace pasta
