//===- lint/Rules.cpp - pasta-lint rule table -----------------------------===//
//
// Part of the PASTA reproduction, under the MIT license.
//
//===----------------------------------------------------------------------===//
//
// The project-specific contracts pasta-lint enforces (one entry in
// rules() per family; docs/VALIDATION.md documents each id). Rules are
// token-stream matchers — exact for the house style this repo uses,
// with per-file `// pasta-lint: allow(<id>)` suppressions as the
// escape hatch for deliberate exceptions.
//
//===----------------------------------------------------------------------===//

#include "lint/Lint.h"

#include <algorithm>
#include <cstdio>
#include <fstream>
#include <set>
#include <sstream>

namespace pasta {
namespace lint {

namespace {

//===----------------------------------------------------------------------===//
// Token-walk helpers
//===----------------------------------------------------------------------===//

/// Index of the next token matching \p Pred at or after \p From; npos
/// when absent.
template <typename Pred>
std::size_t findToken(const std::vector<Token> &Toks, std::size_t From,
                      Pred P) {
  for (std::size_t I = From; I < Toks.size(); ++I)
    if (P(Toks[I]))
      return I;
  return std::string::npos;
}

/// Token index just past the brace-matched block opening at \p OpenBrace
/// (which must be '{'); Toks.size() when unbalanced.
std::size_t matchBrace(const std::vector<Token> &Toks,
                       std::size_t OpenBrace) {
  int Depth = 0;
  for (std::size_t I = OpenBrace; I < Toks.size(); ++I) {
    if (Toks[I].is("{"))
      ++Depth;
    else if (Toks[I].is("}") && --Depth == 0)
      return I + 1;
  }
  return Toks.size();
}

/// One `class X : ... Tool ... {` body found in a file.
struct ToolClass {
  std::string Name;
  unsigned Line = 0;
  std::size_t BodyBegin = 0; ///< index of the '{'
  std::size_t BodyEnd = 0;   ///< index just past the matching '}'
};

/// Finds every class/struct whose base-clause names Tool directly.
/// Token-based: a forward declaration (no '{' before ';') is skipped,
/// and the base clause is the token range between ':' and '{'.
std::vector<ToolClass> findToolClasses(const SourceFile &File) {
  const std::vector<Token> &Toks = File.Tokens;
  std::vector<ToolClass> Out;
  for (std::size_t I = 0; I + 1 < Toks.size(); ++I) {
    if (!(Toks[I].isIdent("class") || Toks[I].isIdent("struct")))
      continue;
    // `enum class` is not a class.
    if (I > 0 && Toks[I - 1].isIdent("enum"))
      continue;
    std::size_t NameAt = I + 1;
    if (NameAt >= Toks.size() ||
        Toks[NameAt].Kind != TokenKind::Identifier)
      continue;
    // Find the head's end: '{' begins the body, ';' means forward
    // declaration, and any other early terminator means this wasn't a
    // class head after all (e.g. `class X *P;` uses).
    std::size_t Colon = std::string::npos;
    std::size_t Open = std::string::npos;
    for (std::size_t J = NameAt + 1; J < Toks.size(); ++J) {
      if (Toks[J].is(";") || Toks[J].is(")") || Toks[J].is(">"))
        break;
      if (Toks[J].is(":") && Colon == std::string::npos)
        Colon = J;
      if (Toks[J].is("{")) {
        Open = J;
        break;
      }
    }
    if (Open == std::string::npos || Colon == std::string::npos ||
        Colon > Open)
      continue;
    bool DerivesTool = false;
    for (std::size_t J = Colon + 1; J < Open; ++J)
      if (Toks[J].isIdent("Tool"))
        DerivesTool = true;
    if (!DerivesTool)
      continue;
    ToolClass TC;
    TC.Name = Toks[NameAt].Text;
    TC.Line = Toks[I].Line;
    TC.BodyBegin = Open;
    TC.BodyEnd = matchBrace(Toks, Open);
    Out.push_back(std::move(TC));
  }
  return Out;
}

//===----------------------------------------------------------------------===//
// tool-subscription: concrete Tool subclasses declare subscription()
//===----------------------------------------------------------------------===//

void checkToolSubscription(const SourceFile &File, const LintContext &,
                           std::vector<Diagnostic> &Out) {
  for (const ToolClass &TC : findToolClasses(File)) {
    const std::vector<Token> &Toks = File.Tokens;
    bool Declares = false;
    for (std::size_t I = TC.BodyBegin; I + 1 < TC.BodyEnd; ++I)
      if (Toks[I].isIdent("subscription") && Toks[I + 1].is("(")) {
        Declares = true;
        break;
      }
    if (!Declares)
      Out.push_back(Diagnostic{
          File.Path, TC.Line, "tool-subscription",
          "Tool subclass '" + TC.Name +
              "' does not declare subscription(); the silent legacy "
              "default subscribes to every event kind under the Serial "
              "contract — declare the exact subscription (or suppress "
              "where the migration default is the point)"});
  }
}

//===----------------------------------------------------------------------===//
// tool-payload-handles: no raw KernelDesc*/TensorInfo* members in tools
//===----------------------------------------------------------------------===//

void checkToolPayloadHandles(const SourceFile &File, const LintContext &,
                             std::vector<Diagnostic> &Out) {
  const std::vector<Token> &Toks = File.Tokens;
  for (const ToolClass &TC : findToolClasses(File)) {
    int Brace = 0; // depth relative to the class body
    int Paren = 0;
    for (std::size_t I = TC.BodyBegin; I < TC.BodyEnd; ++I) {
      const Token &T = Toks[I];
      if (T.is("{"))
        ++Brace;
      else if (T.is("}"))
        --Brace;
      else if (T.is("("))
        ++Paren;
      else if (T.is(")"))
        --Paren;
      // Member-declaration scope only: directly inside the class body,
      // outside any parameter list or member-function body.
      if (Brace != 1 || Paren != 0)
        continue;
      if (!(T.isIdent("KernelDesc") || T.isIdent("TensorInfo")))
        continue;
      // Scan the declarator: a '*' before any of ';(>,' means a raw
      // pointer; a following '(' means a function returning one (the
      // contract bans *storing*, not returning).
      bool SawStar = false;
      bool IsMember = false;
      for (std::size_t J = I + 1; J < TC.BodyEnd; ++J) {
        const Token &D = Toks[J];
        if (D.is(">") || D.is("(")) // shared_ptr<...> / function decl
          break;
        if (D.is("*")) {
          SawStar = true;
          continue;
        }
        if (D.is(";") || D.is("=") || D.is(",") || D.is("{")) {
          IsMember = SawStar;
          break;
        }
      }
      if (IsMember)
        Out.push_back(Diagnostic{
            File.Path, T.Line, "tool-payload-handles",
            "Tool subclass '" + TC.Name + "' stores a raw " + T.Text +
                "* member; event payload pointees are only borrowed "
                "for the duration of a hook — keep a PayloadString/"
                "PayloadStack or the event's owned shared_ptr handle "
                "instead"});
    }
  }
}

//===----------------------------------------------------------------------===//
// no-nondeterminism: replay depends on deterministic sources
//===----------------------------------------------------------------------===//

bool isBannedCall(const std::string &Name) {
  static const std::set<std::string> Banned = {
      "rand",   "srand",        "rand_r", "drand48",
      "random", "gettimeofday", "time",   "clock"};
  return Banned.count(Name) != 0;
}

void checkNondeterminism(const SourceFile &File, const LintContext &,
                         std::vector<Diagnostic> &Out) {
  const std::vector<Token> &Toks = File.Tokens;
  for (std::size_t I = 0; I < Toks.size(); ++I) {
    const Token &T = Toks[I];
    if (T.Kind != TokenKind::Identifier)
      continue;
    if (T.Text == "random_device") {
      Out.push_back(Diagnostic{
          File.Path, T.Line, "no-nondeterminism",
          "std::random_device is banned: deterministic replay and the "
          "reproducible benches require seeded PRNGs — use "
          "support/Rng.h (SplitMix64)"});
      continue;
    }
    if (!isBannedCall(T.Text))
      continue;
    if (I + 1 >= Toks.size() || !Toks[I + 1].is("("))
      continue;
    // Member calls (Clock.time(), X->clock()) are this project's own
    // deterministic clocks; only free or std-qualified calls are the
    // wall-clock/libc nondeterminism the rule bans.
    if (I > 0 && (Toks[I - 1].is(".") || Toks[I - 1].is(">")))
      continue;
    // Declarators, not calls: `SimClock &clock()` / `Time time(...)`.
    // A preceding type name, &, or * means this declares a function of
    // that name (keywords that legally precede a call expression stay
    // flagged).
    if (I > 0) {
      const Token &P = Toks[I - 1];
      if (P.is("&") || P.is("*") || P.is("~"))
        continue;
      if (P.Kind == TokenKind::Identifier && !P.isIdent("return") &&
          !P.isIdent("throw") && !P.isIdent("else") && !P.isIdent("do"))
        continue;
    }
    if (I >= 2 && Toks[I - 1].is(":") && Toks[I - 2].is(":")) {
      // Qualified: banned only when the qualifier is std.
      if (!(I >= 3 && Toks[I - 3].isIdent("std")))
        continue;
    }
    Out.push_back(Diagnostic{
        File.Path, T.Line, "no-nondeterminism",
        "call to '" + T.Text +
            "' is banned outside the allowlist: tool reports must be "
            "identical under capture/replay — take timestamps from "
            "events and randomness from support/Rng.h"});
  }
}

//===----------------------------------------------------------------------===//
// hot-path-memory-order: no defaulted seq_cst in the admission core
//===----------------------------------------------------------------------===//

bool isHotPathFile(const SourceFile &File) {
  static const std::set<std::string> Bases = {
      "EventQueue.h",     "EventQueue.cpp", "EventArena.h",
      "EventArena.cpp",   "EventProcessor.h",
      "EventProcessor.cpp"};
  return Bases.count(File.baseName()) != 0;
}

bool isAtomicOp(const std::string &Name) {
  static const std::set<std::string> Ops = {
      "load",     "store",    "exchange",
      "fetch_add", "fetch_sub", "fetch_or",
      "fetch_and", "fetch_xor", "compare_exchange_weak",
      "compare_exchange_strong"};
  return Ops.count(Name) != 0;
}

void checkHotPathMemoryOrder(const SourceFile &File, const LintContext &,
                             std::vector<Diagnostic> &Out) {
  if (!isHotPathFile(File))
    return;
  const std::vector<Token> &Toks = File.Tokens;
  for (std::size_t I = 1; I + 1 < Toks.size(); ++I) {
    const Token &T = Toks[I];
    if (T.Kind != TokenKind::Identifier || !isAtomicOp(T.Text))
      continue;
    // Only member calls: `.load(` / `->load(`.
    if (!(Toks[I - 1].is(".") || Toks[I - 1].is(">")))
      continue;
    if (!Toks[I + 1].is("("))
      continue;
    // Scan the argument list for an explicit memory order.
    int Depth = 0;
    bool HasOrder = false;
    for (std::size_t J = I + 1; J < Toks.size(); ++J) {
      if (Toks[J].is("("))
        ++Depth;
      else if (Toks[J].is(")") && --Depth == 0)
        break;
      if (Toks[J].Kind == TokenKind::Identifier &&
          Toks[J].Text.compare(0, 12, "memory_order") == 0)
        HasOrder = true;
    }
    if (!HasOrder)
      Out.push_back(Diagnostic{
          File.Path, T.Line, "hot-path-memory-order",
          "'" + T.Text +
              "' without an explicit std::memory_order defaults to "
              "seq_cst on the admission hot path; state the intended "
              "order (and the reasoning it encodes) explicitly"});
  }
}

//===----------------------------------------------------------------------===//
// routing-epoch: the routing-table pointer is read via RoutingEpoch only
//===----------------------------------------------------------------------===//

void checkRoutingEpoch(const SourceFile &File, const LintContext &,
                       std::vector<Diagnostic> &Out) {
  const std::vector<Token> &Toks = File.Tokens;
  // The one sanctioned home of the atomic table pointer is the
  // `class RoutingEpoch { ... }` body (EventProcessor.h); find it so
  // its own member uses are exempt.
  std::size_t BodyBegin = std::string::npos;
  std::size_t BodyEnd = std::string::npos;
  for (std::size_t I = 0; I + 2 < Toks.size(); ++I) {
    if (!Toks[I].isIdent("class") || !Toks[I + 1].isIdent("RoutingEpoch"))
      continue;
    if (!Toks[I + 2].is("{"))
      continue; // forward declaration or mention
    BodyBegin = I + 2;
    BodyEnd = matchBrace(Toks, BodyBegin);
    break;
  }
  for (std::size_t I = 0; I < Toks.size(); ++I) {
    if (!Toks[I].isIdent("EpochTablePtr"))
      continue;
    if (BodyBegin != std::string::npos && I > BodyBegin && I < BodyEnd)
      continue;
    Out.push_back(Diagnostic{
        File.Path, Toks[I].Line, "routing-epoch",
        "direct access to the routing-table pointer 'EpochTablePtr' "
        "outside class RoutingEpoch; read the table through "
        "RoutingEpoch::current() (one acquire load per admission) and "
        "publish new epochs through publish() — bypassing the accessor "
        "breaks the acquire/release contract reconfiguration relies "
        "on"});
  }
}

//===----------------------------------------------------------------------===//
// header-hygiene: guards present, no using-namespace in headers
//===----------------------------------------------------------------------===//

void checkHeaderHygiene(const SourceFile &File, const LintContext &,
                        std::vector<Diagnostic> &Out) {
  if (!File.isHeader())
    return;
  const std::vector<Token> &Toks = File.Tokens;

  bool Guarded = false;
  int DirectivesSeen = 0;
  for (const Token &T : Toks) {
    if (T.Kind != TokenKind::Preprocessor)
      continue;
    ++DirectivesSeen;
    if (T.Text.find("pragma") != std::string::npos &&
        T.Text.find("once") != std::string::npos)
      Guarded = true;
    if (T.Text.find("ifndef") != std::string::npos &&
        DirectivesSeen <= 2)
      Guarded = true;
    if (DirectivesSeen >= 2)
      break;
  }
  if (!Guarded)
    Out.push_back(Diagnostic{
        File.Path, 1, "header-hygiene",
        "header has neither '#pragma once' nor a leading include "
        "guard"});

  for (std::size_t I = 0; I + 1 < Toks.size(); ++I)
    if (Toks[I].isIdent("using") && Toks[I + 1].isIdent("namespace"))
      Out.push_back(Diagnostic{
          File.Path, Toks[I].Line, "header-hygiene",
          "'using namespace' in a header leaks into every includer; "
          "qualify names instead"});
}

//===----------------------------------------------------------------------===//
// wire-format: TraceFormat.h must match the checked-in manifest
//===----------------------------------------------------------------------===//

/// The `Name = <number>` constant value, as written; empty when absent.
std::string constantValue(const std::vector<Token> &Toks,
                          const char *Name) {
  for (std::size_t I = 0; I + 2 < Toks.size(); ++I)
    if (Toks[I].isIdent(Name) && Toks[I + 1].is("=") &&
        Toks[I + 2].Kind == TokenKind::Number)
      return Toks[I + 2].Text;
  return std::string();
}

/// FNV-1a over the comment-stripped token stream: any substantive edit
/// to the header changes it, which is exactly the tripwire the rule
/// wants (comment/doc edits do not).
std::uint64_t tokenFingerprint(const std::vector<Token> &Toks) {
  std::uint64_t H = 1469598103934665603ull;
  auto mix = [&](const std::string &S) {
    for (char C : S) {
      H ^= static_cast<unsigned char>(C);
      H *= 1099511628211ull;
    }
    H ^= 0xff;
    H *= 1099511628211ull;
  };
  for (const Token &T : Toks)
    mix(T.Text);
  return H;
}

/// The `Name = <n> (+ <n>)*` constant, evaluated; empty when absent or
/// not a plain additive literal expression. Covers derived sizes like
/// `StreamHelloFixedSize = 8 + 4 + ...` that constantValue cannot read.
std::string constantSum(const std::vector<Token> &Toks,
                        const char *Name) {
  for (std::size_t I = 0; I + 2 < Toks.size(); ++I) {
    if (!Toks[I].isIdent(Name) || !Toks[I + 1].is("="))
      continue;
    if (Toks[I + 2].Kind != TokenKind::Number)
      return std::string();
    long Sum = std::strtol(Toks[I + 2].Text.c_str(), nullptr, 0);
    std::size_t J = I + 3;
    while (J + 1 < Toks.size() && Toks[J].is("+") &&
           Toks[J + 1].Kind == TokenKind::Number) {
      Sum += std::strtol(Toks[J + 1].Text.c_str(), nullptr, 0);
      J += 2;
    }
    if (J < Toks.size() && !Toks[J].is(";"))
      return std::string(); // a non-additive expression; fingerprint covers it
    return std::to_string(Sum);
  }
  return std::string();
}

/// The char literals of `<ArrayName>[8] = {'P',...}`, concatenated;
/// empty when absent. The lexer collapses char literals, so this reads
/// the raw content like traceFormatManifest does for Magic[8].
std::string magicByteList(const std::string &Content,
                          const char *ArrayName) {
  std::string Bytes;
  std::size_t At = Content.find(std::string(ArrayName) + "[8]");
  if (At == std::string::npos)
    return Bytes;
  std::size_t Open = Content.find('{', At);
  std::size_t Close = Content.find('}', At);
  if (Open == std::string::npos || Close == std::string::npos)
    return Bytes;
  for (std::size_t I = Open; I < Close; ++I)
    if (Content[I] == '\'' && I + 2 < Close) {
      Bytes.push_back(Content[I + 1]);
      I += 2; // past the closing quote
    }
  return Bytes;
}

} // namespace

std::string traceFormatManifest(const SourceFile &File) {
  const std::vector<Token> &Toks = File.Tokens;
  std::string Version = constantValue(Toks, "Version");
  std::string Flags = constantValue(Toks, "HeaderFlags");
  std::string HeaderSize = constantValue(Toks, "HeaderSize");
  std::string PrefixSize = constantValue(Toks, "RecordPrefixSize");
  if (Version.empty() || Flags.empty() || HeaderSize.empty() ||
      PrefixSize.empty())
    return std::string();

  // The magic bytes live in char literals, which the lexer collapses;
  // read them straight from the content.
  std::string MagicBytes;
  std::size_t MagicAt = File.Content.find("Magic[8]");
  if (MagicAt != std::string::npos) {
    std::size_t Open = File.Content.find('{', MagicAt);
    std::size_t Close = File.Content.find('}', MagicAt);
    if (Open != std::string::npos && Close != std::string::npos)
      for (std::size_t I = Open; I < Close; ++I)
        if (File.Content[I] == '\'' && I + 2 < Close) {
          MagicBytes.push_back(File.Content[I + 1]);
          I += 2; // past the closing quote
        }
  }

  // RecordTag enumerators, with C++ implicit-increment semantics.
  std::ostringstream Tags;
  std::size_t EnumAt = findToken(Toks, 0, [](const Token &T) {
    return T.isIdent("RecordTag");
  });
  if (EnumAt != std::string::npos) {
    std::size_t Open = findToken(Toks, EnumAt, [](const Token &T) {
      return T.is("{");
    });
    if (Open != std::string::npos) {
      std::size_t End = matchBrace(Toks, Open);
      long Next = 0;
      for (std::size_t I = Open + 1; I + 1 < End; ++I) {
        if (Toks[I].Kind != TokenKind::Identifier)
          continue;
        long Value = Next;
        if (Toks[I + 1].is("=") && I + 2 < End &&
            Toks[I + 2].Kind == TokenKind::Number)
          Value = std::strtol(Toks[I + 2].Text.c_str(), nullptr, 0);
        Tags << "tag " << Toks[I].Text << " " << Value << "\n";
        Next = Value + 1;
        // Skip to the comma ending this enumerator.
        while (I + 1 < End && !Toks[I + 1].is(","))
          ++I;
      }
    }
  }

  std::ostringstream Out;
  Out << "# pasta trace wire-format manifest - regenerate with: "
         "pasta-lint --update-manifest\n"
      << "version " << Version << "\n"
      << "flags " << Flags << "\n"
      << "header_size " << HeaderSize << "\n"
      << "record_prefix_size " << PrefixSize << "\n"
      << "magic " << MagicBytes << "\n"
      << Tags.str();
  char Buf[32];
  std::snprintf(Buf, sizeof(Buf), "0x%016llx",
                static_cast<unsigned long long>(tokenFingerprint(Toks)));
  Out << "token_fingerprint " << Buf << "\n";
  return Out.str();
}

std::string streamEnvelopeManifest(const SourceFile &File) {
  const std::vector<Token> &Toks = File.Tokens;
  std::string Version = constantValue(Toks, "StreamProtocolVersion");
  std::string HelloFlags = constantValue(Toks, "StreamHelloFlags");
  std::string HelloFixed = constantSum(Toks, "StreamHelloFixedSize");
  std::string FrameHeader = constantValue(Toks, "StreamFrameHeaderSize");
  if (Version.empty() || HelloFlags.empty() || HelloFixed.empty() ||
      FrameHeader.empty())
    return std::string();

  std::ostringstream Out;
  Out << "# pasta stream-envelope wire-format manifest - regenerate "
         "with: pasta-lint --update-manifest\n"
      << "version " << Version << "\n"
      << "hello_flags " << HelloFlags << "\n"
      << "hello_fixed_size " << HelloFixed << "\n"
      << "frame_header_size " << FrameHeader << "\n";

  // Every other normative constant that is a plain literal (or additive
  // expression). Absent names are simply omitted — the fingerprint
  // still trips on their removal.
  static const struct {
    const char *Label;
    const char *Name;
  } Entries[] = {
      {"max_tenant_bytes", "StreamMaxTenantBytes"},
      {"server_msg_size", "StreamServerMsgSize"},
      {"msg_resume", "StreamMsgResume"},
      {"msg_ack", "StreamMsgAck"},
      {"msg_reject", "StreamMsgReject"},
      {"reject_resume_unavailable", "StreamRejectResumeUnavailable"},
      {"reject_stream_busy", "StreamRejectStreamBusy"},
      {"reject_connection_quota", "StreamRejectConnectionQuota"},
      {"reject_poisoned", "StreamRejectPoisoned"},
      {"ack_interval", "StreamAckInterval"},
      {"meta_max_key", "StreamMetaMaxKey"},
      {"control_version", "ControlProtocolVersion"},
      {"control_max_command_bytes", "ControlMaxCommandBytes"},
      {"control_status_ok", "ControlStatusOk"},
      {"control_status_error", "ControlStatusError"},
  };
  for (const auto &E : Entries) {
    std::string Value = constantSum(Toks, E.Name);
    if (!Value.empty())
      Out << E.Label << " " << Value << "\n";
  }

  Out << "magic " << magicByteList(File.Content, "StreamMagic") << "\n"
      << "control_magic "
      << magicByteList(File.Content, "ControlMagic") << "\n";

  char Buf[32];
  std::snprintf(Buf, sizeof(Buf), "0x%016llx",
                static_cast<unsigned long long>(tokenFingerprint(Toks)));
  Out << "token_fingerprint " << Buf << "\n";
  return Out.str();
}

namespace {

/// The "version <n>" line of a manifest text; empty when absent.
std::string manifestVersion(const std::string &Manifest) {
  std::istringstream In(Manifest);
  std::string Line;
  while (std::getline(In, Line))
    if (Line.compare(0, 8, "version ") == 0)
      return Line.substr(8);
  return std::string();
}

void checkWireFormat(const SourceFile &File, const LintContext &Ctx,
                     std::vector<Diagnostic> &Out) {
  if (File.baseName() != "TraceFormat.h")
    return;
  std::string Current = traceFormatManifest(File);
  if (Current.empty()) {
    Out.push_back(Diagnostic{
        File.Path, 1, "wire-format",
        "TraceFormat.h no longer defines the normative constants "
        "(Version/HeaderFlags/HeaderSize/RecordPrefixSize) the "
        "wire-format manifest asserts"});
    return;
  }

  std::string ManifestPath = Ctx.ManifestPath.empty()
                                 ? "src/lint/trace_format.manifest"
                                 : Ctx.ManifestPath;
  if (!Ctx.Root.empty() && ManifestPath.front() != '/')
    ManifestPath = Ctx.Root + "/" + ManifestPath;

  if (Ctx.UpdateManifest) {
    std::ofstream OutFile(ManifestPath, std::ios::trunc);
    OutFile << Current;
    return;
  }

  std::ifstream In(ManifestPath);
  if (!In) {
    Out.push_back(Diagnostic{
        File.Path, 1, "wire-format",
        "wire-format manifest '" + ManifestPath +
            "' is missing; generate it with pasta-lint "
            "--update-manifest and check it in"});
    return;
  }
  std::ostringstream Buf;
  Buf << In.rdbuf();
  std::string Checked = Buf.str();
  if (Checked == Current)
    return;

  if (manifestVersion(Checked) == manifestVersion(Current))
    Out.push_back(Diagnostic{
        File.Path, 1, "wire-format",
        "TraceFormat.h changed without a version bump: traces already "
        "captured would be misread — bump trace::Version, then "
        "regenerate the manifest with pasta-lint --update-manifest"});
  else
    Out.push_back(Diagnostic{
        File.Path, 1, "wire-format",
        "trace::Version was bumped but the manifest is stale; "
        "regenerate it with pasta-lint --update-manifest and check "
        "the new layout in alongside the bump"});
}

void checkStreamEnvelope(const SourceFile &File, const LintContext &Ctx,
                         std::vector<Diagnostic> &Out) {
  if (File.baseName() != "StreamEnvelope.h")
    return;
  std::string Current = streamEnvelopeManifest(File);
  if (Current.empty()) {
    Out.push_back(Diagnostic{
        File.Path, 1, "stream-envelope",
        "StreamEnvelope.h no longer defines the normative constants "
        "(StreamProtocolVersion/StreamHelloFlags/StreamHelloFixedSize/"
        "StreamFrameHeaderSize) the stream-envelope manifest asserts"});
    return;
  }

  std::string ManifestPath = Ctx.StreamManifestPath.empty()
                                 ? "src/lint/stream_envelope.manifest"
                                 : Ctx.StreamManifestPath;
  if (!Ctx.Root.empty() && ManifestPath.front() != '/')
    ManifestPath = Ctx.Root + "/" + ManifestPath;

  if (Ctx.UpdateManifest) {
    std::ofstream OutFile(ManifestPath, std::ios::trunc);
    OutFile << Current;
    return;
  }

  std::ifstream In(ManifestPath);
  if (!In) {
    Out.push_back(Diagnostic{
        File.Path, 1, "stream-envelope",
        "stream-envelope manifest '" + ManifestPath +
            "' is missing; generate it with pasta-lint "
            "--update-manifest and check it in"});
    return;
  }
  std::ostringstream Buf;
  Buf << In.rdbuf();
  std::string Checked = Buf.str();
  if (Checked == Current)
    return;

  if (manifestVersion(Checked) == manifestVersion(Current))
    Out.push_back(Diagnostic{
        File.Path, 1, "stream-envelope",
        "StreamEnvelope.h changed without a version bump: peers "
        "already deployed would reject or misread the session framing "
        "— bump serve::StreamProtocolVersion, then regenerate the "
        "manifest with pasta-lint --update-manifest"});
  else
    Out.push_back(Diagnostic{
        File.Path, 1, "stream-envelope",
        "serve::StreamProtocolVersion was bumped but the manifest is "
        "stale; regenerate it with pasta-lint --update-manifest and "
        "check the new layout in alongside the bump"});
}

} // namespace

const std::vector<Rule> &rules() {
  static const std::vector<Rule> Table = {
      {"tool-subscription",
       "every concrete Tool subclass declares subscription() "
       "explicitly (no silent legacy default)",
       checkToolSubscription},
      {"tool-payload-handles",
       "no raw KernelDesc*/TensorInfo* members in Tool subclasses; "
       "keep PayloadString/PayloadStack or owned shared_ptr handles",
       checkToolPayloadHandles},
      {"no-nondeterminism",
       "rand/random_device/time()-style nondeterminism is banned; "
       "replay and report determinism depend on seeded PRNGs and "
       "event timestamps",
       checkNondeterminism},
      {"hot-path-memory-order",
       "atomics in EventQueue/EventArena/EventProcessor must name an "
       "explicit std::memory_order (no defaulted seq_cst)",
       checkHotPathMemoryOrder},
      {"routing-epoch",
       "the epoch-published routing-table pointer is only touched "
       "inside class RoutingEpoch; everything else goes through "
       "current()/publish()",
       checkRoutingEpoch},
      {"header-hygiene",
       "headers carry '#pragma once' or an include guard and never "
       "'using namespace'",
       checkHeaderHygiene},
      {"wire-format",
       "TraceFormat.h must match the checked-in wire-format manifest; "
       "layout changes require a version bump",
       checkWireFormat},
      {"stream-envelope",
       "StreamEnvelope.h must match the checked-in stream-envelope "
       "manifest; framing changes require a protocol version bump",
       checkStreamEnvelope},
  };
  return Table;
}

std::string Diagnostic::str() const {
  return Path + ":" + std::to_string(Line) + ": error: " + Message +
         " [" + RuleId + "]";
}

std::vector<Diagnostic> lintFile(const SourceFile &File,
                                 const LintContext &Ctx) {
  std::vector<Diagnostic> Out;
  for (const Rule &R : rules()) {
    if (File.suppresses(R.Id))
      continue;
    R.Check(File, Ctx, Out);
  }
  std::stable_sort(Out.begin(), Out.end(),
                   [](const Diagnostic &A, const Diagnostic &B) {
                     return A.Line < B.Line;
                   });
  return Out;
}

std::vector<Diagnostic> lintString(const std::string &Path,
                                   const std::string &Content,
                                   const LintContext &Ctx) {
  return lintFile(lex(Path, Content), Ctx);
}

} // namespace lint
} // namespace pasta
