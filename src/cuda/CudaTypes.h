//===- cuda/CudaTypes.h - CUDA-like runtime types ---------------*- C++ -*-===//
//
// Part of the PASTA reproduction, under the MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Status codes and small value types of the simulated CUDA runtime. The
/// shapes mirror the real API closely enough that PASTA's event handler
/// code reads like its real counterpart.
///
//===----------------------------------------------------------------------===//

#ifndef PASTA_CUDA_CUDATYPES_H
#define PASTA_CUDA_CUDATYPES_H

#include "sim/Memory.h"

#include <cstdint>

namespace pasta {
namespace cuda {

/// Subset of cudaError_t the simulation can produce.
enum class CudaError {
  Success = 0,
  OutOfMemory,
  InvalidValue,
  InvalidDevice,
  NotManaged,
};

/// Returns a static human-readable name ("cudaSuccess", ...).
const char *cudaErrorName(CudaError Error);

/// Opaque stream handle; 0 is the default stream.
using CudaStream = std::uint32_t;
inline constexpr CudaStream DefaultStream = 0;

/// cudaMemcpyKind subset.
enum class CudaMemcpyKind {
  HostToDevice,
  DeviceToHost,
  DeviceToDevice,
};

/// cudaMemAdvise subset.
enum class CudaMemAdvice {
  SetPreferredLocationDevice,
  UnsetPreferredLocation,
};

} // namespace cuda
} // namespace pasta

#endif // PASTA_CUDA_CUDATYPES_H
