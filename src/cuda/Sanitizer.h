//===- cuda/Sanitizer.h - Compute-Sanitizer-style callbacks -----*- C++ -*-===//
//
// Part of the PASTA reproduction, under the MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Simulated NVIDIA Compute Sanitizer API: lightweight host callbacks for
/// runtime events (SANITIZER_CBID_*) organized in domains that subscribers
/// enable individually (sanitizerEnableDomain), plus
/// sanitizerPatchModule-style device-side instrumentation of memory
/// operations. As in the real API, only a subset of instructions (memory
/// and barrier operations) can be inspected — full SASS coverage requires
/// the NVBit backend.
///
//===----------------------------------------------------------------------===//

#ifndef PASTA_CUDA_SANITIZER_H
#define PASTA_CUDA_SANITIZER_H

#include "cuda/CudaTypes.h"
#include "sim/Trace.h"

#include <cstdint>
#include <functional>
#include <map>
#include <string>

namespace pasta {
namespace cuda {

/// Callback domains (sanitizerEnableDomain granularity).
enum class SanitizerDomain : unsigned {
  DriverApi = 0,
  RuntimeApi,
  Memory,
  Launch,
  Memcpy,
  Memset,
  Synchronize,
  Uvm,
  NumDomains,
};

/// Callback ids (SANITIZER_CBID_*).
enum class SanitizerCbid {
  MemoryAlloc,        // SANITIZER_CBID_RESOURCE_MEMORY_ALLOC
  MemoryFree,         // SANITIZER_CBID_RESOURCE_MEMORY_FREE
  ManagedMemoryAlloc, // managed variant
  LaunchBegin,        // SANITIZER_CBID_LAUNCH_BEGIN
  LaunchEnd,          // SANITIZER_CBID_LAUNCH_END
  MemcpyBegin,
  MemsetBegin,
  SynchronizeBegin,
  StreamCreated,
  StreamDestroyed,
  MemPrefetch,
  MemAdvise,
};

/// Data handed to host callbacks. Which fields are meaningful depends on
/// the cbid (as with the real, union-heavy API).
struct SanitizerCallbackData {
  SanitizerCbid Cbid = SanitizerCbid::MemoryAlloc;
  int DeviceIndex = 0;
  CudaStream Stream = DefaultStream;
  SimTime Timestamp = 0;
  /// Memory events.
  sim::DeviceAddr Address = 0;
  std::uint64_t Bytes = 0;
  bool Managed = false;
  /// Launch events.
  const sim::KernelDesc *Kernel = nullptr;
  std::uint64_t GridId = 0;
  /// Memcpy events.
  CudaMemcpyKind CopyKind = CudaMemcpyKind::HostToDevice;
};

using SanitizerCallback = std::function<void(const SanitizerCallbackData &)>;

/// Handle identifying one subscription.
using SanitizerSubscriber = std::uint32_t;

/// The per-runtime Sanitizer registry. The CudaRuntime dispatches into it;
/// clients (PASTA's event handler) subscribe and enable domains.
class SanitizerApi {
public:
  /// sanitizerSubscribe: registers \p Callback; all domains start
  /// disabled.
  SanitizerSubscriber subscribe(SanitizerCallback Callback);

  /// sanitizerUnsubscribe.
  void unsubscribe(SanitizerSubscriber Subscriber);

  /// sanitizerEnableDomain / sanitizerDisableDomain.
  void enableDomain(SanitizerSubscriber Subscriber, SanitizerDomain Domain);
  void disableDomain(SanitizerSubscriber Subscriber, SanitizerDomain Domain);
  /// sanitizerEnableAllDomains.
  void enableAllDomains(SanitizerSubscriber Subscriber);

  /// sanitizerPatchModule + sanitizerPatchInstructions analogue: installs
  /// device-side instrumentation of memory operations on device
  /// \p DeviceIndex, streaming records into \p Sink under analysis model
  /// \p Model. \p DeviceBufferRecords bounds the trace buffer for the
  /// host-side model. Replaces any previous patch on that device.
  void patchMemoryAccesses(int DeviceIndex, sim::TraceSink *Sink,
                           sim::AnalysisModel Model,
                           std::uint64_t DeviceBufferRecords = 1u << 20,
                           double SampleRate = 1.0,
                           std::uint64_t RecordGranularityBytes = 4096);

  /// Removes device-side instrumentation installed by this API.
  void unpatch(int DeviceIndex);

  /// Dispatches \p Data to every subscriber with the matching domain
  /// enabled (called by the CudaRuntime).
  void dispatch(SanitizerDomain Domain, const SanitizerCallbackData &Data);

  bool hasSubscribers() const { return !Subscribers.empty(); }

private:
  friend class CudaRuntime;
  explicit SanitizerApi(class CudaRuntime &Runtime) : Runtime(Runtime) {}

  struct Subscription {
    SanitizerCallback Callback;
    bool Domains[static_cast<unsigned>(SanitizerDomain::NumDomains)] = {};
  };

  class CudaRuntime &Runtime;
  std::map<SanitizerSubscriber, Subscription> Subscribers;
  SanitizerSubscriber NextId = 1;
};

} // namespace cuda
} // namespace pasta

#endif // PASTA_CUDA_SANITIZER_H
