//===- cuda/CudaBackend.cpp -----------------------------------------------===//
//
// Part of the PASTA reproduction, under the MIT license.
//
//===----------------------------------------------------------------------===//

#include "cuda/CudaBackend.h"

#include "dl/Backend.h"
#include "sim/System.h"

using namespace pasta;
using namespace pasta::cuda;

CapabilitySet CudaBackend::capabilities() const {
  CapabilitySet Caps{Capability::CoarseEvents, Capability::UvmCounters};
  switch (Flavor) {
  case TraceBackend::None:
    break;
  case TraceBackend::SanitizerGpu:
  case TraceBackend::SanitizerCpu:
    // Sanitizer patches see memory/barrier operations only.
    Caps |= Capability::AccessRecords;
    break;
  case TraceBackend::NvbitCpu:
    // Full SASS coverage: access records and the instruction mix.
    Caps |= CapabilitySet{Capability::AccessRecords, Capability::InstrMix};
    break;
  }
  return Caps;
}

std::unique_ptr<dl::DeviceApi>
CudaBackend::createRuntime(sim::System &System, int DeviceIndex) {
  if (!Runtime)
    Runtime = std::make_unique<CudaRuntime>(System);
  return std::make_unique<dl::CudaDeviceApi>(*Runtime, DeviceIndex);
}

void CudaBackend::attach(EventHandler &Handler, int DeviceIndex,
                         const CapabilitySet &Enabled,
                         const TraceOptions &Opts) {
  // Negotiation outcome: without a fine-grained capability enabled, the
  // handler subscribes to host callbacks only and no device-side
  // instrumentation is ever installed.
  TraceOptions Effective = Opts;
  bool WantsFine = Enabled.has(Capability::AccessRecords) ||
                   Enabled.has(Capability::InstrMix);
  Effective.Backend = WantsFine ? Flavor : TraceBackend::None;
  Handler.attachCuda(*Runtime, DeviceIndex, Effective);
}
