//===- cuda/Nvbit.h - NVBit-style binary instrumentation --------*- C++ -*-===//
//
// Part of the PASTA reproduction, under the MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Simulated NVBit: dynamic binary instrumentation with full SASS
/// coverage. Unlike the Sanitizer callbacks, NVBit sees *every*
/// instruction — at the price of dumping and parsing SASS per module and
/// paying a heavyweight trampoline per instrumented operation (the reason
/// NVBIT-CPU is the slowest backend in the paper's Fig. 9).
///
//===----------------------------------------------------------------------===//

#ifndef PASTA_CUDA_NVBIT_H
#define PASTA_CUDA_NVBIT_H

#include "cuda/CudaTypes.h"
#include "sim/Trace.h"

#include <cstdint>
#include <functional>
#include <vector>

namespace pasta {
namespace cuda {

/// Events nvbit_at_cuda_event reports.
enum class NvbitCudaEvent {
  KernelLaunchBegin,
  KernelLaunchEnd,
  MemAlloc,
  MemFree,
  Memcpy,
  ContextInit,
};

/// Data for nvbit_at_cuda_event callbacks.
struct NvbitEventData {
  NvbitCudaEvent Event = NvbitCudaEvent::ContextInit;
  int DeviceIndex = 0;
  SimTime Timestamp = 0;
  const sim::KernelDesc *Kernel = nullptr;
  std::uint64_t GridId = 0;
  sim::DeviceAddr Address = 0;
  std::uint64_t Bytes = 0;
};

using NvbitEventCallback = std::function<void(const NvbitEventData &)>;

/// The per-runtime NVBit registry.
class NvbitApi {
public:
  /// nvbit_at_cuda_event: registers a host callback for CUDA events.
  void atCudaEvent(NvbitEventCallback Callback);

  /// Instruments every instruction of every kernel on \p DeviceIndex
  /// (nvbit_enumerate_functions + instrument-all idiom). Memory-access
  /// records flow into \p Sink; the cost model additionally charges the
  /// SASS dump+parse and the full-coverage trampolines. Replaces any
  /// previous instrumentation on that device.
  void instrumentAllInstructions(int DeviceIndex, sim::TraceSink *Sink,
                                 sim::AnalysisModel Model,
                                 std::uint64_t DeviceBufferRecords = 1u << 20,
                                 double SampleRate = 1.0,
                                 std::uint64_t RecordGranularityBytes = 4096);

  /// Removes instrumentation installed by this API.
  void removeInstrumentation(int DeviceIndex);

  /// Dispatches to registered callbacks (called by the CudaRuntime).
  void dispatch(const NvbitEventData &Data);

  bool hasCallbacks() const { return !Callbacks.empty(); }

private:
  friend class CudaRuntime;
  explicit NvbitApi(class CudaRuntime &Runtime) : Runtime(Runtime) {}

  class CudaRuntime &Runtime;
  std::vector<NvbitEventCallback> Callbacks;
};

} // namespace cuda
} // namespace pasta

#endif // PASTA_CUDA_NVBIT_H
