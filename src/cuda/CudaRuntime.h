//===- cuda/CudaRuntime.h - Simulated CUDA runtime --------------*- C++ -*-===//
//
// Part of the PASTA reproduction, under the MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The simulated CUDA runtime over sim::Device: allocation (including
/// managed/UVM), transfers, streams, kernel launches, prefetch/advise.
/// Every call dispatches Sanitizer- and NVBit-style callbacks exactly
/// where the real runtime would, which is the hook surface PASTA's event
/// handler subscribes to.
///
//===----------------------------------------------------------------------===//

#ifndef PASTA_CUDA_CUDARUNTIME_H
#define PASTA_CUDA_CUDARUNTIME_H

#include "cuda/CudaTypes.h"
#include "cuda/Nvbit.h"
#include "cuda/Sanitizer.h"
#include "sim/System.h"

#include <cstdint>
#include <set>

namespace pasta {
namespace cuda {

/// One CUDA runtime instance bound to a sim::System (the analogue of the
/// CUDA context a process initializes).
class CudaRuntime {
public:
  explicit CudaRuntime(sim::System &System);

  //===--------------------------------------------------------------------===
  // Device management
  //===--------------------------------------------------------------------===
  CudaError cudaGetDeviceCount(int *Count) const;
  CudaError cudaSetDevice(int Device);
  int currentDevice() const { return Current; }
  CudaError cudaDeviceSynchronize();

  //===--------------------------------------------------------------------===
  // Memory
  //===--------------------------------------------------------------------===
  CudaError cudaMalloc(sim::DeviceAddr *Out, std::uint64_t Bytes);
  CudaError cudaMallocManaged(sim::DeviceAddr *Out, std::uint64_t Bytes);
  CudaError cudaFree(sim::DeviceAddr Base);
  CudaError cudaMemcpy(sim::DeviceAddr Address, std::uint64_t Bytes,
                       CudaMemcpyKind Kind,
                       CudaStream Stream = DefaultStream);
  CudaError cudaMemset(sim::DeviceAddr Address, std::uint64_t Bytes,
                       CudaStream Stream = DefaultStream);
  CudaError cudaMemPrefetchAsync(sim::DeviceAddr Address,
                                 std::uint64_t Bytes, int Device,
                                 CudaStream Stream = DefaultStream);
  CudaError cudaMemAdvise(sim::DeviceAddr Address, std::uint64_t Bytes,
                          CudaMemAdvice Advice, int Device);

  //===--------------------------------------------------------------------===
  // Streams
  //===--------------------------------------------------------------------===
  CudaError cudaStreamCreate(CudaStream *Out);
  CudaError cudaStreamDestroy(CudaStream Stream);
  CudaError cudaStreamSynchronize(CudaStream Stream);

  //===--------------------------------------------------------------------===
  // Execution
  //===--------------------------------------------------------------------===
  /// cuLaunchKernel / cudaLaunchKernel: runs \p Desc on the current device
  /// and fills \p Result when non-null.
  CudaError cudaLaunchKernel(const sim::KernelDesc &Desc,
                             CudaStream Stream = DefaultStream,
                             sim::LaunchResult *Result = nullptr);

  //===--------------------------------------------------------------------===
  // Profiling-library access
  //===--------------------------------------------------------------------===
  SanitizerApi &sanitizer() { return Sanitizer; }
  NvbitApi &nvbit() { return Nvbit; }

  sim::System &system() { return System; }
  sim::Device &device() { return System.device(Current); }
  sim::Device &device(int Index) { return System.device(Index); }

private:
  friend class SanitizerApi;
  friend class NvbitApi;

  sim::System &System;
  int Current = 0;
  SanitizerApi Sanitizer;
  NvbitApi Nvbit;
  std::set<CudaStream> Streams;
  CudaStream NextStream = 1;
};

} // namespace cuda
} // namespace pasta

#endif // PASTA_CUDA_CUDARUNTIME_H
