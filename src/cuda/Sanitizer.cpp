//===- cuda/Sanitizer.cpp -------------------------------------------------===//
//
// Part of the PASTA reproduction, under the MIT license.
//
//===----------------------------------------------------------------------===//

#include "cuda/Sanitizer.h"

#include "cuda/CudaRuntime.h"

#include <cassert>

using namespace pasta;
using namespace pasta::cuda;

SanitizerSubscriber SanitizerApi::subscribe(SanitizerCallback Callback) {
  assert(Callback && "null sanitizer callback");
  SanitizerSubscriber Id = NextId++;
  Subscription Sub;
  Sub.Callback = std::move(Callback);
  Subscribers.emplace(Id, std::move(Sub));
  return Id;
}

void SanitizerApi::unsubscribe(SanitizerSubscriber Subscriber) {
  Subscribers.erase(Subscriber);
}

void SanitizerApi::enableDomain(SanitizerSubscriber Subscriber,
                                SanitizerDomain Domain) {
  auto It = Subscribers.find(Subscriber);
  if (It == Subscribers.end())
    return;
  It->second.Domains[static_cast<unsigned>(Domain)] = true;
}

void SanitizerApi::disableDomain(SanitizerSubscriber Subscriber,
                                 SanitizerDomain Domain) {
  auto It = Subscribers.find(Subscriber);
  if (It == Subscribers.end())
    return;
  It->second.Domains[static_cast<unsigned>(Domain)] = false;
}

void SanitizerApi::enableAllDomains(SanitizerSubscriber Subscriber) {
  auto It = Subscribers.find(Subscriber);
  if (It == Subscribers.end())
    return;
  for (unsigned I = 0; I < static_cast<unsigned>(SanitizerDomain::NumDomains);
       ++I)
    It->second.Domains[I] = true;
}

void SanitizerApi::patchMemoryAccesses(int DeviceIndex, sim::TraceSink *Sink,
                                       sim::AnalysisModel Model,
                                       std::uint64_t DeviceBufferRecords,
                                       double SampleRate,
                                       std::uint64_t RecordGranularityBytes) {
  sim::Device &Dev = Runtime.device(DeviceIndex);
  sim::DeviceTraceConfig Config;
  Config.TraceMemory = true;
  // Sanitizer patches can only see memory/barrier operations; full SASS
  // coverage (TraceAllInstructions) is NVBit territory.
  Config.TraceAllInstructions = false;
  Config.PaySassParseCost = false;
  Config.UseNvbitTrampoline = false;
  Config.Model = Model;
  Config.DeviceBufferRecords = DeviceBufferRecords;
  Config.SampleRate = SampleRate;
  Config.RecordGranularityBytes = RecordGranularityBytes;
  Dev.setTraceConfig(Config);
  Dev.setTraceSink(Sink);
}

void SanitizerApi::unpatch(int DeviceIndex) {
  sim::Device &Dev = Runtime.device(DeviceIndex);
  Dev.setTraceSink(nullptr);
  Dev.setTraceConfig(sim::DeviceTraceConfig());
}

void SanitizerApi::dispatch(SanitizerDomain Domain,
                            const SanitizerCallbackData &Data) {
  for (auto &[Id, Sub] : Subscribers)
    if (Sub.Domains[static_cast<unsigned>(Domain)])
      Sub.Callback(Data);
}
