//===- cuda/Nvbit.cpp -----------------------------------------------------===//
//
// Part of the PASTA reproduction, under the MIT license.
//
//===----------------------------------------------------------------------===//

#include "cuda/Nvbit.h"

#include "cuda/CudaRuntime.h"

#include <cassert>

using namespace pasta;
using namespace pasta::cuda;

void NvbitApi::atCudaEvent(NvbitEventCallback Callback) {
  assert(Callback && "null nvbit callback");
  Callbacks.push_back(std::move(Callback));
}

void NvbitApi::instrumentAllInstructions(int DeviceIndex,
                                         sim::TraceSink *Sink,
                                         sim::AnalysisModel Model,
                                         std::uint64_t DeviceBufferRecords,
                                         double SampleRate,
                                         std::uint64_t RecordGranularityBytes) {
  sim::Device &Dev = Runtime.device(DeviceIndex);
  sim::DeviceTraceConfig Config;
  Config.TraceMemory = true;
  Config.TraceAllInstructions = true;
  Config.PaySassParseCost = true;
  Config.UseNvbitTrampoline = true;
  Config.Model = Model;
  Config.DeviceBufferRecords = DeviceBufferRecords;
  Config.SampleRate = SampleRate;
  Config.RecordGranularityBytes = RecordGranularityBytes;
  Dev.setTraceConfig(Config);
  Dev.setTraceSink(Sink);
}

void NvbitApi::removeInstrumentation(int DeviceIndex) {
  sim::Device &Dev = Runtime.device(DeviceIndex);
  Dev.setTraceSink(nullptr);
  Dev.setTraceConfig(sim::DeviceTraceConfig());
}

void NvbitApi::dispatch(const NvbitEventData &Data) {
  for (const NvbitEventCallback &Callback : Callbacks)
    Callback(Data);
}
