//===- cuda/CudaRuntime.cpp -----------------------------------------------===//
//
// Part of the PASTA reproduction, under the MIT license.
//
//===----------------------------------------------------------------------===//

#include "cuda/CudaRuntime.h"

#include "support/ErrorHandling.h"

#include <cassert>

using namespace pasta;
using namespace pasta::cuda;

const char *pasta::cuda::cudaErrorName(CudaError Error) {
  switch (Error) {
  case CudaError::Success:
    return "cudaSuccess";
  case CudaError::OutOfMemory:
    return "cudaErrorMemoryAllocation";
  case CudaError::InvalidValue:
    return "cudaErrorInvalidValue";
  case CudaError::InvalidDevice:
    return "cudaErrorInvalidDevice";
  case CudaError::NotManaged:
    return "cudaErrorNotManaged";
  }
  PASTA_UNREACHABLE("unknown CudaError");
}

CudaRuntime::CudaRuntime(sim::System &System)
    : System(System), Sanitizer(*this), Nvbit(*this) {
  Streams.insert(DefaultStream);
}

CudaError CudaRuntime::cudaGetDeviceCount(int *Count) const {
  if (!Count)
    return CudaError::InvalidValue;
  *Count = System.numDevices();
  return CudaError::Success;
}

CudaError CudaRuntime::cudaSetDevice(int Device) {
  if (Device < 0 || Device >= System.numDevices())
    return CudaError::InvalidDevice;
  Current = Device;
  return CudaError::Success;
}

CudaError CudaRuntime::cudaDeviceSynchronize() {
  SanitizerCallbackData Data;
  Data.Cbid = SanitizerCbid::SynchronizeBegin;
  Data.DeviceIndex = Current;
  Data.Timestamp = System.clock().now();
  Sanitizer.dispatch(SanitizerDomain::Synchronize, Data);
  device().synchronize();
  return CudaError::Success;
}

CudaError CudaRuntime::cudaMalloc(sim::DeviceAddr *Out, std::uint64_t Bytes) {
  if (!Out || Bytes == 0)
    return CudaError::InvalidValue;
  sim::DeviceAddr Base = device().allocate(Bytes);
  if (Base == 0)
    return CudaError::OutOfMemory;
  *Out = Base;

  SanitizerCallbackData Data;
  Data.Cbid = SanitizerCbid::MemoryAlloc;
  Data.DeviceIndex = Current;
  Data.Timestamp = System.clock().now();
  Data.Address = Base;
  Data.Bytes = Bytes;
  Sanitizer.dispatch(SanitizerDomain::Memory, Data);

  NvbitEventData NvData;
  NvData.Event = NvbitCudaEvent::MemAlloc;
  NvData.DeviceIndex = Current;
  NvData.Timestamp = Data.Timestamp;
  NvData.Address = Base;
  NvData.Bytes = Bytes;
  Nvbit.dispatch(NvData);
  return CudaError::Success;
}

CudaError CudaRuntime::cudaMallocManaged(sim::DeviceAddr *Out,
                                         std::uint64_t Bytes) {
  if (!Out || Bytes == 0)
    return CudaError::InvalidValue;
  sim::DeviceAddr Base = device().allocateManaged(Bytes);
  if (Base == 0)
    return CudaError::OutOfMemory;
  *Out = Base;

  SanitizerCallbackData Data;
  Data.Cbid = SanitizerCbid::ManagedMemoryAlloc;
  Data.DeviceIndex = Current;
  Data.Timestamp = System.clock().now();
  Data.Address = Base;
  Data.Bytes = Bytes;
  Data.Managed = true;
  Sanitizer.dispatch(SanitizerDomain::Memory, Data);
  return CudaError::Success;
}

CudaError CudaRuntime::cudaFree(sim::DeviceAddr Base) {
  // The real runtime frees on whichever device owns the pointer; our
  // address spaces are disjoint, so search all devices.
  for (int I = 0; I < System.numDevices(); ++I) {
    auto Alloc = System.device(I).memory().find(Base);
    if (!Alloc)
      continue;
    bool Managed = Alloc->Managed;
    auto Freed = System.device(I).free(Base);
    assert(Freed && "allocation vanished between find and free");

    SanitizerCallbackData Data;
    Data.Cbid = SanitizerCbid::MemoryFree;
    Data.DeviceIndex = I;
    Data.Timestamp = System.clock().now();
    Data.Address = Base;
    Data.Bytes = *Freed;
    Data.Managed = Managed;
    Sanitizer.dispatch(SanitizerDomain::Memory, Data);

    NvbitEventData NvData;
    NvData.Event = NvbitCudaEvent::MemFree;
    NvData.DeviceIndex = I;
    NvData.Timestamp = Data.Timestamp;
    NvData.Address = Base;
    NvData.Bytes = *Freed;
    Nvbit.dispatch(NvData);
    return CudaError::Success;
  }
  return CudaError::InvalidValue;
}

CudaError CudaRuntime::cudaMemcpy(sim::DeviceAddr Address,
                                  std::uint64_t Bytes, CudaMemcpyKind Kind,
                                  CudaStream Stream) {
  if (Bytes == 0)
    return CudaError::InvalidValue;
  SanitizerCallbackData Data;
  Data.Cbid = SanitizerCbid::MemcpyBegin;
  Data.DeviceIndex = Current;
  Data.Stream = Stream;
  Data.Timestamp = System.clock().now();
  Data.Address = Address;
  Data.Bytes = Bytes;
  Data.CopyKind = Kind;
  Sanitizer.dispatch(SanitizerDomain::Memcpy, Data);

  sim::CopyKind SimKind = sim::CopyKind::HostToDevice;
  if (Kind == CudaMemcpyKind::DeviceToHost)
    SimKind = sim::CopyKind::DeviceToHost;
  else if (Kind == CudaMemcpyKind::DeviceToDevice)
    SimKind = sim::CopyKind::DeviceToDevice;
  device().copy(SimKind, Bytes);
  return CudaError::Success;
}

CudaError CudaRuntime::cudaMemset(sim::DeviceAddr Address,
                                  std::uint64_t Bytes, CudaStream Stream) {
  if (Bytes == 0)
    return CudaError::InvalidValue;
  SanitizerCallbackData Data;
  Data.Cbid = SanitizerCbid::MemsetBegin;
  Data.DeviceIndex = Current;
  Data.Stream = Stream;
  Data.Timestamp = System.clock().now();
  Data.Address = Address;
  Data.Bytes = Bytes;
  Sanitizer.dispatch(SanitizerDomain::Memset, Data);
  device().memsetDevice(Address, Bytes);
  return CudaError::Success;
}

CudaError CudaRuntime::cudaMemPrefetchAsync(sim::DeviceAddr Address,
                                            std::uint64_t Bytes, int Device,
                                            CudaStream Stream) {
  if (Device < 0 || Device >= System.numDevices())
    return CudaError::InvalidDevice;
  sim::Device &Dev = System.device(Device);
  if (!Dev.uvm().isManaged(Address))
    return CudaError::NotManaged;

  SanitizerCallbackData Data;
  Data.Cbid = SanitizerCbid::MemPrefetch;
  Data.DeviceIndex = Device;
  Data.Stream = Stream;
  Data.Timestamp = System.clock().now();
  Data.Address = Address;
  Data.Bytes = Bytes;
  Data.Managed = true;
  Sanitizer.dispatch(SanitizerDomain::Uvm, Data);

  SimTime Cost = Dev.uvm().prefetch(Address, Bytes);
  System.clock().advance(Cost);
  return CudaError::Success;
}

CudaError CudaRuntime::cudaMemAdvise(sim::DeviceAddr Address,
                                     std::uint64_t Bytes,
                                     CudaMemAdvice Advice, int Device) {
  if (Device < 0 || Device >= System.numDevices())
    return CudaError::InvalidDevice;
  sim::Device &Dev = System.device(Device);
  if (!Dev.uvm().isManaged(Address))
    return CudaError::NotManaged;

  SanitizerCallbackData Data;
  Data.Cbid = SanitizerCbid::MemAdvise;
  Data.DeviceIndex = Device;
  Data.Timestamp = System.clock().now();
  Data.Address = Address;
  Data.Bytes = Bytes;
  Data.Managed = true;
  Sanitizer.dispatch(SanitizerDomain::Uvm, Data);

  if (Advice == CudaMemAdvice::SetPreferredLocationDevice)
    Dev.uvm().advisePreferredDevice(Address, Bytes);
  return CudaError::Success;
}

CudaError CudaRuntime::cudaStreamCreate(CudaStream *Out) {
  if (!Out)
    return CudaError::InvalidValue;
  CudaStream Stream = NextStream++;
  Streams.insert(Stream);
  *Out = Stream;

  SanitizerCallbackData Data;
  Data.Cbid = SanitizerCbid::StreamCreated;
  Data.DeviceIndex = Current;
  Data.Stream = Stream;
  Data.Timestamp = System.clock().now();
  Sanitizer.dispatch(SanitizerDomain::RuntimeApi, Data);
  return CudaError::Success;
}

CudaError CudaRuntime::cudaStreamDestroy(CudaStream Stream) {
  if (Stream == DefaultStream || Streams.erase(Stream) == 0)
    return CudaError::InvalidValue;

  SanitizerCallbackData Data;
  Data.Cbid = SanitizerCbid::StreamDestroyed;
  Data.DeviceIndex = Current;
  Data.Stream = Stream;
  Data.Timestamp = System.clock().now();
  Sanitizer.dispatch(SanitizerDomain::RuntimeApi, Data);
  return CudaError::Success;
}

CudaError CudaRuntime::cudaStreamSynchronize(CudaStream Stream) {
  if (!Streams.count(Stream))
    return CudaError::InvalidValue;
  SanitizerCallbackData Data;
  Data.Cbid = SanitizerCbid::SynchronizeBegin;
  Data.DeviceIndex = Current;
  Data.Stream = Stream;
  Data.Timestamp = System.clock().now();
  Sanitizer.dispatch(SanitizerDomain::Synchronize, Data);
  device().synchronize();
  return CudaError::Success;
}

CudaError CudaRuntime::cudaLaunchKernel(const sim::KernelDesc &Desc,
                                        CudaStream Stream,
                                        sim::LaunchResult *Result) {
  if (!Streams.count(Stream))
    return CudaError::InvalidValue;
  if (Desc.Grid.count() == 0 || Desc.Block.count() == 0)
    return CudaError::InvalidValue;

  std::uint64_t GridId = device().nextGridId();

  SanitizerCallbackData Begin;
  Begin.Cbid = SanitizerCbid::LaunchBegin;
  Begin.DeviceIndex = Current;
  Begin.Stream = Stream;
  Begin.Timestamp = System.clock().now();
  Begin.Kernel = &Desc;
  Begin.GridId = GridId;
  Sanitizer.dispatch(SanitizerDomain::Launch, Begin);

  NvbitEventData NvBegin;
  NvBegin.Event = NvbitCudaEvent::KernelLaunchBegin;
  NvBegin.DeviceIndex = Current;
  NvBegin.Timestamp = Begin.Timestamp;
  NvBegin.Kernel = &Desc;
  NvBegin.GridId = GridId;
  Nvbit.dispatch(NvBegin);

  sim::LaunchResult Local = device().launchKernel(Desc, Stream);
  assert(Local.GridId == GridId && "grid id drifted during launch");
  if (Result)
    *Result = Local;

  SanitizerCallbackData End = Begin;
  End.Cbid = SanitizerCbid::LaunchEnd;
  End.Timestamp = System.clock().now();
  Sanitizer.dispatch(SanitizerDomain::Launch, End);

  NvbitEventData NvEnd = NvBegin;
  NvEnd.Event = NvbitCudaEvent::KernelLaunchEnd;
  NvEnd.Timestamp = End.Timestamp;
  Nvbit.dispatch(NvEnd);
  return CudaError::Success;
}
