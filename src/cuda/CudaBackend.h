//===- cuda/CudaBackend.h - NVIDIA platform backend -------------*- C++ -*-===//
//
// Part of the PASTA reproduction, under the MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// PlatformBackend adapter over the simulated CUDA runtime: Sanitizer
/// host callbacks for coarse events, plus — per the flavor — Sanitizer
/// memory-access patching (CS-GPU / CS-CPU) or NVBit full-SASS
/// instrumentation (NVBIT-CPU) for the fine-grained capabilities.
///
//===----------------------------------------------------------------------===//

#ifndef PASTA_CUDA_CUDABACKEND_H
#define PASTA_CUDA_CUDABACKEND_H

#include "cuda/CudaRuntime.h"
#include "pasta/Backend.h"

namespace pasta {
namespace cuda {

/// NVIDIA adapter; \p Flavor picks the fine-grained instrumentation layer
/// (TraceBackend::None yields a coarse-events-only backend).
class CudaBackend : public PlatformBackend {
public:
  CudaBackend(std::string Name, TraceBackend Flavor)
      : RegistryName(std::move(Name)), Flavor(Flavor) {}

  std::string name() const override { return RegistryName; }
  sim::VendorKind vendor() const override { return sim::VendorKind::NVIDIA; }
  CapabilitySet capabilities() const override;

  std::unique_ptr<dl::DeviceApi> createRuntime(sim::System &System,
                                               int DeviceIndex) override;
  void attach(EventHandler &Handler, int DeviceIndex,
              const CapabilitySet &Enabled,
              const TraceOptions &Opts) override;

  /// The wrapped runtime; valid after the first createRuntime().
  CudaRuntime *runtime() { return Runtime.get(); }

private:
  std::string RegistryName;
  TraceBackend Flavor;
  std::unique_ptr<CudaRuntime> Runtime;
};

} // namespace cuda
} // namespace pasta

#endif // PASTA_CUDA_CUDABACKEND_H
