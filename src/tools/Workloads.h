//===- tools/Workloads.h - Shared workload harness --------------*- C++ -*-===//
//
// Part of the PASTA reproduction, under the MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// One-call harness used by the benches, examples and integration tests:
/// builds a simulated system for a named GPU, stands up the matching
/// vendor runtime and DL session, attaches a PASTA profiler with the
/// requested backend, runs a model-zoo Program and returns the results.
/// This is the moral equivalent of `accelprof -v -t <tool> <executable>`.
///
//===----------------------------------------------------------------------===//

#ifndef PASTA_TOOLS_WORKLOADS_H
#define PASTA_TOOLS_WORKLOADS_H

#include "dl/Executor.h"
#include "dl/Models.h"
#include "pasta/Profiler.h"
#include "tools/UvmPrefetcher.h"

#include <cstdint>
#include <functional>
#include <string>

namespace pasta {
namespace tools {

/// Everything a workload run needs to know.
struct WorkloadConfig {
  std::string Model = "resnet18";
  bool Training = false;
  /// GPU preset name: "A100", "RTX3060" or "MI300X" (vendor implied).
  std::string Gpu = "A100";
  TraceBackend Backend = TraceBackend::None;
  /// Pool segments from managed (UVM) memory.
  bool Managed = false;
  /// Artificial device-memory cap in bytes (0 = none) — the paper's
  /// oversubscription mechanism.
  std::uint64_t MemoryLimitBytes = 0;
  /// 0 = model default for the mode.
  int Iterations = 0;
  double SampleRate = 1.0;
  std::uint64_t RecordGranularityBytes = 4096;
  std::uint64_t DeviceBufferRecords = 1u << 20;
  PrefetchLevel Prefetch = PrefetchLevel::None;
};

/// Outcome of one run.
struct WorkloadResult {
  dl::RunStats Stats;
  /// UVM counters snapshot at run end.
  sim::UvmCounters Uvm;
  std::uint64_t ProgramKernels = 0;
};

/// Runs \p Config with \p Profiler attached (add tools to the profiler
/// first). \p Customize, when set, is called with the executor before the
/// run (examples use it to install extra hooks).
WorkloadResult
runWorkload(const WorkloadConfig &Config, Profiler &Profiler,
            const std::function<void(dl::Executor &)> &Customize = {});

/// Convenience: native (uninstrumented) execution time of \p Config,
/// for overhead normalization.
SimTime nativeRunTime(WorkloadConfig Config);

} // namespace tools
} // namespace pasta

#endif // PASTA_TOOLS_WORKLOADS_H
