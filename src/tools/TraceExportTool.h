//===- tools/TraceExportTool.h - Chrome-trace timeline export ---*- C++ -*-===//
//
// Part of the PASTA reproduction, under the MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Exports PASTA's event stream as a Chrome trace (chrome://tracing /
/// Perfetto JSON): operators as nested duration events, kernels as
/// complete events on per-device GPU tracks, memory copies and UVM batch
/// operations as instant events. This is the timeline view vendor tools
/// like Nsight Systems provide — reconstructed from PASTA's normalized
/// events alone, on any vendor.
///
//===----------------------------------------------------------------------===//

#ifndef PASTA_TOOLS_TRACEEXPORTTOOL_H
#define PASTA_TOOLS_TRACEEXPORTTOOL_H

#include "pasta/Tool.h"

#include <cstdint>
#include <string>
#include <vector>

namespace pasta {
namespace tools {

/// Collects timeline events and renders Chrome trace JSON.
class TraceExportTool : public Tool {
public:
  std::string name() const override { return "chrome_trace"; }

  /// Timeline-relevant events on one serial lane (a single ordered
  /// entries vector is the whole data structure).
  Subscription subscription() override;

  void onOperatorStart(const Event &E) override;
  void onOperatorEnd(const Event &E) override;
  void onKernelLaunch(const Event &E) override;
  void onKernelComplete(const Event &E) override;
  void onMemoryCopy(const Event &E) override;
  void onBatchMemoryOp(const Event &E) override;

  /// Renders the Chrome trace JSON document.
  std::string toJson() const;
  /// writeReport emits the JSON (pipe to a .json file for Perfetto).
  void writeReport(std::FILE *Out) override;

  std::size_t numEvents() const { return Entries.size(); }

private:
  struct Entry {
    char Phase = 'X';      ///< 'B', 'E', 'X' or 'i'
    /// Shared payload handles: timeline entries adopt the event's
    /// interned operator/layer strings instead of copying them, so a
    /// million-entry trace stores each distinct name once.
    PayloadString Name;
    PayloadString Category;
    int Device = 0;
    int Track = 0;         ///< tid: 0 = CPU/ops, 1 = GPU kernels
    SimTime TimestampNs = 0;
    SimTime DurationNs = 0; ///< for 'X' entries
  };

  static void appendJsonString(std::string &Out, const std::string &Text);

  std::vector<Entry> Entries;
  /// Launch timestamp of the in-flight kernel per device (simulator
  /// kernels are synchronous, so one slot per device suffices). The
  /// name is a payload handle aliasing the interned kernel descriptor,
  /// so repeated launches allocate nothing.
  std::map<int, std::pair<PayloadString, SimTime>> PendingKernels;
};

} // namespace tools
} // namespace pasta

#endif // PASTA_TOOLS_TRACEEXPORTTOOL_H
