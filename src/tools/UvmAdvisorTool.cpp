//===- tools/UvmAdvisorTool.cpp -------------------------------------------===//
//
// Part of the PASTA reproduction, under the MIT license.
//
//===----------------------------------------------------------------------===//

#include "tools/UvmAdvisorTool.h"

using namespace pasta;
using namespace pasta::tools;

std::vector<UvmAdvice>
UvmAdvisor::planFromHotness(const HotnessTool &Hotness,
                            double LongLivedFraction,
                            double BurstyFraction) {
  std::vector<UvmAdvice> Plan;
  double Windows = static_cast<double>(Hotness.numWindows());
  for (const HotnessTool::BlockProfile &Profile : Hotness.profiles()) {
    double ActiveShare =
        Windows == 0 ? 0.0 : Profile.ActiveWindows / Windows;
    UvmAdvice Advice;
    Advice.Block = Profile.Block;
    Advice.Bytes = Hotness.blockBytes();
    Advice.TotalAccesses = Profile.TotalAccesses;
    if (ActiveShare >= LongLivedFraction) {
      Advice.Advice = UvmAdvice::Kind::PrefetchAndPin;
      Plan.push_back(Advice);
    } else if (ActiveShare <= BurstyFraction) {
      Advice.Advice = UvmAdvice::Kind::ProactiveEvict;
      Plan.push_back(Advice);
    }
  }
  return Plan;
}

std::uint64_t UvmAdvisor::applyPins(dl::DeviceApi &Api,
                                    const std::vector<UvmAdvice> &Plan) {
  std::uint64_t Pinned = 0;
  sim::UvmSpace &Uvm = Api.device().uvm();
  for (const UvmAdvice &Advice : Plan) {
    if (Advice.Advice != UvmAdvice::Kind::PrefetchAndPin)
      continue;
    if (!Uvm.isManaged(Advice.Block))
      continue;
    Api.prefetch(Advice.Block, Advice.Bytes);
    Api.advisePreferredDevice(Advice.Block, Advice.Bytes);
    Pinned += Advice.Bytes;
  }
  return Pinned;
}
