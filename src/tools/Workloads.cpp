//===- tools/Workloads.cpp ------------------------------------------------===//
//
// Part of the PASTA reproduction, under the MIT license.
//
//===----------------------------------------------------------------------===//

#include "tools/Workloads.h"

#include "cuda/CudaRuntime.h"
#include "hip/HipRuntime.h"
#include "sim/System.h"
#include "support/ErrorHandling.h"

#include <memory>

using namespace pasta;
using namespace pasta::tools;

WorkloadResult
pasta::tools::runWorkload(const WorkloadConfig &Config, Profiler &Profiler,
                          const std::function<void(dl::Executor &)> &Customize) {
  sim::GpuSpec Spec = sim::gpuSpecByName(Config.Gpu);
  sim::System System(Spec);
  if (Config.MemoryLimitBytes > 0)
    System.device(0).setMemoryLimit(Config.MemoryLimitBytes);

  // The workload config is the single source of truth for tracing.
  TraceOptions Trace;
  Trace.Backend = Config.Backend;
  Trace.SampleRate = Config.SampleRate;
  Trace.RecordGranularityBytes = Config.RecordGranularityBytes;
  Trace.DeviceBufferRecords = Config.DeviceBufferRecords;
  Profiler.setTraceOptions(Trace);

  // Stand up the vendor runtime matching the GPU and attach PASTA the way
  // the LD_PRELOAD injection would.
  std::unique_ptr<cuda::CudaRuntime> Cuda;
  std::unique_ptr<hip::HipRuntime> Hip;
  std::unique_ptr<dl::DeviceApi> Api;
  if (Spec.Vendor == sim::VendorKind::NVIDIA) {
    Cuda = std::make_unique<cuda::CudaRuntime>(System);
    Api = std::make_unique<dl::CudaDeviceApi>(*Cuda, 0);
    Profiler.attachCuda(*Cuda, 0);
  } else {
    Hip = std::make_unique<hip::HipRuntime>(System);
    Api = std::make_unique<dl::HipDeviceApi>(*Hip, 0);
    Profiler.attachHip(*Hip, 0);
  }

  dl::CallbackRegistry Callbacks;
  Profiler.attachDl(Callbacks);

  dl::ScheduleBuilder::Options BuildOpts;
  BuildOpts.Flavor = Api->kernelFlavor();
  BuildOpts.Training = Config.Training;
  BuildOpts.Iterations = Config.Iterations;
  dl::Program Program = dl::buildModelProgram(Config.Model, BuildOpts);

  dl::ExecutorOptions ExecOpts;
  ExecOpts.Managed = Config.Managed;
  dl::Executor Executor(*Api, Callbacks, ExecOpts);

  UvmPrefetcher Prefetcher(Config.Prefetch);
  Prefetcher.install(Executor);
  if (Customize)
    Customize(Executor);

  WorkloadResult Result;
  Result.ProgramKernels = Program.numKernels();
  Result.Stats = Executor.run(Program);
  Result.Uvm = System.device(0).uvm().counters();

  // Detach before the runtimes die.
  Profiler.finish();
  return Result;
}

SimTime pasta::tools::nativeRunTime(WorkloadConfig Config) {
  Config.Backend = TraceBackend::None;
  Config.Prefetch = PrefetchLevel::None;
  ProfilerOptions Opts;
  Opts.Trace.Backend = TraceBackend::None;
  Profiler Prof(Opts);
  WorkloadResult Result = runWorkload(Config, Prof);
  return Result.Stats.wallTime();
}
