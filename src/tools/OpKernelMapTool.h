//===- tools/OpKernelMapTool.h - operator -> kernel mapping -----*- C++ -*-===//
//
// Part of the PASTA reproduction, under the MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Operator-to-kernel mapping (paper §III-E): DL frameworks run one or
/// more kernels per operator and hide the mapping from users. By
/// consuming operator start/end events and kernel launches *together* —
/// the concurrent low-level + high-level capture the paper highlights —
/// this tool reconstructs the mapping: which kernels each operator
/// launched, how often, and how much simulated execution time each
/// operator's kernels consumed, attributed per layer and phase.
///
//===----------------------------------------------------------------------===//

#ifndef PASTA_TOOLS_OPKERNELMAPTOOL_H
#define PASTA_TOOLS_OPKERNELMAPTOOL_H

#include "pasta/Tool.h"

#include <cstdint>
#include <map>
#include <string>
#include <vector>

namespace pasta {
namespace tools {

/// Reconstructs the hidden operator -> kernel fan-out.
class OpKernelMapTool : public Tool {
public:
  std::string name() const override { return "op_kernel_map"; }

  /// Operator + kernel lifecycle events, on one serial lane (the
  /// operator nesting stack is inherently order-sensitive).
  Subscription subscription() override;

  struct OpProfile {
    std::string OpName;
    std::uint64_t Invocations = 0;
    std::uint64_t KernelLaunches = 0;
    /// Distinct kernel names this operator dispatched to.
    std::map<std::string, std::uint64_t> Kernels;
    /// Simulated execution time attributed to this operator's kernels.
    SimTime ExecTime = 0;

    double kernelsPerInvocation() const {
      return Invocations == 0
                 ? 0.0
                 : static_cast<double>(KernelLaunches) /
                       static_cast<double>(Invocations);
    }
  };

  void onOperatorStart(const Event &E) override;
  void onOperatorEnd(const Event &E) override;
  void onKernelLaunch(const Event &E) override;
  void onKernelComplete(const Event &E) override;
  void writeReport(std::FILE *Out) override;

  /// Profiles keyed by operator name (e.g. "aten::conv2d").
  const std::map<std::string, OpProfile> &profiles() const {
    return Profiles;
  }
  /// Kernels launched with no operator context (framework-external).
  std::uint64_t unattributedKernels() const { return Unattributed; }

private:
  struct ActiveOp {
    /// Shared handle adopted from the event — pushing an operator onto
    /// the nesting stack never copies the name bytes.
    PayloadString OpName;
    SimTime LastLaunchTime = 0;
  };

  std::map<std::string, OpProfile> Profiles;
  /// Operator nesting stack (outermost first).
  std::vector<ActiveOp> Stack;
  std::uint64_t Unattributed = 0;
};

} // namespace tools
} // namespace pasta

#endif // PASTA_TOOLS_OPKERNELMAPTOOL_H
