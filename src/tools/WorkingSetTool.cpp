//===- tools/WorkingSetTool.cpp -------------------------------------------===//
//
// Part of the PASTA reproduction, under the MIT license.
//
//===----------------------------------------------------------------------===//

#include "tools/WorkingSetTool.h"

#include "pasta/EventProcessor.h"
#include "pasta/Knobs.h"
#include "support/ReportSink.h"
#include "support/TablePrinter.h"
#include "support/Units.h"

#include <algorithm>

using namespace pasta;
using namespace pasta::tools;

WorkingSetTool::WorkingSetTool(WsAnalysisMode Mode)
    : Mode(Mode), InSituReducer(*this) {}

WorkingSetTool::~WorkingSetTool() = default;

Subscription WorkingSetTool::subscription() {
  Subscription Sub;
  Sub.Kinds = {EventKind::MemoryAlloc, EventKind::MemoryFree,
               EventKind::TensorAlloc, EventKind::TensorReclaim,
               EventKind::KernelLaunch};
  Sub.AccessRecords = true;
  Sub.KernelTrace = true;
  // Deliberately no CapturesStacks: the MAX_MEM_REFERENCED_KERNEL
  // capture happens in onKernelTraceEnd, which record delivery runs on
  // the producing thread — callStacks() resolves to the shared builder
  // (updated at admission) there, never a lane-local one. Declaring the
  // bit would only re-add context-only fan-out to this tool's lane.
  Sub.Model = ExecutionModel::Serial;
  return Sub;
}

void WorkingSetTool::onAttach(EventProcessor &Processor) {
  this->Processor = &Processor;
  CaptureMaxRef = Knobs::fromEnv().MaxMemReferencedKernel;
}

void WorkingSetTool::onMemoryAlloc(const Event &E) {
  AllocIntervals[E.Address] = {E.Address + E.Bytes};
  // Tensor intervals override raw allocations in lookup; still record
  // size for the fallback path.
  ObjectBytes[E.Address] = E.Bytes;
  LiveAllocBytes += E.Bytes;
  PeakAllocBytes = std::max(PeakAllocBytes, LiveAllocBytes);
}

void WorkingSetTool::onMemoryFree(const Event &E) {
  auto It = AllocIntervals.find(E.Address);
  if (It == AllocIntervals.end())
    return;
  AllocIntervals.erase(It);
  ObjectBytes.erase(E.Address);
  LiveAllocBytes -= std::min(LiveAllocBytes, E.Bytes);
}

void WorkingSetTool::onTensorAlloc(const Event &E) {
  if (E.Address == 0 || E.Bytes == 0)
    return;
  TensorIntervals[E.Address] = {E.Address + E.Bytes};
  ObjectBytes[E.Address] = E.Bytes;
  PeakReserved = std::max(PeakReserved, E.PoolReserved);
}

void WorkingSetTool::onTensorReclaim(const Event &E) {
  auto It = TensorIntervals.find(E.Address);
  if (It == TensorIntervals.end())
    return;
  TensorIntervals.erase(It);
  ObjectBytes.erase(E.Address);
}

void WorkingSetTool::onKernelLaunch(const Event &E) {
  CurrentCounts.clear();
  CurrentKernelName = E.Kernel ? E.Kernel->Name : "<unknown>";
  CurrentGridId = E.GridId;
}

std::pair<sim::DeviceAddr, std::uint64_t>
WorkingSetTool::lookupObject(sim::DeviceAddr Addr) const {
  for (const auto *Intervals : {&TensorIntervals, &AllocIntervals}) {
    auto It = Intervals->upper_bound(Addr);
    if (It == Intervals->begin())
      continue;
    --It;
    if (Addr < It->second.End)
      return {It->first, It->second.End - It->first};
  }
  return {0, 0};
}

void WorkingSetTool::countChunk(
    const sim::MemAccessRecord *Records, std::size_t Count,
    std::unordered_map<sim::DeviceAddr, std::uint64_t> &Local) const {
  for (std::size_t I = 0; I < Count; ++I) {
    auto [Base, Bytes] = lookupObject(Records[I].Address);
    (void)Bytes;
    if (Base == 0)
      continue;
    Local[Base] += Records[I].Multiplicity;
  }
}

void WorkingSetTool::mergeCounts(
    const std::unordered_map<sim::DeviceAddr, std::uint64_t> &Local) {
  std::lock_guard<std::mutex> Lock(MergeMutex);
  for (const auto &[Base, Count] : Local)
    CurrentCounts[Base] += Count;
}

void WorkingSetTool::Reducer::processRecords(
    const sim::LaunchInfo &Info, const sim::MemAccessRecord *Records,
    std::size_t Count) {
  (void)Info;
  // Chunk-local counting then one merge — the atomics-on-result-buffer
  // pattern of the paper's device helper, minus false sharing.
  std::unordered_map<sim::DeviceAddr, std::uint64_t> Local;
  Parent.countChunk(Records, Count, Local);
  Parent.mergeCounts(Local);
}

DeviceAnalysis *WorkingSetTool::deviceAnalysis() {
  return Mode == WsAnalysisMode::DeviceResident ? &InSituReducer : nullptr;
}

void WorkingSetTool::onAccessBatch(const sim::LaunchInfo &Info,
                                   const sim::MemAccessRecord *Records,
                                   std::size_t Count) {
  (void)Info;
  // Host-side model: a single thread walks every record.
  std::unordered_map<sim::DeviceAddr, std::uint64_t> Local;
  countChunk(Records, Count, Local);
  for (const auto &[Base, CountVal] : Local)
    CurrentCounts[Base] += CountVal;
}

void WorkingSetTool::onKernelTraceEnd(
    const sim::LaunchInfo &Info, const sim::TraceTimeBreakdown &Breakdown) {
  TotalBreakdown += Breakdown;

  KernelRecord Record;
  Record.Name = Info.Desc ? Info.Desc->Name : CurrentKernelName;
  Record.GridId = Info.GridId;
  for (const auto &[Base, Count] : CurrentCounts) {
    auto SizeIt = ObjectBytes.find(Base);
    std::uint64_t Bytes =
        SizeIt == ObjectBytes.end() ? 0 : SizeIt->second;
    Record.FootprintBytes += Bytes;
    Record.References += Count;
    Record.Spans.emplace_back(Base, Bytes);
  }
  std::sort(Record.Spans.begin(), Record.Spans.end());
  CurrentCounts.clear();

  if (CaptureMaxRef && Processor && Record.References > MaxRefCount) {
    MaxRefCount = Record.References;
    MaxRefName = Record.Name;
    MaxRefStack = Processor->callStacks().capture(MaxRefName);
  }
  Kernels.push_back(std::move(Record));
}

WorkingSetTool::Summary WorkingSetTool::summary() const {
  Summary S;
  S.KernelCount = Kernels.size();
  S.PeakFootprintBytes = PeakReserved > 0 ? PeakReserved : PeakAllocBytes;
  SampleStats Stats;
  for (const KernelRecord &Record : Kernels) {
    if (Record.FootprintBytes == 0)
      continue;
    Stats.add(static_cast<double>(Record.FootprintBytes));
    S.WorkingSetBytes =
        std::max(S.WorkingSetBytes, Record.FootprintBytes);
  }
  if (!Stats.empty()) {
    S.MinWsBytes = Stats.min();
    S.AvgWsBytes = Stats.mean();
    S.MedianWsBytes = Stats.median();
    S.P90WsBytes = Stats.percentile(90.0);
  }
  return S;
}

void WorkingSetTool::writeReport(std::FILE *Out) {
  Summary S = summary();
  TablePrinter Table({"Kernel Count", "Memory Footprint", "Working Set",
                      "Min WS", "Avg WS", "Median WS", "90th pct WS"});
  Table.addRow({std::to_string(S.KernelCount),
                formatBytes(S.PeakFootprintBytes),
                formatBytes(S.WorkingSetBytes),
                formatBytes(static_cast<std::uint64_t>(S.MinWsBytes)),
                formatBytes(static_cast<std::uint64_t>(S.AvgWsBytes)),
                formatBytes(static_cast<std::uint64_t>(S.MedianWsBytes)),
                formatBytes(static_cast<std::uint64_t>(S.P90WsBytes))});
  std::fprintf(Out, "=== working_set (%s analysis) ===\n",
               Mode == WsAnalysisMode::DeviceResident ? "GPU-resident"
                                                      : "host-side");
  Table.print(Out);
  if (CaptureMaxRef && !MaxRefName.empty())
    std::fprintf(Out, "\nMost memory-referenced kernel: %s\n%s",
                 MaxRefName.c_str(), MaxRefStack.str().c_str());
}

void WorkingSetTool::report(ReportSink &Sink) {
  Summary S = summary();
  Sink.beginReport(name());
  Sink.metric("analysis_mode", Mode == WsAnalysisMode::DeviceResident
                                   ? "gpu-resident"
                                   : "host-side");
  Sink.metric("kernel_count", S.KernelCount);
  Sink.metric("memory_footprint_bytes", S.PeakFootprintBytes);
  Sink.metric("working_set_bytes", S.WorkingSetBytes);
  Sink.metric("min_ws_bytes", S.MinWsBytes);
  Sink.metric("avg_ws_bytes", S.AvgWsBytes);
  Sink.metric("median_ws_bytes", S.MedianWsBytes);
  Sink.metric("p90_ws_bytes", S.P90WsBytes);
  Sink.text(renderTextReport());
  Sink.endReport();
}
