//===- tools/MemUsageTimelineTool.h - Fig. 14/15 case study -----*- C++ -*-===//
//
// Part of the PASTA reproduction, under the MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Memory-usage-over-time analysis (paper §V-D, Fig. 14/15): records the
/// pool's allocated bytes at every tensor allocation/deallocation event,
/// per device. The x-axis is the logical timestamp — the tensor event
/// index — exactly as the paper plots it. Works identically on NVIDIA and
/// AMD backends, which is the cross-vendor point of Fig. 14.
///
//===----------------------------------------------------------------------===//

#ifndef PASTA_TOOLS_MEMUSAGETIMELINETOOL_H
#define PASTA_TOOLS_MEMUSAGETIMELINETOOL_H

#include "pasta/Tool.h"

#include <cstdint>
#include <map>
#include <mutex>
#include <string>
#include <vector>

namespace pasta {
namespace tools {

/// Per-device tensor-granularity memory usage series.
///
/// Declares the ShardByDevice contract: its state is a per-device series,
/// so events for different devices may be dispatched concurrently — only
/// the container itself (creating a device's series on first use) is
/// guarded; appends to one device's series are serialized by the
/// per-device lane ordering the contract guarantees.
class MemUsageTimelineTool : public Tool {
public:
  std::string name() const override { return "mem_usage_timeline"; }

  /// Tensor alloc/reclaim only, sharded by device.
  Subscription subscription() override;

  void onTensorAlloc(const Event &E) override { record(E); }
  void onTensorReclaim(const Event &E) override { record(E); }
  void writeReport(std::FILE *Out) override;
  void report(ReportSink &Sink) override;

  /// Allocated-bytes series per device, one sample per tensor event.
  /// Accessors are for quiescent pipelines (post-finish / post-flush).
  const std::vector<std::uint64_t> &series(int DeviceIndex) const;
  std::vector<int> devices() const;
  std::uint64_t peak(int DeviceIndex) const;
  std::uint64_t numEvents(int DeviceIndex) const;

private:
  void record(const Event &E);

  /// Guards the map structure only (device-series creation and lookup);
  /// values are appended outside the lock, per the sharded contract.
  mutable std::mutex SeriesMutex;
  std::map<int, std::vector<std::uint64_t>> Series;
};

} // namespace tools
} // namespace pasta

#endif // PASTA_TOOLS_MEMUSAGETIMELINETOOL_H
