//===- tools/UvmPrefetcher.cpp --------------------------------------------===//
//
// Part of the PASTA reproduction, under the MIT license.
//
//===----------------------------------------------------------------------===//

#include "tools/UvmPrefetcher.h"

#include "support/ErrorHandling.h"

#include <set>

using namespace pasta;
using namespace pasta::tools;

const char *pasta::tools::prefetchLevelName(PrefetchLevel Level) {
  switch (Level) {
  case PrefetchLevel::None:
    return "none";
  case PrefetchLevel::Object:
    return "object";
  case PrefetchLevel::Tensor:
    return "tensor";
  }
  PASTA_UNREACHABLE("unknown PrefetchLevel");
}

void UvmPrefetcher::install(dl::Executor &Executor) {
  if (Level == PrefetchLevel::None)
    return;
  Executor.setPreKernelHook([this](const sim::KernelDesc &Desc,
                                   const dl::Step &S, dl::Executor &Ex) {
    (void)S;
    beforeKernel(Desc, Ex);
  });
}

void UvmPrefetcher::beforeKernel(const sim::KernelDesc &Desc,
                                 dl::Executor &Executor) {
  dl::DeviceApi &Api = Executor.api();
  sim::UvmSpace &Uvm = Api.device().uvm();

  if (Level == PrefetchLevel::Tensor) {
    // Prefetch exactly the spans the kernel is about to touch.
    for (const sim::AccessSegment &Seg : Desc.Segments) {
      if (Seg.Space != sim::MemSpace::Global || Seg.Extent == 0)
        continue;
      if (!Uvm.isManaged(Seg.Base))
        continue;
      Api.prefetch(Seg.Base, Seg.Extent);
      ++PrefetchCalls;
      PrefetchedBytes += Seg.Extent;
    }
    return;
  }

  // Object level: prefetch the whole pool segments containing the
  // kernel's tensors — dead tensors in the segment come along for the
  // ride. Dedupe segments within one kernel.
  std::set<sim::DeviceAddr> Seen;
  for (const sim::AccessSegment &Seg : Desc.Segments) {
    if (Seg.Space != sim::MemSpace::Global || Seg.Extent == 0)
      continue;
    auto Segment = Executor.allocator().segmentContaining(Seg.Base);
    if (!Segment) {
      if (Uvm.isManaged(Seg.Base)) {
        Api.prefetch(Seg.Base, Seg.Extent);
        ++PrefetchCalls;
        PrefetchedBytes += Seg.Extent;
      }
      continue;
    }
    if (!Seen.insert(Segment->Base).second)
      continue;
    if (!Uvm.isManaged(Segment->Base))
      continue;
    Api.prefetch(Segment->Base, Segment->Bytes);
    ++PrefetchCalls;
    PrefetchedBytes += Segment->Bytes;
  }
}
