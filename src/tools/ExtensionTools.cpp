//===- tools/ExtensionTools.cpp -------------------------------------------===//
//
// Part of the PASTA reproduction, under the MIT license.
//
//===----------------------------------------------------------------------===//

#include "tools/ExtensionTools.h"

#include "support/Format.h"
#include "support/TablePrinter.h"
#include "support/Units.h"

#include <algorithm>

using namespace pasta;
using namespace pasta::tools;

//===----------------------------------------------------------------------===//
// InstructionMixTool
//===----------------------------------------------------------------------===//

Subscription InstructionMixTool::subscription() {
  Subscription Sub;
  Sub.Kinds = EventKindMask::none();
  Sub.InstrMix = true;
  Sub.Model = ExecutionModel::Concurrent;
  return Sub;
}

double InstructionMixTool::KernelMix::memoryFraction() const {
  std::uint64_t Total = Mix.total();
  if (Total == 0)
    return 0.0;
  return static_cast<double>(Mix.GlobalLoads + Mix.GlobalStores +
                             Mix.SharedAccesses) /
         static_cast<double>(Total);
}

void InstructionMixTool::onInstrMix(const sim::LaunchInfo &Info,
                                    const sim::InstrMix &Mix) {
  // Ignore empty payloads (e.g. the requirements() negotiation probe).
  if (Mix.total() == 0)
    return;
  KernelMix &Entry = Mixes[Info.Desc ? Info.Desc->Name : "<unknown>"];
  ++Entry.Launches;
  Entry.Mix.GlobalLoads += Mix.GlobalLoads;
  Entry.Mix.GlobalStores += Mix.GlobalStores;
  Entry.Mix.SharedAccesses += Mix.SharedAccesses;
  Entry.Mix.Barriers += Mix.Barriers;
  Entry.Mix.ComputeInstrs += Mix.ComputeInstrs;
}

void InstructionMixTool::writeReport(std::FILE *Out) {
  std::fprintf(Out, "=== instruction_mix (%zu kernels) ===\n",
               Mixes.size());
  TablePrinter Table({"Kernel", "Launches", "Loads", "Stores", "Barriers",
                      "Compute", "Mem%"});
  for (const auto &[Name, Entry] : Mixes)
    Table.addRow({Name, std::to_string(Entry.Launches),
                  std::to_string(Entry.Mix.GlobalLoads),
                  std::to_string(Entry.Mix.GlobalStores),
                  std::to_string(Entry.Mix.Barriers),
                  std::to_string(Entry.Mix.ComputeInstrs),
                  format("%.1f%%", Entry.memoryFraction() * 100.0)});
  Table.print(Out);
}

//===----------------------------------------------------------------------===//
// BarrierStallTool
//===----------------------------------------------------------------------===//

BarrierStallTool::BarrierStallTool(std::uint64_t BarrierLatencyNs)
    : BarrierLatencyNs(BarrierLatencyNs) {}

Subscription BarrierStallTool::subscription() {
  Subscription Sub;
  Sub.Kinds = {EventKind::OperatorStart, EventKind::KernelLaunch};
  Sub.Model = ExecutionModel::Serial;
  return Sub;
}

void BarrierStallTool::onOperatorStart(const Event &E) {
  CurrentLayer = E.LayerName;
}

void BarrierStallTool::onKernelLaunch(const Event &E) {
  if (!E.Kernel)
    return;
  // Each block executes BarriersPerBlock barriers; waves of blocks stall
  // serially per SM, so weight by grid size.
  std::uint64_t Barriers =
      static_cast<std::uint64_t>(E.Kernel->BarriersPerBlock) *
      E.Kernel->Grid.count();
  std::uint64_t Stall = Barriers * BarrierLatencyNs / 1000;
  if (CurrentLayer.empty())
    StallByLayer["<toplevel>"] += Stall;
  else
    StallByLayer[CurrentLayer.str()] += Stall;
  TotalStall += Stall;
}

void BarrierStallTool::writeReport(std::FILE *Out) {
  std::fprintf(Out, "=== barrier_stall: total %s ===\n",
               formatSimTime(TotalStall).c_str());
  std::vector<std::pair<std::uint64_t, std::string>> Sorted;
  for (const auto &[Layer, Stall] : StallByLayer)
    Sorted.emplace_back(Stall, Layer);
  std::sort(Sorted.rbegin(), Sorted.rend());
  TablePrinter Table({"Estimated Stall", "Layer"});
  for (const auto &[Stall, Layer] : Sorted)
    Table.addRow({formatSimTime(Stall), Layer});
  Table.print(Out);
}

//===----------------------------------------------------------------------===//
// RedundantLoadTool
//===----------------------------------------------------------------------===//

Subscription RedundantLoadTool::subscription() {
  Subscription Sub;
  Sub.Kinds = {EventKind::KernelLaunch};
  Sub.AccessRecords = true;
  Sub.KernelTrace = true;
  Sub.Model = ExecutionModel::Serial;
  return Sub;
}

void RedundantLoadTool::onKernelLaunch(const Event &E) {
  (void)E;
  SeenAddresses.clear();
  CurrentAccesses = 0;
  CurrentRedundant = 0;
}

void RedundantLoadTool::InSitu::processRecords(
    const sim::LaunchInfo &Info, const sim::MemAccessRecord *Records,
    std::size_t Count) {
  (void)Info;
  std::unordered_map<sim::DeviceAddr, std::uint64_t> Local;
  for (std::size_t I = 0; I < Count; ++I)
    Local[Records[I].Address] += Records[I].Multiplicity;

  std::lock_guard<std::mutex> Lock(Parent.Mutex);
  for (const auto &[Addr, Hits] : Local) {
    std::uint64_t &Seen = Parent.SeenAddresses[Addr];
    // First access to an address is useful; repeats are redundancy
    // candidates (same value re-loaded).
    std::uint64_t Redundant = Seen == 0 ? Hits - 1 : Hits;
    Parent.CurrentRedundant += Redundant;
    Parent.CurrentAccesses += Hits;
    Seen += Hits;
  }
}

void RedundantLoadTool::onKernelTraceEnd(
    const sim::LaunchInfo &Info, const sim::TraceTimeBreakdown &Breakdown) {
  (void)Breakdown;
  KernelRedundancy Record;
  Record.Name = Info.Desc ? Info.Desc->Name : "<unknown>";
  Record.GridId = Info.GridId;
  Record.Accesses = CurrentAccesses;
  Record.Redundant = CurrentRedundant;
  Kernels.push_back(std::move(Record));
  SeenAddresses.clear();
  CurrentAccesses = 0;
  CurrentRedundant = 0;
}

void RedundantLoadTool::writeReport(std::FILE *Out) {
  std::fprintf(Out, "=== redundant_load (%zu launches) ===\n",
               Kernels.size());
  TablePrinter Table({"GridId", "Kernel", "Accesses", "Redundant",
                      "Fraction"});
  for (const KernelRedundancy &Record : Kernels)
    Table.addRow({std::to_string(Record.GridId), Record.Name,
                  std::to_string(Record.Accesses),
                  std::to_string(Record.Redundant),
                  format("%.1f%%", Record.fraction() * 100.0)});
  Table.print(Out);
}
