//===- tools/TraceCaptureTool.cpp -----------------------------------------===//
//
// Part of the PASTA reproduction, under the MIT license.
//
//===----------------------------------------------------------------------===//

#include "tools/TraceCaptureTool.h"

#include "support/Env.h"
#include "support/Logging.h"
#include "support/ReportSink.h"

using namespace pasta;
using namespace pasta::tools;

TraceCaptureTool::TraceCaptureTool() = default;

TraceCaptureTool::TraceCaptureTool(std::string Path)
    : OutputPath(std::move(Path)) {}

Subscription TraceCaptureTool::subscription() {
  Subscription Sub;
  Sub.Kinds = EventKindMask::all();
  Sub.Model = ExecutionModel::Serial;
  return Sub;
}

bool TraceCaptureTool::openNow(SessionError &Err) {
  if (Writer.isOpen())
    return true;
  if (OutputPath.empty())
    OutputPath = getEnvString("PASTA_CAPTURE", "");
  if (OutputPath.empty()) {
    Err.assign("trace_capture has no output path; pass --capture <file> "
               "(SessionBuilder::capture) or set PASTA_CAPTURE");
    OpenFailed = true;
    return false;
  }
  if (!Writer.open(OutputPath, Err)) {
    OpenFailed = true;
    return false;
  }
  return true;
}

void TraceCaptureTool::onStart() {
  if (Writer.isOpen() || OpenFailed)
    return;
  SessionError Err;
  if (!openNow(Err))
    logWarning(Err.message() + "; capturing nothing");
}

void TraceCaptureTool::onEvent(const Event &E) { Writer.append(E); }

void TraceCaptureTool::onFinish() {
  if (!Writer.isOpen())
    return;
  SessionError Err;
  if (!Writer.finalize(Err))
    logWarning(Err.message());
}

void TraceCaptureTool::report(ReportSink &Sink) {
  // Deliberately path-free: a live capture report and the report of a
  // replay capturing elsewhere must stay byte-identical (the round-trip
  // determinism gate diffs whole report documents).
  const TraceWriterStats &S = Writer.stats();
  Sink.beginReport(name());
  Sink.metric("events", S.Events);
  Sink.metric("strings", S.Strings);
  Sink.metric("stacks", S.Stacks);
  Sink.metric("kernels", S.Kernels);
  Sink.metric("payload_refs", S.PayloadRefs);
  Sink.metric("payload_hits", S.PayloadHits);
  Sink.metric("bytes_written", S.BytesWritten);
  Sink.endReport();
}
