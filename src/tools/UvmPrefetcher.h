//===- tools/UvmPrefetcher.h - Fig. 11/12 case study ------------*- C++ -*-===//
//
// Part of the PASTA reproduction, under the MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The tensor-aware UVM prefetcher (paper §V-C1): an automated prefetcher
/// built on PASTA's cross-layer visibility. Before each kernel launch it
/// issues cudaMemPrefetchAsync at one of two granularities:
///
///  * Tensor level — exactly the tensors the kernel is about to touch
///    (knowledge only the DL-framework integration provides);
///  * Object level — the whole pool segments containing those tensors
///    (all a vendor-level tool could do), which drags along dead tensors
///    sharing the segment and thrashes under oversubscription (Fig. 12).
///
//===----------------------------------------------------------------------===//

#ifndef PASTA_TOOLS_UVMPREFETCHER_H
#define PASTA_TOOLS_UVMPREFETCHER_H

#include "dl/Executor.h"

#include <cstdint>
#include <string>

namespace pasta {
namespace tools {

/// Prefetch granularity of paper Fig. 11/12.
enum class PrefetchLevel { None, Object, Tensor };

const char *prefetchLevelName(PrefetchLevel Level);

/// Pre-kernel UVM prefetcher; install() hooks it into an Executor.
class UvmPrefetcher {
public:
  explicit UvmPrefetcher(PrefetchLevel Level) : Level(Level) {}

  /// Installs the pre-kernel hook on \p Executor (whose allocator must be
  /// managed for prefetching to have any effect).
  void install(dl::Executor &Executor);

  std::uint64_t prefetchCalls() const { return PrefetchCalls; }
  std::uint64_t prefetchedBytes() const { return PrefetchedBytes; }
  PrefetchLevel level() const { return Level; }

private:
  void beforeKernel(const sim::KernelDesc &Desc, dl::Executor &Executor);

  PrefetchLevel Level;
  std::uint64_t PrefetchCalls = 0;
  std::uint64_t PrefetchedBytes = 0;
};

} // namespace tools
} // namespace pasta

#endif // PASTA_TOOLS_UVMPREFETCHER_H
