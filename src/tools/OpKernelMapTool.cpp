//===- tools/OpKernelMapTool.cpp ------------------------------------------===//
//
// Part of the PASTA reproduction, under the MIT license.
//
//===----------------------------------------------------------------------===//

#include "tools/OpKernelMapTool.h"

#include "support/Format.h"
#include "support/TablePrinter.h"
#include "support/Units.h"

#include <algorithm>

using namespace pasta;
using namespace pasta::tools;

Subscription OpKernelMapTool::subscription() {
  Subscription Sub;
  Sub.Kinds = {EventKind::OperatorStart, EventKind::OperatorEnd,
               EventKind::KernelLaunch, EventKind::KernelComplete};
  Sub.Model = ExecutionModel::Serial;
  return Sub;
}

void OpKernelMapTool::onOperatorStart(const Event &E) {
  ActiveOp Op;
  Op.OpName = E.OpName;
  Stack.push_back(std::move(Op));
  OpProfile &Profile = Profiles[E.OpName];
  Profile.OpName = E.OpName;
  ++Profile.Invocations;
}

void OpKernelMapTool::onOperatorEnd(const Event &E) {
  // Tolerate mismatches (range filters can suppress begins).
  if (!Stack.empty() && Stack.back().OpName == E.OpName)
    Stack.pop_back();
}

void OpKernelMapTool::onKernelLaunch(const Event &E) {
  if (Stack.empty()) {
    ++Unattributed;
    return;
  }
  OpProfile &Profile = Profiles[Stack.back().OpName];
  ++Profile.KernelLaunches;
  if (E.Kernel)
    ++Profile.Kernels[E.Kernel->Name];
  Stack.back().LastLaunchTime = E.Timestamp;
}

void OpKernelMapTool::onKernelComplete(const Event &E) {
  if (Stack.empty())
    return;
  // Kernel execution is synchronous in the simulator: completion minus
  // launch is the kernel's simulated wall time.
  OpProfile &Profile = Profiles[Stack.back().OpName];
  if (E.Timestamp >= Stack.back().LastLaunchTime)
    Profile.ExecTime += E.Timestamp - Stack.back().LastLaunchTime;
}

void OpKernelMapTool::writeReport(std::FILE *Out) {
  std::fprintf(Out, "=== op_kernel_map (%zu operators, %llu unattributed "
                    "kernels) ===\n",
               Profiles.size(),
               static_cast<unsigned long long>(Unattributed));
  std::vector<const OpProfile *> Sorted;
  for (const auto &[Name, Profile] : Profiles)
    Sorted.push_back(&Profile);
  std::sort(Sorted.begin(), Sorted.end(),
            [](const OpProfile *A, const OpProfile *B) {
              return A->ExecTime > B->ExecTime;
            });
  TablePrinter Table({"Operator", "Invocations", "Kernels",
                      "Kernels/Invocation", "Exec Time",
                      "Distinct Kernels"});
  for (const OpProfile *Profile : Sorted)
    Table.addRow({Profile->OpName, std::to_string(Profile->Invocations),
                  std::to_string(Profile->KernelLaunches),
                  format("%.2f", Profile->kernelsPerInvocation()),
                  formatSimTime(Profile->ExecTime),
                  std::to_string(Profile->Kernels.size())});
  Table.print(Out);
}
