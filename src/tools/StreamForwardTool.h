//===- tools/StreamForwardTool.h - Live trace forwarding --------*- C++ -*-===//
//
// Part of the PASTA reproduction, under the MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The producer half of fleet aggregation (docs/SERVE.md):
/// trace_capture's sibling that serializes the admitted event stream
/// with the same TraceWriter — payload tables emitted once per
/// connection, events referencing them by u32 id — but ships the bytes
/// incrementally over a TraceStreamSink socket connection to an
/// `accelprof --serve` aggregator instead of a file. Subscribes to
/// every kind on one Serial lane, so the wire stream is the admission
/// order and a single-client tenant's merged report is byte-identical
/// to running the same tools in-process.
///
/// The socket path and tenant come from the constructor
/// (SessionBuilder::connect / accelprof --connect/--tenant) or, for
/// registry-created instances ("stream_forward" via --tool/PASTA_TOOL),
/// the PASTA_CONNECT / PASTA_TENANT environment variables. Transport
/// fault-tolerance knobs (connect timeout/retries, reconnect with
/// spill replay) ride in StreamClientOptions — driver flags override
/// PASTA_* env, env overrides defaults.
///
/// A transport failure after connect (daemon died mid-run) is handled
/// per the options: with --reconnect the sink retries with backoff and
/// replays unacked frames; otherwise it is logged once and the session
/// keeps running unstreamed — losing the aggregator must never take
/// the profiled process down with it.
///
/// At finish, the tool ships the session's ProcessorStats as one meta
/// frame so the daemon can merge a fleet-wide event_pipeline rollup
/// (--pipeline-report).
///
//===----------------------------------------------------------------------===//

#ifndef PASTA_TOOLS_STREAMFORWARDTOOL_H
#define PASTA_TOOLS_STREAMFORWARDTOOL_H

#include "pasta/EventProcessor.h"
#include "pasta/Tool.h"
#include "pasta/TraceWriter.h"
#include "serve/TraceStreamSink.h"

#include <functional>
#include <string>

namespace pasta {
namespace tools {

/// Forwards the admitted event stream to an aggregator socket.
class StreamForwardTool : public Tool {
public:
  /// Registry constructor: takes socket + tenant from PASTA_CONNECT /
  /// PASTA_TENANT at openNow()/onStart() time.
  StreamForwardTool();
  /// Connects to \p SocketPath as \p Tenant ("" = "default").
  StreamForwardTool(std::string SocketPath, std::string Tenant);

  std::string name() const override { return "stream_forward"; }

  /// Every kind, Serial — the wire stream is the admission order.
  Subscription subscription() override;

  /// Overrides the env-resolved transport options; call before the
  /// connection opens (Session::initialize does, from builder knobs).
  void setClientOptions(const serve::StreamClientOptions &O);

  /// Source of the client pipeline counters shipped as a meta frame at
  /// finish (Session::initialize wires processor().stats() in). Unset =
  /// no meta frame.
  void setPipelineStatsProvider(std::function<ProcessorStats()> Provider) {
    StatsProvider = std::move(Provider);
  }

  /// Connects now instead of at onStart(), so Session::initialize
  /// surfaces a dead daemon or bad tenant name at build time. False
  /// with \p Err on failure.
  bool openNow(SessionError &Err);

  void onStart() override;
  void onEvent(const Event &E) override;
  void onFinish() override;

  /// Writer counters only — everything deterministic for a
  /// deterministic workload. Transport counters (frames, blocked sends,
  /// reconnects, replays) are timing-dependent and stay out, same
  /// reasoning as the capture report omitting its path.
  void report(ReportSink &Sink) override;

  const TraceWriterStats &writerStats() const { return Writer.stats(); }
  const serve::TraceStreamSinkStats &sinkStats() const {
    return Sink.stats();
  }

private:
  std::string SocketPath;
  std::string Tenant;
  serve::TraceStreamSink Sink;
  TraceWriter Writer;
  serve::StreamClientOptions Opts;
  bool OptsSet = false;
  std::function<ProcessorStats()> StatsProvider;
  bool OpenFailed = false;
};

} // namespace tools
} // namespace pasta

#endif // PASTA_TOOLS_STREAMFORWARDTOOL_H
