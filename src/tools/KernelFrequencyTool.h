//===- tools/KernelFrequencyTool.h - Fig. 6/7 case study --------*- C++ -*-===//
//
// Part of the PASTA reproduction, under the MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Kernel invocation frequency analysis (paper §V-B1, Fig. 6/7): the
/// "intuitive yet insightful" example tool — a map from kernel name to
/// invocation count, built by overriding one handler of the PASTA tool
/// template. With the MAX_CALLED_KERNEL knob it also captures the
/// cross-layer call stack of the hottest kernel.
///
//===----------------------------------------------------------------------===//

#ifndef PASTA_TOOLS_KERNELFREQUENCYTOOL_H
#define PASTA_TOOLS_KERNELFREQUENCYTOOL_H

#include "pasta/CallStack.h"
#include "pasta/Tool.h"

#include <cstdint>
#include <map>
#include <string>
#include <vector>

namespace pasta {
namespace tools {

/// Counts kernel invocations by name (the paper's
/// TOOL::record_kernel_freq).
class KernelFrequencyTool : public Tool {
public:
  std::string name() const override { return "kernel_frequency"; }

  /// Kernel launches only, on one serial lane (the frequency map and
  /// hottest-stack capture are unsynchronized).
  Subscription subscription() override;

  void onAttach(EventProcessor &Processor) override;
  void onKernelLaunch(const Event &E) override;
  void writeReport(std::FILE *Out) override;
  void report(ReportSink &Sink) override;

  /// Invocation counts keyed by kernel name.
  const std::map<std::string, std::uint64_t> &frequencies() const {
    return Frequencies;
  }
  std::uint64_t totalLaunches() const { return TotalLaunches; }

  /// (count, name) pairs sorted descending — Fig. 7's bubble sizes.
  std::vector<std::pair<std::uint64_t, std::string>> sorted() const;

  /// Cross-layer stack of the most frequently invoked kernel (captured
  /// when the MAX_CALLED_KERNEL knob is on).
  const CrossLayerStack &hottestKernelStack() const { return HottestStack; }
  const std::string &hottestKernel() const { return HottestName; }

private:
  std::map<std::string, std::uint64_t> Frequencies;
  std::uint64_t TotalLaunches = 0;
  EventProcessor *Processor = nullptr;
  bool CaptureHottest = false;
  std::string HottestName;
  std::uint64_t HottestCount = 0;
  CrossLayerStack HottestStack;
};

} // namespace tools
} // namespace pasta

#endif // PASTA_TOOLS_KERNELFREQUENCYTOOL_H
