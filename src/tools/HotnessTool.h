//===- tools/HotnessTool.h - Fig. 13 case study -----------------*- C++ -*-===//
//
// Part of the PASTA reproduction, under the MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Time-series hotness analysis (paper §V-C2, Fig. 13): tracks memory
/// access hotness over time at 2 MiB virtual-memory-block granularity.
/// Long-lived hot blocks (parameters) are prefetch-and-pin candidates;
/// bursty short-lived blocks (transient activations) are pro-active
/// eviction candidates.
///
//===----------------------------------------------------------------------===//

#ifndef PASTA_TOOLS_HOTNESSTOOL_H
#define PASTA_TOOLS_HOTNESSTOOL_H

#include "pasta/Tool.h"

#include <cstdint>
#include <map>
#include <mutex>
#include <string>
#include <vector>

namespace pasta {
namespace tools {

/// Per-(block, time-window) access counting tool.
class HotnessTool : public Tool {
public:
  /// \p BlockBytes defaults to the paper's 2 MiB unit.
  explicit HotnessTool(std::uint64_t BlockBytes = 2 * 1024 * 1024);
  ~HotnessTool() override;

  std::string name() const override { return "hotness"; }

  /// Kernel launches (window bookkeeping) + access records, on one
  /// serial lane; the in-situ reducer is separately synchronized.
  Subscription subscription() override;

  void onKernelLaunch(const Event &E) override;
  DeviceAnalysis *deviceAnalysis() override { return &InSituReducer; }
  void writeReport(std::FILE *Out) override;

  /// Classification of one block over the run.
  struct BlockProfile {
    sim::DeviceAddr Block = 0;
    std::uint64_t TotalAccesses = 0;
    /// Number of time windows with nonzero accesses.
    std::uint32_t ActiveWindows = 0;
    /// True when active in most windows (long-lived hot data, e.g.
    /// parameters — pin candidates).
    bool LongLived = false;
  };

  /// (block, window) -> access count. Window = kernel launch order
  /// bucketed by WindowKernels.
  const std::map<std::pair<sim::DeviceAddr, std::uint32_t>, std::uint64_t> &
  heatmap() const {
    return Heatmap;
  }

  /// Per-block classification; \p LongLivedFraction is the active-window
  /// share above which a block counts as long-lived.
  std::vector<BlockProfile> profiles(double LongLivedFraction = 0.6) const;

  std::uint32_t numWindows() const { return LastWindow + 1; }
  std::uint64_t blockBytes() const { return BlockBytes; }

  /// Kernel launches per time window (logical-time bucketing).
  void setWindowKernels(std::uint32_t Kernels) { WindowKernels = Kernels; }

private:
  class Reducer : public DeviceAnalysis {
  public:
    explicit Reducer(HotnessTool &Parent) : Parent(Parent) {}
    void processRecords(const sim::LaunchInfo &Info,
                        const sim::MemAccessRecord *Records,
                        std::size_t Count) override;

  private:
    HotnessTool &Parent;
  };

  std::uint64_t BlockBytes;
  std::uint32_t WindowKernels = 8;
  Reducer InSituReducer;
  std::mutex MergeMutex;
  std::uint64_t KernelIndex = 0;
  std::uint32_t CurrentWindow = 0;
  std::uint32_t LastWindow = 0;
  std::map<std::pair<sim::DeviceAddr, std::uint32_t>, std::uint64_t> Heatmap;
};

} // namespace tools
} // namespace pasta

#endif // PASTA_TOOLS_HOTNESSTOOL_H
