//===- tools/UvmAdvisorTool.h - hotness -> pin/evict advice -----*- C++ -*-===//
//
// Part of the PASTA reproduction, under the MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Closes the loop of paper §V-C2: the time-series hotness analysis
/// (Fig. 13) identifies long-lived hot blocks (prefetch-and-pin via
/// cudaMemPrefetchAsync + cudaMemAdvise) and bursty blocks (pro-active
/// eviction candidates). UvmAdvisor turns a HotnessTool profile into a
/// concrete advice list and can apply it to a device before a rerun.
///
//===----------------------------------------------------------------------===//

#ifndef PASTA_TOOLS_UVMADVISORTOOL_H
#define PASTA_TOOLS_UVMADVISORTOOL_H

#include "dl/Backend.h"
#include "tools/HotnessTool.h"

#include <cstdint>
#include <vector>

namespace pasta {
namespace tools {

/// One piece of placement advice for a 2 MiB block.
struct UvmAdvice {
  enum class Kind {
    PrefetchAndPin, ///< long-lived hot data (e.g. parameters)
    ProactiveEvict, ///< bursty transient data
  };
  Kind Advice = Kind::PrefetchAndPin;
  sim::DeviceAddr Block = 0;
  std::uint64_t Bytes = 0;
  std::uint64_t TotalAccesses = 0;
};

/// Derives and applies placement advice from hotness profiles.
class UvmAdvisor {
public:
  /// Builds the advice list: blocks active in at least
  /// \p LongLivedFraction of windows get PrefetchAndPin; blocks active
  /// in at most \p BurstyFraction get ProactiveEvict; the middle gets no
  /// advice (default UVM policy).
  static std::vector<UvmAdvice>
  planFromHotness(const HotnessTool &Hotness,
                  double LongLivedFraction = 0.6,
                  double BurstyFraction = 0.15);

  /// Applies the plan to \p Api's device: prefetch + preferred-location
  /// advice for pins (managed blocks only). Returns pinned bytes.
  static std::uint64_t applyPins(dl::DeviceApi &Api,
                                 const std::vector<UvmAdvice> &Plan);
};

} // namespace tools
} // namespace pasta

#endif // PASTA_TOOLS_UVMADVISORTOOL_H
