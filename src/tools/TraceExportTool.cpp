//===- tools/TraceExportTool.cpp ------------------------------------------===//
//
// Part of the PASTA reproduction, under the MIT license.
//
//===----------------------------------------------------------------------===//

#include "tools/TraceExportTool.h"

#include "support/Format.h"

using namespace pasta;
using namespace pasta::tools;

Subscription TraceExportTool::subscription() {
  Subscription Sub;
  Sub.Kinds = {EventKind::OperatorStart, EventKind::OperatorEnd,
               EventKind::KernelLaunch, EventKind::KernelComplete,
               EventKind::MemoryCopy, EventKind::BatchMemoryOp};
  Sub.Model = ExecutionModel::Serial;
  return Sub;
}

namespace {
/// Fixed category labels, allocated once (entries share the handle).
const PayloadString &opCategory() {
  static const PayloadString Label("op");
  return Label;
}
const PayloadString &kernelCategory() {
  static const PayloadString Label("kernel");
  return Label;
}
const PayloadString &memcpyCategory() {
  static const PayloadString Label("memcpy");
  return Label;
}
const PayloadString &uvmCategory() {
  static const PayloadString Label("uvm");
  return Label;
}
} // namespace

void TraceExportTool::onOperatorStart(const Event &E) {
  Entry Item;
  Item.Phase = 'B';
  Item.Name = E.OpName;
  Item.Category = E.LayerName.empty() ? opCategory() : E.LayerName;
  Item.Device = E.DeviceIndex;
  Item.Track = 0;
  Item.TimestampNs = E.Timestamp;
  Entries.push_back(std::move(Item));
}

void TraceExportTool::onOperatorEnd(const Event &E) {
  Entry Item;
  Item.Phase = 'E';
  Item.Name = E.OpName;
  Item.Device = E.DeviceIndex;
  Item.Track = 0;
  Item.TimestampNs = E.Timestamp;
  Entries.push_back(std::move(Item));
}

void TraceExportTool::onKernelLaunch(const Event &E) {
  PayloadString Name;
  if (E.Kernel && E.ownedKernel()) {
    // Alias the interned descriptor's own name storage: the handle
    // shares the descriptor's refcount, so repeated launches of one
    // kernel allocate nothing at all.
    Name.adopt(std::shared_ptr<const std::string>(
        E.ownedKernel(), &E.ownedKernel()->Name));
  } else if (E.Kernel) {
    Name = E.Kernel->Name; // synchronous mode borrows; copy once
  } else {
    static const PayloadString Unknown("<kernel>");
    Name = Unknown;
  }
  PendingKernels[E.DeviceIndex] = {std::move(Name), E.Timestamp};
}

void TraceExportTool::onKernelComplete(const Event &E) {
  auto It = PendingKernels.find(E.DeviceIndex);
  if (It == PendingKernels.end())
    return;
  Entry Item;
  Item.Phase = 'X';
  Item.Name = It->second.first;
  Item.Category = kernelCategory();
  Item.Device = E.DeviceIndex;
  Item.Track = 1;
  Item.TimestampNs = It->second.second;
  Item.DurationNs = E.Timestamp >= It->second.second
                        ? E.Timestamp - It->second.second
                        : 0;
  Entries.push_back(std::move(Item));
  PendingKernels.erase(It);
}

void TraceExportTool::onMemoryCopy(const Event &E) {
  Entry Item;
  Item.Phase = 'i';
  Item.Name = format("memcpy %llu B",
                     static_cast<unsigned long long>(E.Bytes));
  Item.Category = memcpyCategory();
  Item.Device = E.DeviceIndex;
  Item.Track = 1;
  Item.TimestampNs = E.Timestamp;
  Entries.push_back(std::move(Item));
}

void TraceExportTool::onBatchMemoryOp(const Event &E) {
  Entry Item;
  Item.Phase = 'i';
  Item.Name = format("uvm batch op %llu B",
                     static_cast<unsigned long long>(E.Bytes));
  Item.Category = uvmCategory();
  Item.Device = E.DeviceIndex;
  Item.Track = 1;
  Item.TimestampNs = E.Timestamp;
  Entries.push_back(std::move(Item));
}

void TraceExportTool::appendJsonString(std::string &Out,
                                       const std::string &Text) {
  Out += '"';
  for (char C : Text) {
    switch (C) {
    case '"':
      Out += "\\\"";
      break;
    case '\\':
      Out += "\\\\";
      break;
    case '\n':
      Out += "\\n";
      break;
    default:
      if (static_cast<unsigned char>(C) < 0x20)
        Out += format("\\u%04x", C);
      else
        Out += C;
    }
  }
  Out += '"';
}

std::string TraceExportTool::toJson() const {
  std::string Out = "[\n";
  bool First = true;
  for (const Entry &Item : Entries) {
    if (!First)
      Out += ",\n";
    First = false;
    Out += "  {\"name\": ";
    appendJsonString(Out, Item.Name);
    Out += ", \"cat\": ";
    appendJsonString(Out,
                     Item.Category.empty() ? "event" : Item.Category.str());
    Out += format(", \"ph\": \"%c\", \"ts\": %.3f, \"pid\": %d, "
                  "\"tid\": %d",
                  Item.Phase,
                  static_cast<double>(Item.TimestampNs) / 1000.0,
                  Item.Device, Item.Track);
    if (Item.Phase == 'X')
      Out += format(", \"dur\": %.3f",
                    static_cast<double>(Item.DurationNs) / 1000.0);
    if (Item.Phase == 'i')
      Out += ", \"s\": \"t\"";
    Out += "}";
  }
  Out += "\n]\n";
  return Out;
}

void TraceExportTool::writeReport(std::FILE *Out) {
  std::string Json = toJson();
  std::fwrite(Json.data(), 1, Json.size(), Out);
}
