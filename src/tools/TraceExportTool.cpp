//===- tools/TraceExportTool.cpp ------------------------------------------===//
//
// Part of the PASTA reproduction, under the MIT license.
//
//===----------------------------------------------------------------------===//

#include "tools/TraceExportTool.h"

#include "support/Format.h"

using namespace pasta;
using namespace pasta::tools;

Subscription TraceExportTool::subscription() {
  Subscription Sub;
  Sub.Kinds = {EventKind::OperatorStart, EventKind::OperatorEnd,
               EventKind::KernelLaunch, EventKind::KernelComplete,
               EventKind::MemoryCopy, EventKind::BatchMemoryOp};
  Sub.Model = ExecutionModel::Serial;
  return Sub;
}

void TraceExportTool::onOperatorStart(const Event &E) {
  Entry Item;
  Item.Phase = 'B';
  Item.Name = E.OpName;
  Item.Category = E.LayerName.empty() ? "op" : E.LayerName;
  Item.Device = E.DeviceIndex;
  Item.Track = 0;
  Item.TimestampNs = E.Timestamp;
  Entries.push_back(std::move(Item));
}

void TraceExportTool::onOperatorEnd(const Event &E) {
  Entry Item;
  Item.Phase = 'E';
  Item.Name = E.OpName;
  Item.Device = E.DeviceIndex;
  Item.Track = 0;
  Item.TimestampNs = E.Timestamp;
  Entries.push_back(std::move(Item));
}

void TraceExportTool::onKernelLaunch(const Event &E) {
  PendingKernels[E.DeviceIndex] = {
      E.Kernel ? E.Kernel->Name : "<kernel>", E.Timestamp};
}

void TraceExportTool::onKernelComplete(const Event &E) {
  auto It = PendingKernels.find(E.DeviceIndex);
  if (It == PendingKernels.end())
    return;
  Entry Item;
  Item.Phase = 'X';
  Item.Name = It->second.first;
  Item.Category = "kernel";
  Item.Device = E.DeviceIndex;
  Item.Track = 1;
  Item.TimestampNs = It->second.second;
  Item.DurationNs = E.Timestamp >= It->second.second
                        ? E.Timestamp - It->second.second
                        : 0;
  Entries.push_back(std::move(Item));
  PendingKernels.erase(It);
}

void TraceExportTool::onMemoryCopy(const Event &E) {
  Entry Item;
  Item.Phase = 'i';
  Item.Name = format("memcpy %llu B",
                     static_cast<unsigned long long>(E.Bytes));
  Item.Category = "memcpy";
  Item.Device = E.DeviceIndex;
  Item.Track = 1;
  Item.TimestampNs = E.Timestamp;
  Entries.push_back(std::move(Item));
}

void TraceExportTool::onBatchMemoryOp(const Event &E) {
  Entry Item;
  Item.Phase = 'i';
  Item.Name = format("uvm batch op %llu B",
                     static_cast<unsigned long long>(E.Bytes));
  Item.Category = "uvm";
  Item.Device = E.DeviceIndex;
  Item.Track = 1;
  Item.TimestampNs = E.Timestamp;
  Entries.push_back(std::move(Item));
}

void TraceExportTool::appendJsonString(std::string &Out,
                                       const std::string &Text) {
  Out += '"';
  for (char C : Text) {
    switch (C) {
    case '"':
      Out += "\\\"";
      break;
    case '\\':
      Out += "\\\\";
      break;
    case '\n':
      Out += "\\n";
      break;
    default:
      if (static_cast<unsigned char>(C) < 0x20)
        Out += format("\\u%04x", C);
      else
        Out += C;
    }
  }
  Out += '"';
}

std::string TraceExportTool::toJson() const {
  std::string Out = "[\n";
  bool First = true;
  for (const Entry &Item : Entries) {
    if (!First)
      Out += ",\n";
    First = false;
    Out += "  {\"name\": ";
    appendJsonString(Out, Item.Name);
    Out += ", \"cat\": ";
    appendJsonString(Out, Item.Category.empty() ? "event" : Item.Category);
    Out += format(", \"ph\": \"%c\", \"ts\": %.3f, \"pid\": %d, "
                  "\"tid\": %d",
                  Item.Phase,
                  static_cast<double>(Item.TimestampNs) / 1000.0,
                  Item.Device, Item.Track);
    if (Item.Phase == 'X')
      Out += format(", \"dur\": %.3f",
                    static_cast<double>(Item.DurationNs) / 1000.0);
    if (Item.Phase == 'i')
      Out += ", \"s\": \"t\"";
    Out += "}";
  }
  Out += "\n]\n";
  return Out;
}

void TraceExportTool::writeReport(std::FILE *Out) {
  std::string Json = toJson();
  std::fwrite(Json.data(), 1, Json.size(), Out);
}
