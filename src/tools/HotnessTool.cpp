//===- tools/HotnessTool.cpp ----------------------------------------------===//
//
// Part of the PASTA reproduction, under the MIT license.
//
//===----------------------------------------------------------------------===//

#include "tools/HotnessTool.h"

#include "support/Format.h"
#include "support/TablePrinter.h"
#include "support/Units.h"

#include <unordered_map>

using namespace pasta;
using namespace pasta::tools;

HotnessTool::HotnessTool(std::uint64_t BlockBytes)
    : BlockBytes(BlockBytes), InSituReducer(*this) {}

HotnessTool::~HotnessTool() = default;

Subscription HotnessTool::subscription() {
  Subscription Sub;
  Sub.Kinds = {EventKind::KernelLaunch};
  Sub.AccessRecords = true;
  Sub.Model = ExecutionModel::Serial;
  return Sub;
}

void HotnessTool::onKernelLaunch(const Event &E) {
  (void)E;
  CurrentWindow = static_cast<std::uint32_t>(KernelIndex / WindowKernels);
  LastWindow = std::max(LastWindow, CurrentWindow);
  ++KernelIndex;
}

void HotnessTool::Reducer::processRecords(const sim::LaunchInfo &Info,
                                          const sim::MemAccessRecord *Records,
                                          std::size_t Count) {
  (void)Info;
  std::unordered_map<sim::DeviceAddr, std::uint64_t> Local;
  for (std::size_t I = 0; I < Count; ++I) {
    sim::DeviceAddr Block =
        Records[I].Address / Parent.BlockBytes * Parent.BlockBytes;
    Local[Block] += Records[I].Multiplicity;
  }
  std::lock_guard<std::mutex> Lock(Parent.MergeMutex);
  for (const auto &[Block, Accesses] : Local)
    Parent.Heatmap[{Block, Parent.CurrentWindow}] += Accesses;
}

std::vector<HotnessTool::BlockProfile>
HotnessTool::profiles(double LongLivedFraction) const {
  std::map<sim::DeviceAddr, BlockProfile> ByBlock;
  for (const auto &[Key, Count] : Heatmap) {
    BlockProfile &Profile = ByBlock[Key.first];
    Profile.Block = Key.first;
    Profile.TotalAccesses += Count;
    ++Profile.ActiveWindows;
  }
  std::vector<BlockProfile> Out;
  Out.reserve(ByBlock.size());
  double Threshold = LongLivedFraction * numWindows();
  for (auto &[Block, Profile] : ByBlock) {
    Profile.LongLived = Profile.ActiveWindows >= Threshold;
    Out.push_back(Profile);
  }
  return Out;
}

void HotnessTool::writeReport(std::FILE *Out) {
  auto Profiles = profiles();
  std::uint64_t LongLived = 0;
  for (const BlockProfile &Profile : Profiles)
    if (Profile.LongLived)
      ++LongLived;
  std::fprintf(Out,
               "=== hotness: %zu blocks of %s, %u windows, %llu "
               "long-lived hot blocks ===\n",
               Profiles.size(), formatBytes(BlockBytes).c_str(),
               numWindows(), static_cast<unsigned long long>(LongLived));
  TablePrinter Table({"Block", "Windows Active", "Total Accesses",
                      "Class"});
  for (const BlockProfile &Profile : Profiles)
    Table.addRow({format("0x%llx", static_cast<unsigned long long>(
                                       Profile.Block)),
                  std::to_string(Profile.ActiveWindows),
                  std::to_string(Profile.TotalAccesses),
                  Profile.LongLived ? "long-lived (pin)"
                                    : "bursty (evict)"});
  Table.print(Out);
}
