//===- tools/TraceCaptureTool.h - Binary trace capture sink -----*- C++ -*-===//
//
// Part of the PASTA reproduction, under the MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The capture half of PASTA's capture-once, analyze-anywhere story: a
/// tool subscribing to *every* event kind on one Serial lane, writing
/// each admitted event into a binary trace file (pasta/TraceWriter.h).
/// Because the Serial contract delivers events in admission order, the
/// captured file is deterministic for a deterministic workload — replay
/// of a capture reproduces it byte for byte, which the test suite and
/// the CI smoke step assert with cmp(1).
///
/// The output path comes from the constructor (SessionBuilder::capture /
/// accelprof --capture) or, for registry-created instances
/// ("trace_capture" via --tool/PASTA_TOOL), the PASTA_CAPTURE
/// environment variable. The report deliberately omits the path so a
/// live report and the report of a replay capturing to a different path
/// stay byte-identical.
///
//===----------------------------------------------------------------------===//

#ifndef PASTA_TOOLS_TRACECAPTURETOOL_H
#define PASTA_TOOLS_TRACECAPTURETOOL_H

#include "pasta/Tool.h"
#include "pasta/TraceWriter.h"

#include <string>

namespace pasta {
namespace tools {

/// Serializes the admitted event stream to a binary trace file.
class TraceCaptureTool : public Tool {
public:
  /// Registry constructor: takes the path from PASTA_CAPTURE at
  /// onStart() time (warns and captures nothing when unset).
  TraceCaptureTool();
  /// Captures into \p Path (the SessionBuilder::capture path).
  explicit TraceCaptureTool(std::string Path);

  std::string name() const override { return "trace_capture"; }

  /// Every kind, Serial: the writer sees the full admitted stream in
  /// admission order, which is what makes captures deterministic.
  Subscription subscription() override;

  /// Opens the output file now instead of at onStart(), so callers with
  /// a SessionError at hand (Session::initialize) surface open failures
  /// at build time. False with \p Err naming the file on failure.
  bool openNow(SessionError &Err);

  void onStart() override;
  void onEvent(const Event &E) override;
  void onFinish() override;

  /// Capture counters (events, payload-table sizes, bytes); no path.
  void report(ReportSink &Sink) override;

  const TraceWriterStats &stats() const { return Writer.stats(); }
  const std::string &path() const { return OutputPath; }

private:
  std::string OutputPath;
  TraceWriter Writer;
  bool OpenFailed = false;
};

} // namespace tools
} // namespace pasta

#endif // PASTA_TOOLS_TRACECAPTURETOOL_H
