//===- tools/WorkingSetTool.h - Table V / Fig. 8-10 case study --*- C++ -*-===//
//
// Part of the PASTA reproduction, under the MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Memory characteristics analysis (paper §V-B2): tracks which memory
/// objects/tensors each kernel actually touches, computes per-kernel
/// memory footprints and the workload's working set (the maximum
/// footprint of any single kernel). Two analysis variants mirror Fig. 8:
///
///  * DeviceResident — PASTA's GPU-resident model: a thread-safe reducer
///    updates the object -> access-count map in-situ on the device
///    analysis threads; only the result map returns to the host.
///  * HostSide — the conventional Sanitizer-MemoryTracker / NVBit-MemTrace
///    model: raw records cross to the host and one thread counts them.
///
/// Tensor boundaries come from the DL framework events when available
/// (pool segments would otherwise be the only visible objects — exactly
/// the visibility gap the paper describes); raw vendor allocations are
/// the fallback.
///
//===----------------------------------------------------------------------===//

#ifndef PASTA_TOOLS_WORKINGSETTOOL_H
#define PASTA_TOOLS_WORKINGSETTOOL_H

#include "pasta/CallStack.h"
#include "pasta/Tool.h"
#include "support/Statistics.h"

#include <cstdint>
#include <map>
#include <mutex>
#include <string>
#include <unordered_map>
#include <vector>

namespace pasta {
namespace tools {

/// Which of Fig. 8's models the tool runs its reduction under. Must match
/// the backend the profiler attached (the backend decides the simulated
/// cost; this decides the real reduction path).
enum class WsAnalysisMode { DeviceResident, HostSide };

/// Memory characteristics / working set analysis tool.
class WorkingSetTool : public Tool {
public:
  explicit WorkingSetTool(WsAnalysisMode Mode = WsAnalysisMode::DeviceResident);
  ~WorkingSetTool() override;

  std::string name() const override { return "working_set"; }

  /// Resource + kernel-launch events, access records and per-launch
  /// breakdowns, on one serial lane (the interval maps and the current-
  /// kernel accumulator are only guarded against the device-analysis
  /// threads, not against other coarse hooks).
  Subscription subscription() override;

  /// Per-kernel result.
  struct KernelRecord {
    std::string Name;
    std::uint64_t GridId = 0;
    /// Sum of sizes of objects with nonzero access counts.
    std::uint64_t FootprintBytes = 0;
    /// Real (multiplicity-weighted) access count.
    std::uint64_t References = 0;
    /// Touched object spans (base, bytes) — feeds UVM prefetch planning.
    std::vector<std::pair<sim::DeviceAddr, std::uint64_t>> Spans;
  };

  /// Workload summary — one Table V row.
  struct Summary {
    std::uint64_t KernelCount = 0;
    std::uint64_t PeakFootprintBytes = 0; ///< "Memory Footprint" column
    std::uint64_t WorkingSetBytes = 0;    ///< max per-kernel footprint
    double MinWsBytes = 0;
    double AvgWsBytes = 0;
    double MedianWsBytes = 0;
    double P90WsBytes = 0;
  };

  void onAttach(EventProcessor &Processor) override;
  void onMemoryAlloc(const Event &E) override;
  void onMemoryFree(const Event &E) override;
  void onTensorAlloc(const Event &E) override;
  void onTensorReclaim(const Event &E) override;
  void onKernelLaunch(const Event &E) override;
  void onAccessBatch(const sim::LaunchInfo &Info,
                     const sim::MemAccessRecord *Records,
                     std::size_t Count) override;
  DeviceAnalysis *deviceAnalysis() override;
  void onKernelTraceEnd(const sim::LaunchInfo &Info,
                        const sim::TraceTimeBreakdown &Breakdown) override;
  void writeReport(std::FILE *Out) override;
  void report(ReportSink &Sink) override;

  const std::vector<KernelRecord> &kernels() const { return Kernels; }
  Summary summary() const;
  /// Accumulated instrumentation breakdown (Fig. 10's components).
  const sim::TraceTimeBreakdown &totalBreakdown() const {
    return TotalBreakdown;
  }
  /// Cross-layer stack of the kernel with the most memory references
  /// (captured under the MAX_MEM_REFERENCED_KERNEL knob — Fig. 4).
  const CrossLayerStack &maxReferencedStack() const { return MaxRefStack; }
  const std::string &maxReferencedKernel() const { return MaxRefName; }

private:
  struct Interval {
    sim::DeviceAddr End = 0;
  };

  /// In-situ reducer for the device-resident path.
  class Reducer : public DeviceAnalysis {
  public:
    explicit Reducer(WorkingSetTool &Parent) : Parent(Parent) {}
    void processRecords(const sim::LaunchInfo &Info,
                        const sim::MemAccessRecord *Records,
                        std::size_t Count) override;

  private:
    WorkingSetTool &Parent;
  };

  /// Finds the object interval containing \p Addr; returns (base, size)
  /// or (0, 0). Tensor intervals win over raw allocations.
  std::pair<sim::DeviceAddr, std::uint64_t>
  lookupObject(sim::DeviceAddr Addr) const;

  /// Counts one chunk of records into \p Local.
  void countChunk(const sim::MemAccessRecord *Records, std::size_t Count,
                  std::unordered_map<sim::DeviceAddr, std::uint64_t> &Local)
      const;

  /// Merges a chunk-local map into the current kernel's map.
  void mergeCounts(
      const std::unordered_map<sim::DeviceAddr, std::uint64_t> &Local);

  WsAnalysisMode Mode;
  Reducer InSituReducer;
  EventProcessor *Processor = nullptr;
  bool CaptureMaxRef = false;

  /// Live object intervals keyed by base address.
  std::map<sim::DeviceAddr, Interval> TensorIntervals;
  std::map<sim::DeviceAddr, Interval> AllocIntervals;
  /// Object sizes (base -> bytes) for footprint sums.
  std::unordered_map<sim::DeviceAddr, std::uint64_t> ObjectBytes;

  /// Current kernel accumulation (object base -> access count).
  std::unordered_map<sim::DeviceAddr, std::uint64_t> CurrentCounts;
  std::mutex MergeMutex;
  std::string CurrentKernelName;
  std::uint64_t CurrentGridId = 0;

  std::vector<KernelRecord> Kernels;
  std::uint64_t PeakReserved = 0;
  std::uint64_t LiveAllocBytes = 0;
  std::uint64_t PeakAllocBytes = 0;
  sim::TraceTimeBreakdown TotalBreakdown;
  std::uint64_t MaxRefCount = 0;
  std::string MaxRefName;
  CrossLayerStack MaxRefStack;
};

} // namespace tools
} // namespace pasta

#endif // PASTA_TOOLS_WORKINGSETTOOL_H
