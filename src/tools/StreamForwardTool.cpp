//===- tools/StreamForwardTool.cpp ----------------------------------------===//
//
// Part of the PASTA reproduction, under the MIT license.
//
//===----------------------------------------------------------------------===//

#include "tools/StreamForwardTool.h"

#include "pasta/StreamEnvelope.h"
#include "support/Env.h"
#include "support/Logging.h"
#include "support/ReportSink.h"

using namespace pasta;
using namespace pasta::tools;

StreamForwardTool::StreamForwardTool() = default;

StreamForwardTool::StreamForwardTool(std::string SocketPath,
                                     std::string Tenant)
    : SocketPath(std::move(SocketPath)), Tenant(std::move(Tenant)) {}

Subscription StreamForwardTool::subscription() {
  Subscription Sub;
  Sub.Kinds = EventKindMask::all();
  Sub.Model = ExecutionModel::Serial;
  return Sub;
}

void StreamForwardTool::setClientOptions(
    const serve::StreamClientOptions &O) {
  Opts = O;
  OptsSet = true;
}

bool StreamForwardTool::openNow(SessionError &Err) {
  if (Sink.isConnected())
    return true;
  if (SocketPath.empty())
    SocketPath = getEnvString("PASTA_CONNECT", "");
  if (Tenant.empty())
    Tenant = getEnvString("PASTA_TENANT", "default");
  // Env resolution happens at open time, not construction, so tests
  // (and late exports) see the current PASTA_* values.
  Sink.setOptions(OptsSet ? Opts : serve::StreamClientOptions::fromEnv());
  if (SocketPath.empty()) {
    Err.assign("stream_forward has no aggregator socket; pass "
               "--connect <socket> (SessionBuilder::connect) or set "
               "PASTA_CONNECT");
    OpenFailed = true;
    return false;
  }
  if (!Sink.connect(SocketPath, Tenant, Err)) {
    OpenFailed = true;
    return false;
  }
  if (!Writer.openSink(Sink, trace::kFlagStreamed, Err)) {
    OpenFailed = true;
    return false;
  }
  return true;
}

void StreamForwardTool::onStart() {
  if (Sink.isConnected() || OpenFailed)
    return;
  SessionError Err;
  if (!openNow(Err))
    logWarning(Err.message() + "; forwarding nothing");
}

void StreamForwardTool::onEvent(const Event &E) { Writer.append(E); }

void StreamForwardTool::onFinish() {
  if (!Sink.isConnected())
    return;
  SessionError Err;
  // End record into the frame buffer, then the pipeline-counter meta
  // frame, then the final frame + EOF.
  bool Ok = Writer.finalize(Err);
  if (Ok && StatsProvider) {
    ProcessorStats S = StatsProvider();
    std::vector<trace::StreamMetaCounter> Counters = {
        {trace::StreamMetaEventsProcessed, S.EventsProcessed},
        {trace::StreamMetaEventsFiltered, S.EventsFiltered},
        {trace::StreamMetaEventsDropped, S.EventsDropped},
        {trace::StreamMetaEventsSampledOut, S.EventsSampledOut},
        {trace::StreamMetaMaxQueueDepth, S.MaxQueueDepth},
        {trace::StreamMetaFlushCount, S.FlushCount},
        {trace::StreamMetaQueueSpins, S.QueueSpins},
        {trace::StreamMetaQueueParks, S.QueueParks},
        {trace::StreamMetaArenaPayloads, S.ArenaPayloads},
        {trace::StreamMetaArenaBytes, S.ArenaBytes},
        {trace::StreamMetaArenaHits, S.ArenaHits},
        {trace::StreamMetaArenaMemoHits, S.ArenaMemoHits},
    };
    std::string Payload;
    trace::encodeStreamMeta(Payload, Counters);
    Sink.appendMeta(Payload);
  }
  if (!Sink.finish(Err))
    Ok = false;
  if (!Ok)
    logWarning(Err.message() + "; aggregator will see this stream as "
                               "truncated");
}

void StreamForwardTool::report(ReportSink &Out) {
  const TraceWriterStats &S = Writer.stats();
  Out.beginReport(name());
  Out.metric("events", S.Events);
  Out.metric("strings", S.Strings);
  Out.metric("stacks", S.Stacks);
  Out.metric("kernels", S.Kernels);
  Out.metric("payload_refs", S.PayloadRefs);
  Out.metric("payload_hits", S.PayloadHits);
  Out.metric("bytes_written", S.BytesWritten);
  Out.endReport();
}
