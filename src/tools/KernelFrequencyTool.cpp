//===- tools/KernelFrequencyTool.cpp --------------------------------------===//
//
// Part of the PASTA reproduction, under the MIT license.
//
//===----------------------------------------------------------------------===//

#include "tools/KernelFrequencyTool.h"

#include "pasta/EventProcessor.h"
#include "pasta/Knobs.h"
#include "support/ReportSink.h"
#include "support/TablePrinter.h"

#include <algorithm>

using namespace pasta;
using namespace pasta::tools;

Subscription KernelFrequencyTool::subscription() {
  Subscription Sub;
  Sub.Kinds = {EventKind::KernelLaunch};
  // Stack context is only consumed under the MAX_CALLED_KERNEL knob;
  // declare it exactly then so context updates reach this tool's lane.
  Sub.CapturesStacks = Knobs::fromEnv().MaxCalledKernel;
  Sub.Model = ExecutionModel::Serial;
  return Sub;
}

void KernelFrequencyTool::onAttach(EventProcessor &Processor) {
  this->Processor = &Processor;
  CaptureHottest = Knobs::fromEnv().MaxCalledKernel;
}

void KernelFrequencyTool::onKernelLaunch(const Event &E) {
  if (!E.Kernel)
    return;
  ++TotalLaunches;
  std::uint64_t Count = ++Frequencies[E.Kernel->Name];
  if (CaptureHottest && Processor && Count > HottestCount) {
    HottestCount = Count;
    HottestName = E.Kernel->Name;
    HottestStack = Processor->callStacks().capture(HottestName);
  }
}

std::vector<std::pair<std::uint64_t, std::string>>
KernelFrequencyTool::sorted() const {
  std::vector<std::pair<std::uint64_t, std::string>> Out;
  Out.reserve(Frequencies.size());
  for (const auto &[Name, Count] : Frequencies)
    Out.emplace_back(Count, Name);
  std::sort(Out.begin(), Out.end(),
            [](const auto &A, const auto &B) {
              if (A.first != B.first)
                return A.first > B.first;
              return A.second < B.second;
            });
  return Out;
}

void KernelFrequencyTool::writeReport(std::FILE *Out) {
  TablePrinter Table({"Invocations", "Kernel"});
  for (const auto &[Count, Name] : sorted())
    Table.addRow({std::to_string(Count), Name});
  std::fprintf(Out, "=== kernel_frequency: %llu launches, %zu distinct "
                    "kernels ===\n",
               static_cast<unsigned long long>(TotalLaunches),
               Frequencies.size());
  Table.print(Out);
  if (CaptureHottest && !HottestName.empty()) {
    std::fprintf(Out, "\nMost-called kernel: %s\n%s",
                 HottestName.c_str(), HottestStack.str().c_str());
  }
}

void KernelFrequencyTool::report(ReportSink &Sink) {
  Sink.beginReport(name());
  Sink.metric("total_launches", TotalLaunches);
  Sink.metric("distinct_kernels",
              static_cast<std::uint64_t>(Frequencies.size()));
  for (const auto &[Name, Count] : Frequencies)
    Sink.metric("launches." + Name, Count);
  Sink.text(renderTextReport());
  Sink.endReport();
}
