//===- tools/MemUsageTimelineTool.cpp -------------------------------------===//
//
// Part of the PASTA reproduction, under the MIT license.
//
//===----------------------------------------------------------------------===//

#include "tools/MemUsageTimelineTool.h"

#include "support/ReportSink.h"
#include "support/TablePrinter.h"
#include "support/Units.h"

#include <algorithm>

using namespace pasta;
using namespace pasta::tools;

Subscription MemUsageTimelineTool::subscription() {
  Subscription Sub;
  Sub.Kinds = {EventKind::TensorAlloc, EventKind::TensorReclaim};
  Sub.Model = ExecutionModel::ShardByDevice;
  return Sub;
}

void MemUsageTimelineTool::record(const Event &E) {
  std::vector<std::uint64_t> *DeviceSeries;
  {
    // Map nodes are stable; only the find-or-create races across lanes.
    std::lock_guard<std::mutex> Lock(SeriesMutex);
    DeviceSeries = &Series[E.DeviceIndex];
  }
  // Same device => same lane => appends are ordered and unshared.
  DeviceSeries->push_back(E.PoolAllocated);
}

const std::vector<std::uint64_t> &
MemUsageTimelineTool::series(int DeviceIndex) const {
  static const std::vector<std::uint64_t> Empty;
  std::lock_guard<std::mutex> Lock(SeriesMutex);
  auto It = Series.find(DeviceIndex);
  return It == Series.end() ? Empty : It->second;
}

std::vector<int> MemUsageTimelineTool::devices() const {
  std::vector<int> Out;
  std::lock_guard<std::mutex> Lock(SeriesMutex);
  for (const auto &[Device, Samples] : Series)
    Out.push_back(Device);
  return Out;
}

std::uint64_t MemUsageTimelineTool::peak(int DeviceIndex) const {
  const auto &Samples = series(DeviceIndex);
  if (Samples.empty())
    return 0;
  return *std::max_element(Samples.begin(), Samples.end());
}

std::uint64_t MemUsageTimelineTool::numEvents(int DeviceIndex) const {
  return series(DeviceIndex).size();
}

void MemUsageTimelineTool::writeReport(std::FILE *Out) {
  std::fprintf(Out, "=== mem_usage_timeline ===\n");
  TablePrinter Table({"Device", "Tensor Events", "Peak Usage"});
  for (int Device : devices())
    Table.addRow({std::to_string(Device),
                  std::to_string(numEvents(Device)),
                  formatBytes(peak(Device))});
  Table.print(Out);
}

void MemUsageTimelineTool::report(ReportSink &Sink) {
  Sink.beginReport(name());
  for (int Device : devices()) {
    std::string Prefix = "device" + std::to_string(Device);
    Sink.metric(Prefix + ".tensor_events", numEvents(Device));
    Sink.metric(Prefix + ".peak_bytes", peak(Device));
  }
  Sink.text(renderTextReport());
  Sink.endReport();
}
