//===- tools/RegisterTools.h - Tool registration ----------------*- C++ -*-===//
//
// Part of the PASTA reproduction, under the MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Registers the built-in case-study tools with the global ToolRegistry
/// under the names usable via PASTA_TOOL / addToolByName:
/// "kernel_frequency", "working_set", "working_set_host", "hotness",
/// "mem_usage_timeline", "op_kernel_map",
/// "instruction_mix", "barrier_stall", "redundant_load". Explicit call (no static constructors, per the
/// coding standards).
///
//===----------------------------------------------------------------------===//

#ifndef PASTA_TOOLS_REGISTERTOOLS_H
#define PASTA_TOOLS_REGISTERTOOLS_H

namespace pasta {
namespace tools {

/// Idempotent registration of all built-in tools.
void registerBuiltinTools();

} // namespace tools
} // namespace pasta

#endif // PASTA_TOOLS_REGISTERTOOLS_H
