//===- tools/ExtensionTools.h - §III-H extensibility demos ------*- C++ -*-===//
//
// Part of the PASTA reproduction, under the MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The three tool families the paper's §III-H claims PASTA makes easy to
/// prototype, each implemented in a few dozen lines over the template:
///
///  * InstructionMixTool — instruction-level analysis on the NVBit
///    full-coverage backend (warp-efficiency style per-kernel mixes);
///  * BarrierStallTool — memory-centric analysis quantifying
///    synchronization stalls at barriers, attributed to layers;
///  * RedundantLoadTool — value-based analysis flagging kernels that
///    re-load the same addresses (GVProf-style redundancy).
///
//===----------------------------------------------------------------------===//

#ifndef PASTA_TOOLS_EXTENSIONTOOLS_H
#define PASTA_TOOLS_EXTENSIONTOOLS_H

#include "pasta/Tool.h"

#include <cstdint>
#include <map>
#include <mutex>
#include <string>
#include <unordered_map>
#include <vector>

namespace pasta {
namespace tools {

/// Per-kernel dynamic instruction mixes (requires the NVBit backend,
/// which alone sees every SASS instruction).
class InstructionMixTool : public Tool {
public:
  std::string name() const override { return "instruction_mix"; }

  /// No discrete events at all — instruction mixes arrive on the
  /// record-delivery path, so any lane placement is fine (Concurrent).
  Subscription subscription() override;

  struct KernelMix {
    std::uint64_t Launches = 0;
    sim::InstrMix Mix;
    /// Memory instructions / total (memory-boundedness proxy).
    double memoryFraction() const;
  };

  void onInstrMix(const sim::LaunchInfo &Info,
                  const sim::InstrMix &Mix) override;
  void writeReport(std::FILE *Out) override;

  const std::map<std::string, KernelMix> &mixes() const { return Mixes; }

private:
  std::map<std::string, KernelMix> Mixes;
};

/// Synchronization-stall estimation: barriers per launch times the
/// per-barrier reconvergence latency, attributed to the enclosing layer.
class BarrierStallTool : public Tool {
public:
  /// \p BarrierLatencyNs is the modeled reconvergence cost per barrier
  /// per resident block wave.
  explicit BarrierStallTool(std::uint64_t BarrierLatencyNs = 200);

  std::string name() const override { return "barrier_stall"; }

  /// Operator starts (layer context) + kernel launches, serial (the
  /// current-layer string threads state between the two hooks).
  Subscription subscription() override;

  void onOperatorStart(const Event &E) override;
  void onKernelLaunch(const Event &E) override;
  void writeReport(std::FILE *Out) override;

  /// Estimated stall nanoseconds per layer.
  const std::map<std::string, std::uint64_t> &stallByLayer() const {
    return StallByLayer;
  }
  std::uint64_t totalStallNs() const { return TotalStall; }

private:
  std::uint64_t BarrierLatencyNs;
  /// Shared handle adopted from the event (no copy per operator start).
  PayloadString CurrentLayer;
  std::map<std::string, std::uint64_t> StallByLayer;
  std::uint64_t TotalStall = 0;
};

/// Value-based redundancy detection: fraction of accesses per kernel that
/// hit an address already accessed in the same launch.
class RedundantLoadTool : public Tool {
public:
  std::string name() const override { return "redundant_load"; }

  /// Kernel launches + access records + per-launch breakdowns, serial
  /// (per-kernel accumulators reset on launch, harvested on trace end).
  Subscription subscription() override;

  struct KernelRedundancy {
    std::string Name;
    std::uint64_t GridId = 0;
    std::uint64_t Accesses = 0;
    std::uint64_t Redundant = 0;
    double fraction() const {
      return Accesses == 0 ? 0.0
                           : static_cast<double>(Redundant) /
                                 static_cast<double>(Accesses);
    }
  };

  void onKernelLaunch(const Event &E) override;
  DeviceAnalysis *deviceAnalysis() override { return &Reducer; }
  void onKernelTraceEnd(const sim::LaunchInfo &Info,
                        const sim::TraceTimeBreakdown &Breakdown) override;
  void writeReport(std::FILE *Out) override;

  const std::vector<KernelRedundancy> &kernels() const { return Kernels; }

  RedundantLoadTool() : Reducer(*this) {}

private:
  class InSitu : public DeviceAnalysis {
  public:
    explicit InSitu(RedundantLoadTool &Parent) : Parent(Parent) {}
    void processRecords(const sim::LaunchInfo &Info,
                        const sim::MemAccessRecord *Records,
                        std::size_t Count) override;

  private:
    RedundantLoadTool &Parent;
  };

  InSitu Reducer;
  std::mutex Mutex;
  std::unordered_map<sim::DeviceAddr, std::uint64_t> SeenAddresses;
  std::uint64_t CurrentAccesses = 0;
  std::uint64_t CurrentRedundant = 0;
  std::vector<KernelRedundancy> Kernels;
};

} // namespace tools
} // namespace pasta

#endif // PASTA_TOOLS_EXTENSIONTOOLS_H
