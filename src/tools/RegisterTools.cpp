//===- tools/RegisterTools.cpp --------------------------------------------===//
//
// Part of the PASTA reproduction, under the MIT license.
//
//===----------------------------------------------------------------------===//

#include "tools/RegisterTools.h"

#include "pasta/Tool.h"
#include "tools/ExtensionTools.h"
#include "tools/HotnessTool.h"
#include "tools/KernelFrequencyTool.h"
#include "tools/MemUsageTimelineTool.h"
#include "tools/OpKernelMapTool.h"
#include "tools/StreamForwardTool.h"
#include "tools/TraceCaptureTool.h"
#include "tools/TraceExportTool.h"
#include "tools/WorkingSetTool.h"

using namespace pasta;
using namespace pasta::tools;

void pasta::tools::registerBuiltinTools() {
  static bool Done = false;
  if (Done)
    return;
  Done = true;
  ToolRegistry &Registry = ToolRegistry::instance();
  Registry.registerTool("kernel_frequency", [] {
    return std::make_unique<KernelFrequencyTool>();
  });
  Registry.registerTool("working_set", [] {
    return std::make_unique<WorkingSetTool>(WsAnalysisMode::DeviceResident);
  });
  Registry.registerTool("working_set_host", [] {
    return std::make_unique<WorkingSetTool>(WsAnalysisMode::HostSide);
  });
  Registry.registerTool("hotness",
                        [] { return std::make_unique<HotnessTool>(); });
  Registry.registerTool("mem_usage_timeline", [] {
    return std::make_unique<MemUsageTimelineTool>();
  });
  Registry.registerTool("instruction_mix", [] {
    return std::make_unique<InstructionMixTool>();
  });
  Registry.registerTool("barrier_stall", [] {
    return std::make_unique<BarrierStallTool>();
  });
  Registry.registerTool("redundant_load", [] {
    return std::make_unique<RedundantLoadTool>();
  });
  Registry.registerTool("op_kernel_map", [] {
    return std::make_unique<OpKernelMapTool>();
  });
  Registry.registerTool("chrome_trace", [] {
    return std::make_unique<TraceExportTool>();
  });
  Registry.registerTool("trace_capture", [] {
    return std::make_unique<TraceCaptureTool>();
  });
  Registry.registerTool("stream_forward", [] {
    return std::make_unique<StreamForwardTool>();
  });
}
