//===- driver/accelprof.cpp - PASTA's command-line client -------*- C++ -*-===//
//
// Part of the PASTA reproduction, under the MIT license.
//
//===----------------------------------------------------------------------===//
//
// The paper artifact's entry point:
//
//   accelprof [-v] -t <tool> [-b <backend>] [-g <gpu>] [--train]
//             [--iters N] [--managed] [--oversub F]
//             [--prefetch none|object|tensor] <model>
//
// e.g.  accelprof -t working_set -b cs-gpu bert
//       accelprof -t kernel_frequency --train resnet18
//       accelprof -t hotness -b cs-gpu --managed --oversub 3 gpt2
//
// <model> is a Table IV zoo entry (alexnet, resnet18, resnet34, gpt2,
// bert, whisper). Tools: see `accelprof --list-tools`.
//
//===----------------------------------------------------------------------===//

#include "pasta/Profiler.h"
#include "support/Format.h"
#include "support/Units.h"
#include "tools/RegisterTools.h"
#include "tools/Workloads.h"

#include <cstdio>
#include <cstring>
#include <string>

using namespace pasta;
using namespace pasta::tools;

namespace {

int usage(const char *Argv0) {
  std::fprintf(
      stderr,
      "usage: %s [-v] -t <tool> [-b cs-gpu|cs-cpu|nvbit-cpu|none]\n"
      "          [-g A100|RTX3060|MI300X] [--train] [--iters N]\n"
      "          [--managed] [--oversub F] [--prefetch none|object|tensor]\n"
      "          [--granularity BYTES] [--sample-rate R] <model>\n"
      "       %s --list-tools\n",
      Argv0, Argv0);
  return 2;
}

int listTools() {
  registerBuiltinTools();
  std::printf("available tools:\n");
  for (const std::string &Name :
       ToolRegistry::instance().registeredNames())
    std::printf("  %s\n", Name.c_str());
  return 0;
}

} // namespace

int main(int Argc, char **Argv) {
  registerBuiltinTools();

  WorkloadConfig Config;
  Config.Model.clear();
  std::string ToolName;
  bool Verbose = false;
  double Oversub = 0.0;

  for (int I = 1; I < Argc; ++I) {
    std::string Arg = Argv[I];
    auto NextValue = [&](const char *Flag) -> const char * {
      if (I + 1 >= Argc) {
        std::fprintf(stderr, "error: %s needs a value\n", Flag);
        std::exit(2);
      }
      return Argv[++I];
    };
    if (Arg == "--list-tools")
      return listTools();
    if (Arg == "-v") {
      Verbose = true;
    } else if (Arg == "-t") {
      ToolName = NextValue("-t");
    } else if (Arg == "-b") {
      std::string Backend = NextValue("-b");
      if (Backend == "cs-gpu")
        Config.Backend = TraceBackend::SanitizerGpu;
      else if (Backend == "cs-cpu")
        Config.Backend = TraceBackend::SanitizerCpu;
      else if (Backend == "nvbit-cpu")
        Config.Backend = TraceBackend::NvbitCpu;
      else if (Backend == "none")
        Config.Backend = TraceBackend::None;
      else {
        std::fprintf(stderr, "error: unknown backend '%s'\n",
                     Backend.c_str());
        return 2;
      }
    } else if (Arg == "-g") {
      Config.Gpu = NextValue("-g");
    } else if (Arg == "--train") {
      Config.Training = true;
    } else if (Arg == "--iters") {
      Config.Iterations = std::atoi(NextValue("--iters"));
    } else if (Arg == "--managed") {
      Config.Managed = true;
    } else if (Arg == "--oversub") {
      Oversub = std::atof(NextValue("--oversub"));
      Config.Managed = true;
    } else if (Arg == "--prefetch") {
      std::string Level = NextValue("--prefetch");
      if (Level == "none")
        Config.Prefetch = PrefetchLevel::None;
      else if (Level == "object")
        Config.Prefetch = PrefetchLevel::Object;
      else if (Level == "tensor")
        Config.Prefetch = PrefetchLevel::Tensor;
      else {
        std::fprintf(stderr, "error: unknown prefetch level '%s'\n",
                     Level.c_str());
        return 2;
      }
      Config.Managed = true;
    } else if (Arg == "--granularity") {
      Config.RecordGranularityBytes =
          static_cast<std::uint64_t>(std::atoll(NextValue("--granularity")));
    } else if (Arg == "--sample-rate") {
      Config.SampleRate = std::atof(NextValue("--sample-rate"));
    } else if (!Arg.empty() && Arg[0] == '-') {
      std::fprintf(stderr, "error: unknown option '%s'\n", Arg.c_str());
      return usage(Argv[0]);
    } else {
      Config.Model = Arg;
    }
  }

  if (Config.Model.empty())
    return usage(Argv[0]);
  if (ToolName.empty())
    ToolName = getEnvString("PASTA_TOOL", "kernel_frequency");

  // Oversubscription needs the footprint: probe with an uninstrumented
  // run first (the paper's pre-allocation trick needs the same number).
  if (Oversub > 0.0) {
    WorkloadConfig Probe = Config;
    Probe.Backend = TraceBackend::None;
    Probe.Prefetch = PrefetchLevel::None;
    Probe.Managed = false;
    Probe.MemoryLimitBytes = 0;
    Profiler ProbeProf;
    std::uint64_t Footprint =
        runWorkload(Probe, ProbeProf).Stats.PeakReserved;
    Config.MemoryLimitBytes =
        static_cast<std::uint64_t>(static_cast<double>(Footprint) / Oversub);
    if (Verbose)
      std::fprintf(stderr,
                   "accelprof: footprint %s, limiting device to %s\n",
                   formatBytes(Footprint).c_str(),
                   formatBytes(Config.MemoryLimitBytes).c_str());
  }

  Profiler Prof;
  if (!Prof.addToolByName(ToolName)) {
    std::fprintf(stderr, "error: unknown tool '%s' (try --list-tools)\n",
                 ToolName.c_str());
    return 2;
  }

  WorkloadResult Result = runWorkload(Config, Prof);
  if (Verbose)
    std::fprintf(stderr,
                 "accelprof: %s %s on %s via %s: %llu kernels, %s "
                 "simulated, peak %s\n",
                 Config.Model.c_str(),
                 Config.Training ? "training" : "inference",
                 Config.Gpu.c_str(), traceBackendName(Config.Backend),
                 static_cast<unsigned long long>(
                     Result.Stats.KernelsLaunched),
                 formatSimTime(Result.Stats.wallTime()).c_str(),
                 formatBytes(Result.Stats.PeakReserved).c_str());
  Prof.writeReports(stdout);
  return 0;
}
