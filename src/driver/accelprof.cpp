//===- driver/accelprof.cpp - PASTA's command-line client -------*- C++ -*-===//
//
// Part of the PASTA reproduction, under the MIT license.
//
//===----------------------------------------------------------------------===//
//
// The paper artifact's entry point, built on the Session API:
//
//   accelprof [-v] -t <tool> [-b <backend>] [-g <gpu>] [--train]
//             [--iters N] [--managed] [--oversub F]
//             [--prefetch none|object|tensor] [--format text|json|csv]
//             [--async] [--queue-depth N] [--overflow block|drop|sample[:N]]
//             [--dispatch-threads N] [--arena-shards N]
//             [--arena-max-bytes BYTES] [--capture FILE]
//             [--connect SOCKET [--tenant NAME]] <model>
//   accelprof -t <tool> -b replay --trace FILE [--replay-speed S]
//   accelprof --serve SOCKET [-t <tool>]... [--report-dir DIR]
//             [--report-every SECONDS]
//   accelprof --control SOCKET <verb> [args...]
//
// e.g.  accelprof -t working_set -b cs-gpu bert
//       accelprof -t kernel_frequency --train resnet18
//       accelprof -t hotness -b cs-gpu --managed --oversub 3 gpt2
//       accelprof -t working_set -b cs-gpu --format json bert
//       accelprof -t kernel_frequency -b cs-gpu --async --queue-depth 1024 bert
//       accelprof -t mem_usage_timeline --async --dispatch-threads 4 bert
//       accelprof -t kernel_frequency --capture run.trace bert
//       accelprof -t working_set -b replay --trace run.trace
//       accelprof --serve /tmp/pasta.sock --report-dir reports &
//       accelprof -t kernel_frequency --connect /tmp/pasta.sock \
//                 --tenant team-a bert
//       accelprof -t kernel_frequency --async --lanes-auto --max-lanes 8 bert
//       accelprof --control /tmp/pasta.sock attach-tool team-a working_set
//
// <model> is a Table IV zoo entry (alexnet, resnet18, resnet34, gpt2,
// bert, whisper). Tools: see `accelprof --list-tools`; backends:
// `accelprof --list-backends`.
//
//===----------------------------------------------------------------------===//

#include "pasta/Session.h"
#include "serve/Aggregator.h"
#include "serve/Control.h"
#include "support/Env.h"
#include "support/Format.h"
#include "support/ReportSink.h"
#include "support/Units.h"
#include "tools/RegisterTools.h"

#include <csignal>
#include <cstdint>
#include <cstdio>
#include <cstring>
#include <memory>
#include <string>
#include <vector>

using namespace pasta;
using namespace pasta::tools;

namespace {

int usage(const char *Argv0) {
  std::fprintf(
      stderr,
      "usage: %s [-v] -t <tool> [-b cs-gpu|cs-cpu|nvbit-cpu|none|replay]\n"
      "          [-g A100|RTX3060|MI300X] [--train] [--iters N]\n"
      "          [--managed] [--oversub F] [--prefetch none|object|tensor]\n"
      "          [--granularity BYTES] [--sample-rate R]\n"
      "          [--format text|json|csv]\n"
      "          [--async] [--queue-depth N]\n"
      "          [--overflow block|drop|sample[:N]]\n"
      "          [--dispatch-threads N] [--arena-shards N]\n"
      "          [--lanes-auto] [--min-lanes N] [--max-lanes N]\n"
      "          [--arena-max-bytes BYTES] [--validate]\n"
      "          [--capture FILE] [--connect SOCKET [--tenant NAME]]\n"
      "          [--connect-timeout S] [--connect-retries N]\n"
      "          [--reconnect [--reconnect-max N] [--spill-max-bytes B]]\n"
      "          <model>\n"
      "       %s -t <tool> -b replay --trace FILE [--replay-speed S]\n"
      "       %s --serve SOCKET [-t <tool>]... [--format text|json|csv]\n"
      "          [--report-dir DIR] [--report-every SECONDS] [--validate]\n"
      "          [--lanes N] [--pipeline-report] [--idle-timeout S]\n"
      "          [--quota-max-connections N] [--quota-events-per-sec R]\n"
      "          [--quota-bytes-per-sec R] [--quota-policy throttle|shed]\n"
      "       %s --control SOCKET <verb> [args...]\n"
      "          (verbs: attach-tool <tenant> <tool>,\n"
      "           detach-tool <tenant> <tool>, set-lanes <tenant> <n>,\n"
      "           list-tenants)\n"
      "       %s --list-tools | --list-backends\n"
      "\n"
      "Every knob (flags, PASTA_* environment variables, SessionBuilder\n"
      "equivalents) is documented with tuning guidance in docs/TUNING.md.\n",
      Argv0, Argv0, Argv0, Argv0, Argv0);
  return 2;
}

/// The daemon the SIGTERM/SIGINT handlers stop. requestStop() is
/// async-signal-safe (one write to the aggregator's self-pipe).
serve::Aggregator *ActiveAggregator = nullptr;

void handleStopSignal(int) {
  if (ActiveAggregator)
    ActiveAggregator->requestStop();
}

int runServe(const serve::ServeOptions &Opts, bool Verbose) {
  serve::Aggregator Agg(Opts);
  SessionError Err;
  if (!Agg.start(Err)) {
    std::fprintf(stderr, "error: %s\n", Err.message().c_str());
    return 2;
  }
  ActiveAggregator = &Agg;
  struct sigaction Action;
  std::memset(&Action, 0, sizeof(Action));
  Action.sa_handler = handleStopSignal;
  ::sigaction(SIGTERM, &Action, nullptr);
  ::sigaction(SIGINT, &Action, nullptr);
  if (Verbose)
    std::fprintf(stderr, "accelprof: serving on '%s' (SIGTERM to stop)\n",
                 Agg.socketPath().c_str());
  Agg.wait();
  ActiveAggregator = nullptr;
  serve::AggregatorStats Stats = Agg.stats();
  if (Verbose)
    std::fprintf(stderr,
                 "accelprof: served %llu connections (%llu clean, %llu "
                 "corrupt, %llu aborted), %llu rollups\n",
                 static_cast<unsigned long long>(Stats.ConnectionsAccepted),
                 static_cast<unsigned long long>(Stats.CleanStreams),
                 static_cast<unsigned long long>(Stats.CorruptStreams),
                 static_cast<unsigned long long>(Stats.AbortedStreams),
                 static_cast<unsigned long long>(Stats.RollupsWritten));
  return 0;
}

int listTools() {
  registerBuiltinTools();
  std::printf("available tools:\n");
  for (const std::string &Name :
       ToolRegistry::instance().registeredNames()) {
    std::unique_ptr<Tool> T = ToolRegistry::instance().create(Name);
    if (!T) {
      std::printf("  %s\n", Name.c_str());
      continue;
    }
    Subscription Sub = T->subscription();
    std::string Fine;
    if (Sub.AccessRecords || T->deviceAnalysis())
      Fine += " +access-records";
    if (Sub.InstrMix)
      Fine += " +instr-mix";
    if (Sub.KernelTrace)
      Fine += " +kernel-trace";
    if (Sub.UvmCounters)
      Fine += " +uvm-counters";
    if (Sub.CapturesStacks)
      Fine += " +stacks";
    std::printf("  %-20s contract=%-15s requires=%s\n", Name.c_str(),
                executionModelName(Sub.Model),
                T->requirements().str().c_str());
    std::printf("  %-20s events=%s%s\n", "",
                Sub.Kinds.str().c_str(), Fine.c_str());
  }
  return 0;
}

int listBackends() {
  std::printf("available backends:\n");
  const BackendRegistry &Registry = BackendRegistry::instance();
  for (const std::string &Name : Registry.registeredNames()) {
    std::string Description = Registry.description(Name);
    if (Description.empty())
      std::printf("  %s\n", Name.c_str());
    else
      std::printf("  %-10s %s\n", Name.c_str(), Description.c_str());
  }
  return 0;
}

enum class ReportFormat { Text, Json, Csv };

std::unique_ptr<ReportSink> makeSink(ReportFormat Format, std::FILE *Out) {
  switch (Format) {
  case ReportFormat::Json:
    return std::make_unique<JsonReportSink>(Out);
  case ReportFormat::Csv:
    return std::make_unique<CsvReportSink>(Out);
  case ReportFormat::Text:
    break;
  }
  return std::make_unique<TextReportSink>(Out);
}

} // namespace

int main(int Argc, char **Argv) {
  SessionBuilder Builder;
  std::vector<std::string> ToolNames;
  std::string Model;
  std::string BackendName = "none";
  std::string ServeSocket;
  std::string ControlSocket;
  std::vector<std::string> ControlWords;
  std::string ReportDir;
  std::string GpuName = "A100";
  std::string FormatName = "text";
  double ReportEvery = 0.0;
  std::size_t ServeLanes = 0;
  std::uint64_t QuotaMaxConnections = 0;
  double QuotaEventsPerSec = 0.0;
  double QuotaBytesPerSec = 0.0;
  std::string QuotaPolicy = "throttle";
  double IdleTimeout = 0.0;
  bool PipelineReport = false;
  bool Validate = false;
  bool Verbose = false;
  bool Async = false;
  double Oversub = 0.0;
  ReportFormat Format = ReportFormat::Text;

  for (int I = 1; I < Argc; ++I) {
    std::string Arg = Argv[I];
    auto NextValue = [&](const char *Flag) -> const char * {
      if (I + 1 >= Argc) {
        std::fprintf(stderr, "error: %s needs a value\n", Flag);
        std::exit(2);
      }
      return Argv[++I];
    };
    if (Arg == "--list-tools")
      return listTools();
    if (Arg == "--list-backends")
      return listBackends();
    if (Arg == "-v") {
      Verbose = true;
    } else if (Arg == "-t") {
      ToolNames.push_back(NextValue("-t"));
    } else if (Arg == "-b" || Arg == "--backend") {
      // Backend names are validated by the registry at build() time.
      BackendName = NextValue("-b");
      Builder.backend(BackendName);
    } else if (Arg == "--capture") {
      Builder.capture(NextValue("--capture"));
    } else if (Arg == "--trace") {
      Builder.trace(NextValue("--trace"));
    } else if (Arg == "--replay-speed") {
      double Speed = std::atof(NextValue("--replay-speed"));
      if (Speed < 0.0) {
        std::fprintf(stderr,
                     "error: --replay-speed must be >= 0 (0 = full speed)\n");
        return 2;
      }
      Builder.replaySpeed(Speed);
    } else if (Arg == "--serve") {
      ServeSocket = NextValue("--serve");
    } else if (Arg == "--control") {
      ControlSocket = NextValue("--control");
    } else if (Arg == "--connect") {
      Builder.connect(NextValue("--connect"));
    } else if (Arg == "--tenant") {
      Builder.tenant(NextValue("--tenant"));
    } else if (Arg == "--connect-timeout") {
      double Seconds = std::atof(NextValue("--connect-timeout"));
      if (Seconds <= 0.0) {
        std::fprintf(stderr, "error: --connect-timeout needs a positive "
                             "number of seconds\n");
        return 2;
      }
      Builder.connectTimeout(Seconds);
    } else if (Arg == "--connect-retries") {
      long long Retries = std::atoll(NextValue("--connect-retries"));
      if (Retries < 0 || Retries > 1000) {
        std::fprintf(stderr,
                     "error: --connect-retries must be in [0, 1000]\n");
        return 2;
      }
      Builder.connectRetries(static_cast<int>(Retries));
    } else if (Arg == "--reconnect") {
      Builder.reconnect();
    } else if (Arg == "--reconnect-max") {
      long long Attempts = std::atoll(NextValue("--reconnect-max"));
      if (Attempts <= 0 || Attempts > 1000) {
        std::fprintf(stderr,
                     "error: --reconnect-max must be in [1, 1000]\n");
        return 2;
      }
      Builder.reconnectMax(static_cast<int>(Attempts));
      Builder.reconnect();
    } else if (Arg == "--spill-max-bytes") {
      long long Bytes = std::atoll(NextValue("--spill-max-bytes"));
      if (Bytes <= 0) {
        std::fprintf(stderr, "error: --spill-max-bytes must be positive\n");
        return 2;
      }
      Builder.spillMaxBytes(Bytes);
      Builder.reconnect();
    } else if (Arg == "--lanes") {
      // Serve mode: tenant sessions dispatch on N lanes (enables the
      // set-lanes control verb). Client mode: same as --dispatch-threads
      // would be, a fixed lane count on the async pipeline.
      long long N = std::atoll(NextValue("--lanes"));
      if (N <= 0 || N > 64) {
        std::fprintf(stderr, "error: --lanes must be in [1, 64]\n");
        return 2;
      }
      ServeLanes = static_cast<std::size_t>(N);
      Builder.dispatchThreads(static_cast<std::size_t>(N));
      Builder.asyncEvents();
      Async = true;
    } else if (Arg == "--quota-max-connections") {
      long long N = std::atoll(NextValue("--quota-max-connections"));
      if (N <= 0) {
        std::fprintf(stderr,
                     "error: --quota-max-connections must be positive\n");
        return 2;
      }
      QuotaMaxConnections = static_cast<std::uint64_t>(N);
    } else if (Arg == "--quota-events-per-sec") {
      QuotaEventsPerSec = std::atof(NextValue("--quota-events-per-sec"));
      if (QuotaEventsPerSec <= 0.0) {
        std::fprintf(stderr,
                     "error: --quota-events-per-sec must be positive\n");
        return 2;
      }
    } else if (Arg == "--quota-bytes-per-sec") {
      QuotaBytesPerSec = std::atof(NextValue("--quota-bytes-per-sec"));
      if (QuotaBytesPerSec <= 0.0) {
        std::fprintf(stderr,
                     "error: --quota-bytes-per-sec must be positive\n");
        return 2;
      }
    } else if (Arg == "--quota-policy") {
      QuotaPolicy = NextValue("--quota-policy");
      if (QuotaPolicy != "throttle" && QuotaPolicy != "shed") {
        std::fprintf(stderr, "error: --quota-policy must be 'throttle' "
                             "or 'shed'\n");
        return 2;
      }
    } else if (Arg == "--idle-timeout") {
      IdleTimeout = std::atof(NextValue("--idle-timeout"));
      if (IdleTimeout <= 0.0) {
        std::fprintf(stderr, "error: --idle-timeout needs a positive "
                             "number of seconds\n");
        return 2;
      }
    } else if (Arg == "--pipeline-report") {
      PipelineReport = true;
    } else if (Arg == "--report-dir") {
      ReportDir = NextValue("--report-dir");
    } else if (Arg == "--report-every") {
      ReportEvery = std::atof(NextValue("--report-every"));
      if (ReportEvery <= 0.0) {
        std::fprintf(stderr, "error: --report-every needs a positive "
                             "number of seconds\n");
        return 2;
      }
    } else if (Arg == "-g") {
      GpuName = NextValue("-g");
      Builder.gpu(GpuName);
    } else if (Arg == "--train") {
      Builder.training();
    } else if (Arg == "--iters") {
      Builder.iterations(std::atoi(NextValue("--iters")));
    } else if (Arg == "--managed") {
      Builder.managed();
    } else if (Arg == "--oversub") {
      Oversub = std::atof(NextValue("--oversub"));
      Builder.managed();
    } else if (Arg == "--prefetch") {
      std::string Level = NextValue("--prefetch");
      if (Level == "none")
        Builder.prefetch(PrefetchLevel::None);
      else if (Level == "object")
        Builder.prefetch(PrefetchLevel::Object);
      else if (Level == "tensor")
        Builder.prefetch(PrefetchLevel::Tensor);
      else {
        std::fprintf(stderr, "error: unknown prefetch level '%s'\n",
                     Level.c_str());
        return 2;
      }
      Builder.managed();
    } else if (Arg == "--validate") {
      // Runtime contract validation (docs/VALIDATION.md): aborts on the
      // first broken pipeline contract instead of corrupting reports.
      Builder.validate();
      Validate = true;
    } else if (Arg == "--async") {
      Builder.asyncEvents();
      Async = true;
    } else if (Arg == "--queue-depth") {
      long long Depth = std::atoll(NextValue("--queue-depth"));
      if (Depth <= 0) {
        std::fprintf(stderr, "error: --queue-depth must be positive\n");
        return 2;
      }
      // Tuning the queue only makes sense asynchronously; imply --async
      // (the --oversub / --managed precedent).
      Builder.queueDepth(static_cast<std::size_t>(Depth));
      Builder.asyncEvents();
      Async = true;
    } else if (Arg == "--dispatch-threads") {
      long long Threads = std::atoll(NextValue("--dispatch-threads"));
      if (Threads <= 0 || Threads > 64) {
        std::fprintf(stderr,
                     "error: --dispatch-threads must be in [1, 64]\n");
        return 2;
      }
      // Lanes only exist asynchronously; imply --async like the other
      // queue knobs.
      Builder.dispatchThreads(static_cast<std::size_t>(Threads));
      Builder.asyncEvents();
      Async = true;
    } else if (Arg == "--arena-shards") {
      long long Shards = std::atoll(NextValue("--arena-shards"));
      if (Shards <= 0 || Shards > 64) {
        std::fprintf(stderr,
                     "error: --arena-shards must be in [1, 64]\n");
        return 2;
      }
      // The arena only runs on the async admission path; imply --async
      // like the other queue knobs.
      Builder.arenaShards(static_cast<std::size_t>(Shards));
      Builder.asyncEvents();
      Async = true;
    } else if (Arg == "--lanes-auto") {
      // Lane auto-scaling only means something on the async dispatch
      // unit; imply --async like the other lane knobs.
      Builder.lanesAuto();
      Builder.asyncEvents();
      Async = true;
    } else if (Arg == "--min-lanes") {
      long long Lanes = std::atoll(NextValue("--min-lanes"));
      if (Lanes <= 0 || Lanes > 64) {
        std::fprintf(stderr, "error: --min-lanes must be in [1, 64]\n");
        return 2;
      }
      Builder.minLanes(static_cast<std::size_t>(Lanes));
      Builder.lanesAuto();
      Builder.asyncEvents();
      Async = true;
    } else if (Arg == "--max-lanes") {
      long long Lanes = std::atoll(NextValue("--max-lanes"));
      if (Lanes <= 0 || Lanes > 64) {
        std::fprintf(stderr, "error: --max-lanes must be in [1, 64]\n");
        return 2;
      }
      Builder.maxLanes(static_cast<std::size_t>(Lanes));
      Builder.lanesAuto();
      Builder.asyncEvents();
      Async = true;
    } else if (Arg == "--arena-max-bytes") {
      long long Bytes = std::atoll(NextValue("--arena-max-bytes"));
      if (Bytes <= 0) {
        std::fprintf(stderr,
                     "error: --arena-max-bytes must be positive\n");
        return 2;
      }
      Builder.arenaMaxBytes(static_cast<std::uint64_t>(Bytes));
      Builder.asyncEvents();
      Async = true;
    } else if (Arg == "--overflow") {
      std::string Spec = NextValue("--overflow");
      // "sample:16" selects the Sample policy keeping 1/16.
      std::size_t Colon = Spec.find(':');
      if (Colon != std::string::npos) {
        long long EveryN = std::atoll(Spec.substr(Colon + 1).c_str());
        if (EveryN <= 0) {
          std::fprintf(stderr,
                       "error: --overflow sample:N needs a positive N\n");
          return 2;
        }
        Builder.sampleEveryN(static_cast<std::uint64_t>(EveryN));
        Spec = Spec.substr(0, Colon);
      }
      auto Policy = parseOverflowPolicy(Spec);
      if (!Policy) {
        std::fprintf(stderr, "error: unknown overflow policy '%s'\n",
                     Spec.c_str());
        return 2;
      }
      Builder.overflowPolicy(*Policy);
      Builder.asyncEvents();
      Async = true;
    } else if (Arg == "--granularity") {
      Builder.recordGranularity(
          static_cast<std::uint64_t>(std::atoll(NextValue("--granularity"))));
    } else if (Arg == "--sample-rate") {
      Builder.sampleRate(std::atof(NextValue("--sample-rate")));
    } else if (Arg == "--format") {
      std::string Name = NextValue("--format");
      if (Name == "text")
        Format = ReportFormat::Text;
      else if (Name == "json")
        Format = ReportFormat::Json;
      else if (Name == "csv")
        Format = ReportFormat::Csv;
      else {
        std::fprintf(stderr, "error: unknown report format '%s'\n",
                     Name.c_str());
        return 2;
      }
      FormatName = Name;
    } else if (!Arg.empty() && Arg[0] == '-') {
      std::fprintf(stderr, "error: unknown option '%s'\n", Arg.c_str());
      return usage(Argv[0]);
    } else if (!ControlSocket.empty()) {
      // In --control mode the positionals are the command words
      // ("attach-tool team-a working_set"), not a model.
      ControlWords.push_back(Arg);
    } else {
      Model = Arg;
    }
  }

  // Control-client mode: one request to a running daemon, print the
  // response, exit with the daemon's verdict.
  if (!ControlSocket.empty()) {
    if (ControlWords.empty()) {
      std::fprintf(stderr, "error: --control needs a command, e.g. "
                           "'--control SOCKET list-tenants'\n");
      return 2;
    }
    std::string Command;
    for (const std::string &Word : ControlWords) {
      if (!Command.empty())
        Command += ' ';
      Command += Word;
    }
    std::string Response;
    SessionError CtlErr;
    if (!serve::sendControlCommand(ControlSocket, Command, Response,
                                   CtlErr)) {
      std::fprintf(stderr, "error: %s\n", CtlErr.message().c_str());
      return 2;
    }
    if (!Response.empty()) {
      std::fputs(Response.c_str(), stdout);
      if (Response.back() != '\n')
        std::fputc('\n', stdout);
    }
    return 0;
  }

  // Daemon mode: no model, no workload — just the aggregation loop.
  if (!ServeSocket.empty()) {
    serve::ServeOptions ServeOpts;
    ServeOpts.SocketPath = ServeSocket;
    if (!ToolNames.empty())
      ServeOpts.ToolNames = ToolNames;
    ServeOpts.ReportDir = ReportDir;
    ServeOpts.Format = FormatName;
    ServeOpts.ReportEverySeconds = ReportEvery;
    ServeOpts.Gpu = GpuName;
    ServeOpts.Lanes = ServeLanes;
    ServeOpts.QuotaMaxConnections = QuotaMaxConnections;
    ServeOpts.QuotaEventsPerSec = QuotaEventsPerSec;
    ServeOpts.QuotaBytesPerSec = QuotaBytesPerSec;
    ServeOpts.QuotaPolicy = QuotaPolicy;
    ServeOpts.IdleTimeoutSeconds = IdleTimeout;
    ServeOpts.PipelineRollup = PipelineReport;
    if (Validate)
      ServeOpts.Validate = true;
    return runServe(ServeOpts, Verbose);
  }

  // Replay sessions take their events from the trace; the model
  // positional is meaningless there and may be omitted.
  if (Model.empty() && BackendName != "replay")
    return usage(Argv[0]);
  if (!Model.empty())
    Builder.model(Model);
  if (ToolNames.empty())
    ToolNames.push_back(getEnvString("PASTA_TOOL", "kernel_frequency"));
  for (const std::string &Name : ToolNames)
    Builder.tool(Name);

  // PASTA_CONNECT / PASTA_TENANT: attach the forwarder without touching
  // the command line (the LD_PRELOAD-style fleet onboarding path).
  if (Builder.options().ConnectPath.empty()) {
    std::string EnvConnect = getEnvString("PASTA_CONNECT", "");
    if (!EnvConnect.empty()) {
      Builder.connect(EnvConnect);
      std::string EnvTenant = getEnvString("PASTA_TENANT", "");
      if (!EnvTenant.empty())
        Builder.tenant(EnvTenant);
    }
  }

  // Oversubscription needs the footprint: probe with an uninstrumented
  // run of the *same* workload first (the paper's pre-allocation trick
  // needs the same number), dropping only managed mode and the cap.
  if (Oversub > 0.0) {
    SessionOptions ProbeOpts = Builder.options();
    // The probe only measures PeakReserved; no tools along for the ride.
    ProbeOpts.ToolNames.clear();
    SessionBuilder ProbeBuilder(ProbeOpts);
    SessionError ProbeErr;
    std::unique_ptr<Session> Probe = ProbeBuilder.backend("none")
                                         .managed(false)
                                         .prefetch(PrefetchLevel::None)
                                         .memoryLimit(0)
                                         .build(ProbeErr);
    if (!Probe) {
      std::fprintf(stderr, "error: %s\n", ProbeErr.message().c_str());
      return 2;
    }
    std::uint64_t Footprint = Probe->run().Stats.PeakReserved;
    std::uint64_t Limit =
        static_cast<std::uint64_t>(static_cast<double>(Footprint) / Oversub);
    Builder.memoryLimit(Limit);
    if (Verbose)
      std::fprintf(stderr,
                   "accelprof: footprint %s, limiting device to %s\n",
                   formatBytes(Footprint).c_str(),
                   formatBytes(Limit).c_str());
  }

  SessionError Err;
  std::unique_ptr<Session> S = Builder.build(Err);
  if (!S) {
    std::fprintf(stderr, "error: %s\n", Err.message().c_str());
    return 2;
  }

  SessionResult Result = S->run();
  if (Verbose)
    std::fprintf(
        stderr,
        "accelprof: %s %s on %s via %s (enabled: %s): %llu kernels, %s "
        "simulated, peak %s\n",
        Model.c_str(), S->options().Training ? "training" : "inference",
        S->options().Gpu.c_str(), S->backend().name().c_str(),
        S->negotiated().str().c_str(),
        static_cast<unsigned long long>(Result.Stats.KernelsLaunched),
        formatSimTime(Result.Stats.wallTime()).c_str(),
        formatBytes(Result.Stats.PeakReserved).c_str());

  std::unique_ptr<ReportSink> Sink = makeSink(Format, stdout);
  // The pipeline section leads the tool reports when the async dispatch
  // unit ran, so drop/sample counters are visible next to the results
  // they qualify.
  if (Async)
    S->writePipelineReport(*Sink);
  S->writeReports(*Sink);
  return 0;
}
