//===- tools/pasta-lint/pasta-lint.cpp - CLI driver -----------------------===//
//
// Part of the PASTA reproduction, under the MIT license.
//
//===----------------------------------------------------------------------===//
//
// pasta-lint — the project's contract-enforcement static checker.
//
//   pasta-lint [--root DIR] [--manifest FILE] [--stream-manifest FILE]
//              [--update-manifest] [--list-rules] PATH...
//
// PATHs are files or directories (resolved against --root when
// relative); every .h/.cpp underneath is linted. Exit status: 0 clean,
// 1 diagnostics emitted, 2 usage / IO error. docs/VALIDATION.md
// documents the rules and the per-file suppression syntax.
//
//===----------------------------------------------------------------------===//

#include "lint/Lint.h"

#include <cstdio>
#include <cstring>
#include <string>
#include <vector>

namespace {

void printUsage() {
  std::fprintf(
      stderr,
      "usage: pasta-lint [options] PATH...\n"
      "\n"
      "Lints every .h/.cpp under the given files/directories against\n"
      "the PASTA contract rules (see docs/VALIDATION.md).\n"
      "\n"
      "options:\n"
      "  --root DIR         resolve relative PATHs and the manifest\n"
      "                     against DIR; report DIR-relative paths\n"
      "  --manifest FILE    wire-format manifest location (default:\n"
      "                     src/lint/trace_format.manifest)\n"
      "  --stream-manifest FILE\n"
      "                     stream-envelope manifest location (default:\n"
      "                     src/lint/stream_envelope.manifest)\n"
      "  --update-manifest  rewrite the manifests from TraceFormat.h /\n"
      "                     StreamEnvelope.h instead of diffing\n"
      "  --list-rules       print the rule table and exit\n");
}

} // namespace

int main(int argc, char **argv) {
  pasta::lint::LintContext Ctx;
  std::vector<std::string> Paths;
  bool ListRules = false;

  for (int I = 1; I < argc; ++I) {
    std::string Arg = argv[I];
    if (Arg == "--help" || Arg == "-h") {
      printUsage();
      return 0;
    }
    if (Arg == "--list-rules") {
      ListRules = true;
      continue;
    }
    if (Arg == "--update-manifest") {
      Ctx.UpdateManifest = true;
      continue;
    }
    if (Arg == "--root" || Arg == "--manifest" ||
        Arg == "--stream-manifest") {
      if (I + 1 >= argc) {
        std::fprintf(stderr, "pasta-lint: %s requires a value\n",
                     Arg.c_str());
        return 2;
      }
      (Arg == "--root"       ? Ctx.Root
       : Arg == "--manifest" ? Ctx.ManifestPath
                             : Ctx.StreamManifestPath) = argv[++I];
      continue;
    }
    if (Arg.size() >= 2 && Arg.compare(0, 2, "--") == 0) {
      std::fprintf(stderr, "pasta-lint: unknown option '%s'\n",
                   Arg.c_str());
      printUsage();
      return 2;
    }
    Paths.push_back(Arg);
  }

  if (ListRules) {
    for (const pasta::lint::Rule &R : pasta::lint::rules())
      std::printf("%-24s %s\n", R.Id.c_str(), R.Description.c_str());
    return 0;
  }

  if (Paths.empty()) {
    printUsage();
    return 2;
  }

  std::vector<pasta::lint::Diagnostic> Diags;
  bool Ok = pasta::lint::lintPaths(Paths, Ctx, Diags);
  for (const pasta::lint::Diagnostic &D : Diags)
    std::printf("%s\n", D.str().c_str());
  if (!Diags.empty())
    std::fprintf(stderr, "pasta-lint: %zu error(s)\n", Diags.size());
  if (!Ok)
    return 2;
  return Diags.empty() ? 0 : 1;
}
